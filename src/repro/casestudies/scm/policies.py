"""WS-Policy4MASC documents used by the SCM experiments.

These are the policies Section 3.2 describes: "For timeout faults, these
policies configured the VEP for the Retailers to first retry the invocation
of the faulty services three times with a delay between retry cycles of two
seconds. After exhausting the maximum number of allowed retries, the
policies configured the VEP to route the request message to a different
Retailer based on the response time gathered from prior interactions. ...
For the Logging service we have configured a skip policy since the
functionality provided by the Logging service is not business critical."

Each builder returns both the in-memory document and (via the XML module)
round-trips through the wire format, so the experiments exercise the full
parse path rather than hand-built objects.
"""

from __future__ import annotations

from repro.policy import (
    AdaptationPolicy,
    AdaptiveTimeoutAction,
    BulkheadAction,
    BurnRateAlertAction,
    CircuitBreakerAction,
    CompensateInstanceAction,
    ConcurrentInvokeAction,
    FederationAction,
    IdempotencyAction,
    LoadLevelingAction,
    LoadSheddingAction,
    PolicyDocument,
    PolicyScope,
    ResponseCacheAction,
    RetryAction,
    SelectionStrategyAction,
    ShardRoutingAction,
    SkipAction,
    SloAction,
    SubstituteAction,
    TracingAction,
    parse_policy_document,
    serialize_policy_document,
)

__all__ = [
    "broadcast_policy_document",
    "federation_policy_document",
    "logging_skip_policy_document",
    "resilience_policy_document",
    "retailer_recovery_policy_document",
    "saga_policy_document",
    "slo_policy_document",
    "tracing_policy_document",
    "traffic_policy_document",
]


def _round_trip(document: PolicyDocument) -> PolicyDocument:
    """Serialize + re-parse so experiments use the real XML path."""
    return parse_policy_document(serialize_policy_document(document))


def retailer_recovery_policy_document(
    max_retries: int = 3,
    retry_delay_seconds: float = 2.0,
    substitute_strategy: str = "best_response_time",
    backoff_multiplier: float = 1.0,
    max_delay_seconds: float | None = None,
    jitter_fraction: float = 0.0,
) -> PolicyDocument:
    """Retry n times with a fixed delay, then fail over by response time.

    The backoff/jitter knobs default to the paper's fixed-delay behaviour;
    passing ``jitter_fraction``/``max_delay_seconds`` spreads retry storms
    out while keeping the delay bounded.
    """
    document = PolicyDocument("scm-retailer-recovery")
    document.adaptation_policies.append(
        AdaptationPolicy(
            name="retailer-retry-then-failover",
            triggers=("fault.Timeout", "fault.ServiceUnavailable", "fault.ServiceFailure"),
            scope=PolicyScope(service_type="Retailer"),
            actions=(
                RetryAction(
                    max_retries=max_retries,
                    delay_seconds=retry_delay_seconds,
                    backoff_multiplier=backoff_multiplier,
                    max_delay_seconds=max_delay_seconds,
                    jitter_fraction=jitter_fraction,
                ),
                SubstituteAction(strategy=substitute_strategy),
            ),
            priority=10,
            adaptation_type="correction",
        )
    )
    return _round_trip(document)


def logging_skip_policy_document() -> PolicyDocument:
    """Skip failed Logging calls — the service is not business critical."""
    document = PolicyDocument("scm-logging-skip")
    document.adaptation_policies.append(
        AdaptationPolicy(
            name="logging-skip",
            triggers=("fault.*",),
            scope=PolicyScope(service_type="LoggingFacility"),
            actions=(SkipAction(reason="logging is not business critical"),),
            priority=10,
            adaptation_type="correction",
        )
    )
    return _round_trip(document)


def resilience_policy_document(
    endpoint_pattern: str = "http://scm/retailer*",
    failure_rate_threshold: float = 0.5,
    consecutive_failures: int = 3,
    open_seconds: float = 6.0,
    half_open_probes: int = 1,
    endpoint_max_concurrent: int = 8,
    endpoint_max_queue: int = 16,
    vep_max_concurrent: int = 32,
    vep_max_queue: int = 64,
    timeout_multiplier: float = 3.0,
    timeout_min_seconds: float = 0.3,
    timeout_max_seconds: float = 4.0,
    max_inflight: int = 256,
) -> PolicyDocument:
    """Resilience configuration for the Retailer tier.

    Uses the ``resilience.configure`` trigger convention: the bus's
    :class:`~repro.resilience.ResilienceService` scans adaptation policies
    carrying that trigger at load time rather than waiting for a fault
    event.  Four protections are configured:

    - circuit breakers on each Retailer endpoint;
    - a per-endpoint bulkhead plus a wider per-VEP bulkhead;
    - adaptive timeouts derived from observed p95 latency;
    - unscoped load shedding at bus admission.
    """
    document = PolicyDocument("scm-resilience")
    document.adaptation_policies.append(
        AdaptationPolicy(
            name="retailer-endpoint-resilience",
            triggers=("resilience.configure",),
            scope=PolicyScope(endpoint=endpoint_pattern),
            actions=(
                CircuitBreakerAction(
                    failure_rate_threshold=failure_rate_threshold,
                    consecutive_failures=consecutive_failures,
                    open_seconds=open_seconds,
                    half_open_probes=half_open_probes,
                ),
                BulkheadAction(
                    max_concurrent=endpoint_max_concurrent,
                    max_queue=endpoint_max_queue,
                    applies_to="endpoint",
                ),
                AdaptiveTimeoutAction(
                    aggregate="p95",
                    multiplier=timeout_multiplier,
                    min_seconds=timeout_min_seconds,
                    max_seconds=timeout_max_seconds,
                ),
            ),
            priority=10,
            adaptation_type="prevention",
        )
    )
    document.adaptation_policies.append(
        AdaptationPolicy(
            name="retailer-vep-bulkhead",
            triggers=("resilience.configure",),
            scope=PolicyScope(service_type="Retailer"),
            actions=(
                BulkheadAction(
                    max_concurrent=vep_max_concurrent,
                    max_queue=vep_max_queue,
                    applies_to="vep",
                ),
            ),
            priority=20,
            adaptation_type="prevention",
        )
    )
    document.adaptation_policies.append(
        AdaptationPolicy(
            name="bus-load-shedding",
            triggers=("resilience.configure",),
            scope=PolicyScope(),
            actions=(LoadSheddingAction(max_inflight=max_inflight),),
            priority=30,
            adaptation_type="prevention",
        )
    )
    return _round_trip(document)


def slo_policy_document(
    endpoint_pattern: str = "http://scm/retailer*",
    availability_target: float = 99.0,
    latency_target_seconds: float | None = None,
    latency_percentile: str = "p99",
    window_seconds: float = 300.0,
    fast_window_seconds: float = 30.0,
    slow_window_seconds: float = 120.0,
    fast_burn_threshold: float = 6.0,
    slow_burn_threshold: float = 2.0,
    evaluation_interval_seconds: float = 5.0,
    min_requests: int = 5,
    strategy: str = "best_reliability",
    breaker_consecutive_failures: int = 2,
    breaker_open_seconds: float = 10.0,
) -> PolicyDocument:
    """SLO declaration + burn-rate reaction for the Retailer tier.

    Two policies close the feedback loop:

    - ``retailer-availability-slo`` uses the ``observability.slo`` trigger
      convention (scanned at load time by the bus's
      :class:`~repro.observability.slo.SloService`, like
      ``resilience.configure``): it declares the availability/latency
      objective and the multi-window burn-rate alert that evaluates it.
    - ``retailer-slo-burn-reaction`` is an ordinary adaptation policy
      triggered by the events the SLO engine emits: when the error budget
      burns too fast it switches the Retailer VEP's selection strategy to
      ``best_reliability`` and tightens the circuit breaker on the
      Retailer endpoints.

    Defaults are scaled for the fault-storm experiments (minutes, not the
    SRE-canonical hours) so a short storm exercises the whole loop.
    """
    document = PolicyDocument("scm-slo")
    document.adaptation_policies.append(
        AdaptationPolicy(
            name="retailer-availability-slo",
            triggers=("observability.slo",),
            scope=PolicyScope(endpoint=endpoint_pattern),
            actions=(
                SloAction(
                    name="retailer-availability",
                    availability_target=availability_target,
                    latency_target_seconds=latency_target_seconds,
                    latency_percentile=latency_percentile,
                    window_seconds=window_seconds,
                ),
                BurnRateAlertAction(
                    fast_window_seconds=fast_window_seconds,
                    slow_window_seconds=slow_window_seconds,
                    fast_burn_threshold=fast_burn_threshold,
                    slow_burn_threshold=slow_burn_threshold,
                    evaluation_interval_seconds=evaluation_interval_seconds,
                    min_requests=min_requests,
                ),
            ),
            priority=10,
            adaptation_type="prevention",
        )
    )
    document.adaptation_policies.append(
        AdaptationPolicy(
            name="retailer-slo-burn-reaction",
            triggers=("sloBurnRateExceeded", "errorBudgetExhausted"),
            scope=PolicyScope(service_type="Retailer"),
            actions=(
                SelectionStrategyAction(strategy=strategy),
                CircuitBreakerAction(
                    consecutive_failures=breaker_consecutive_failures,
                    open_seconds=breaker_open_seconds,
                ),
            ),
            priority=10,
            adaptation_type="optimization",
        )
    )
    return _round_trip(document)


def saga_policy_document(
    process: str | None = "scm-purchase-saga",
    scope: str | None = None,
    mode: str = "orchestration",
    triggers: tuple[str, ...] = ("errorBudgetExhausted",),
) -> PolicyDocument:
    """Turn SLO despair into a saga unwind — a policy-only change.

    When the SLO engine reports the error budget gone, keeping in-flight
    purchase sagas running only piles further work onto a tier that can
    no longer meet its objective.  This reaction policy compensates them
    instead: each instance's registered compensations (cancel the order,
    refund the payment) run in LIFO order, either engine-driven
    (``orchestration``) or as direct wsBus messages to the owning
    services (``choreography``).  No code change is involved — loading
    this document is enough.
    """
    document = PolicyDocument("scm-saga")
    document.adaptation_policies.append(
        AdaptationPolicy(
            name="purchase-saga-compensate-on-budget-exhausted",
            triggers=triggers,
            scope=PolicyScope(service_type="Retailer"),
            actions=(
                CompensateInstanceAction(
                    scope=scope,
                    mode=mode,
                    process=process,
                    reason="error budget exhausted",
                ),
            ),
            priority=5,
            adaptation_type="correction",
        )
    )
    return _round_trip(document)


def traffic_policy_document(
    cache_operation: str = "getCatalog",
    cache_ttl_seconds: float = 30.0,
    cache_max_entries: int = 256,
    invalidate_on: tuple[str, ...] = (
        "sloBurnRateExceeded",
        "errorBudgetExhausted",
        "catalogChanged",
    ),
    rate_per_second: float = 20.0,
    burst: int = 4,
    max_queue: int = 64,
    max_wait_seconds: float = 2.0,
) -> PolicyDocument:
    """Traffic shaping for the Retailer tier — the gentler overload story.

    Three policies on the ``traffic.configure`` trigger convention
    (scanned at load time by the bus's
    :class:`~repro.traffic.TrafficService`):

    - ``retailer-exactly-once`` stamps every Retailer request with an
      idempotency key, so retry/replay/broadcast redelivery is provably
      exactly-once at the service;
    - ``retailer-catalog-cache`` caches ``getCatalog`` responses
      (cache-aside with TTL), invalidated when the SLO engine reports
      budget trouble or a ``catalogChanged`` domain event flows by;
    - ``retailer-load-leveling`` smooths Retailer VEP arrivals to a
      sustainable rate with a bounded virtual queue instead of shedding.
    """
    document = PolicyDocument("scm-traffic")
    document.adaptation_policies.append(
        AdaptationPolicy(
            name="retailer-exactly-once",
            triggers=("traffic.configure",),
            scope=PolicyScope(service_type="Retailer"),
            actions=(IdempotencyAction(),),
            priority=10,
            adaptation_type="prevention",
        )
    )
    document.adaptation_policies.append(
        AdaptationPolicy(
            name="retailer-catalog-cache",
            triggers=("traffic.configure",),
            scope=PolicyScope(service_type="Retailer", operation=cache_operation),
            actions=(
                ResponseCacheAction(
                    ttl_seconds=cache_ttl_seconds,
                    max_entries=cache_max_entries,
                    invalidate_on=invalidate_on,
                ),
            ),
            priority=20,
            adaptation_type="optimization",
        )
    )
    document.adaptation_policies.append(
        AdaptationPolicy(
            name="retailer-load-leveling",
            triggers=("traffic.configure",),
            scope=PolicyScope(service_type="Retailer"),
            actions=(
                LoadLevelingAction(
                    rate_per_second=rate_per_second,
                    burst=burst,
                    max_queue=max_queue,
                    max_wait_seconds=max_wait_seconds,
                ),
            ),
            priority=30,
            adaptation_type="prevention",
        )
    )
    return _round_trip(document)


def federation_policy_document(
    heartbeat_interval_seconds: float = 0.5,
    suspicion_multiplier: float = 3.0,
    gossip_interval_seconds: float = 2.0,
    gossip_fanout: int = 1,
    lease_seconds: float = 3.0,
    virtual_nodes: int = 32,
    pin_vep_pattern: str | None = None,
    pin_bus: str | None = None,
) -> PolicyDocument:
    """Fleet tuning (and optional placement pins) for a federated bus.

    One policy on the ``federation.configure`` trigger convention (scanned
    at load time by the fleet's
    :class:`~repro.federation.FederationService`) carries the
    :class:`~repro.policy.FederationAction` knobs: heartbeat cadence and
    suspicion threshold, gossip interval/fanout, leadership lease length,
    and the consistent-hash ring's virtual-node count.  When
    ``pin_vep_pattern``/``pin_bus`` are given a second policy pins the
    matching VEPs to a named bus, overriding hash placement while that
    bus is alive.
    """
    document = PolicyDocument("scm-federation")
    document.adaptation_policies.append(
        AdaptationPolicy(
            name="fleet-federation-tuning",
            triggers=("federation.configure",),
            scope=PolicyScope(),
            actions=(
                FederationAction(
                    heartbeat_interval_seconds=heartbeat_interval_seconds,
                    suspicion_multiplier=suspicion_multiplier,
                    gossip_interval_seconds=gossip_interval_seconds,
                    gossip_fanout=gossip_fanout,
                    lease_seconds=lease_seconds,
                    virtual_nodes=virtual_nodes,
                ),
            ),
            priority=10,
            adaptation_type="prevention",
        )
    )
    if pin_vep_pattern is not None and pin_bus is not None:
        document.adaptation_policies.append(
            AdaptationPolicy(
                name="fleet-vep-pinning",
                triggers=("federation.configure",),
                scope=PolicyScope(),
                actions=(
                    ShardRoutingAction(bus=pin_bus, vep_pattern=pin_vep_pattern),
                ),
                priority=20,
                adaptation_type="prevention",
            )
        )
    return _round_trip(document)


def tracing_policy_document(
    sample_rate: float = 1.0,
    always_sample_faults: bool = True,
    always_sample_slo_violations: bool = True,
) -> PolicyDocument:
    """Head-based trace sampling for a production-scale run.

    One policy on the ``observability.tracing`` trigger convention
    (scanned at load time by
    :class:`~repro.observability.sampling.TracingService`) carries the
    :class:`~repro.policy.TracingAction` knobs: the sample rate, and
    whether faulted / SLO-violating traces are always promoted to the
    exporters regardless of the head decision.
    """
    document = PolicyDocument("scm-tracing")
    document.adaptation_policies.append(
        AdaptationPolicy(
            name="fleet-trace-sampling",
            triggers=("observability.tracing",),
            scope=PolicyScope(),
            actions=(
                TracingAction(
                    sample_rate=sample_rate,
                    always_sample_faults=always_sample_faults,
                    always_sample_slo_violations=always_sample_slo_violations,
                ),
            ),
            priority=10,
            adaptation_type="prevention",
        )
    )
    return _round_trip(document)


def broadcast_policy_document(max_targets: int = 0) -> PolicyDocument:
    """Concurrent invocation of equivalent Retailers, first response wins."""
    document = PolicyDocument("scm-retailer-broadcast")
    document.adaptation_policies.append(
        AdaptationPolicy(
            name="retailer-concurrent-invocation",
            triggers=("fault.Timeout", "fault.ServiceUnavailable", "fault.ServiceFailure"),
            scope=PolicyScope(service_type="Retailer"),
            actions=(ConcurrentInvokeAction(max_targets=max_targets),),
            priority=10,
            adaptation_type="correction",
        )
    )
    return _round_trip(document)
