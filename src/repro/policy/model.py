"""Policy model: documents, scopes, monitoring and adaptation policies.

An adaptation policy in WS-Policy4MASC "can define events which cause its
evaluation, optional conditions on its relevance, a state in which the
adapted system should be before the adaptation, additional conditions on
the adapted system, a set of actions to be taken if all previous conditions
are met, a state in which the system will be after the adaptation, and
change of business value associated with this adaptation". Every one of
those clauses is a field below.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from typing import Any

from repro.orchestration.expressions import Expression
from repro.policy.actions import AdaptationAction
from repro.policy.assertions import MessageCondition, QoSThreshold
from repro.soap import FaultCode

__all__ = [
    "AdaptationPolicy",
    "BusinessValue",
    "GoalPolicy",
    "MonitoringPolicy",
    "PolicyDocument",
    "PolicyError",
    "PolicyScope",
]


class PolicyError(Exception):
    """A policy is malformed or cannot be interpreted."""


@dataclass(frozen=True)
class PolicyScope:
    """What a policy applies to (the WS-Policy Attachment subject).

    Any combination of: an abstract service type, a concrete endpoint
    address, an operation name, a process definition name, and an activity
    name. ``None`` fields match anything — scopes can be "at various levels
    of granularity such as a Service Endpoint or a Service Operation".
    """

    service_type: str | None = None
    endpoint: str | None = None
    operation: str | None = None
    process: str | None = None
    activity: str | None = None

    def matches(self, **subject: str | None) -> bool:
        """True if this scope applies to the described subject."""
        for key in ("service_type", "endpoint", "operation", "process", "activity"):
            wanted = getattr(self, key)
            if wanted is None:
                continue
            actual = subject.get(key)
            if actual is None or not fnmatch.fnmatchcase(str(actual), wanted):
                return False
        return True

    def describe(self) -> str:
        parts = [
            f"{key}={value}"
            for key, value in (
                ("serviceType", self.service_type),
                ("endpoint", self.endpoint),
                ("operation", self.operation),
                ("process", self.process),
                ("activity", self.activity),
            )
            if value is not None
        ]
        return "any" if not parts else " ".join(parts)


@dataclass(frozen=True)
class BusinessValue:
    """Monetary consequence of applying an adaptation.

    Positive amounts are gains (e.g. a fee charged to the customer);
    negative are costs (e.g. paying a third-party CreditRating service).
    The MASC decision maker accumulates these in a ledger, the seed of the
    paper's long-term goal of "maximizing business metrics (e.g., profit)".
    """

    amount: float
    currency: str = "AUD"
    reason: str = ""

    def describe(self) -> str:
        sign = "+" if self.amount >= 0 else ""
        return f"{sign}{self.amount} {self.currency}" + (f" ({self.reason})" if self.reason else "")


def _match_event(patterns: tuple[str, ...], event: str) -> bool:
    return any(fnmatch.fnmatchcase(event, pattern) for pattern in patterns)


@dataclass(frozen=True)
class MonitoringPolicy:
    """A sensor: detects situations and classifies violations.

    Evaluation semantics (see ``repro.core.monitoring_service`` and
    ``repro.wsbus.monitoring``):

    - the policy is considered when one of ``events`` occurs within scope;
    - ``extract`` pulls XPath values out of the observed message into the
      evaluation context (so adaptation conditions can reference them);
    - if ``condition`` and all message ``conditions`` hold, the policy
      *fires*: it emits every event in ``emits``;
    - if a message condition or QoS threshold is **violated**, the policy
      raises a violation classified as ``classify_as``.
    """

    name: str
    events: tuple[str, ...]
    scope: PolicyScope = field(default_factory=PolicyScope)
    condition: str | None = None
    conditions: tuple[MessageCondition, ...] = ()
    qos_thresholds: tuple[QoSThreshold, ...] = ()
    extract: dict[str, str] = field(default_factory=dict)
    classify_as: FaultCode | None = None
    emits: tuple[str, ...] = ()
    priority: int = 100

    def __post_init__(self) -> None:
        if not self.name:
            raise PolicyError("monitoring policy needs a name")
        if not self.events:
            raise PolicyError(f"monitoring policy {self.name!r} needs at least one event")
        if self.condition is not None:
            # Compile eagerly so malformed policies fail at load time.
            object.__setattr__(self, "_condition", Expression(self.condition))
        else:
            object.__setattr__(self, "_condition", None)

    def triggered_by(self, event: str) -> bool:
        return _match_event(self.events, event)

    def condition_holds(self, context: dict[str, Any]) -> bool:
        compiled = getattr(self, "_condition")
        if compiled is None:
            return True
        try:
            return bool(compiled.holds(context))
        except Exception:  # noqa: BLE001 - a failing condition means "not relevant"
            return False


@dataclass(frozen=True)
class AdaptationPolicy:
    """An effector: what to do when a situation or fault occurs."""

    name: str
    triggers: tuple[str, ...]
    actions: tuple[AdaptationAction, ...]
    scope: PolicyScope = field(default_factory=PolicyScope)
    condition: str | None = None
    state_before: str | None = None
    state_after: str | None = None
    business_value: BusinessValue | None = None
    priority: int = 100
    #: customization | correction | optimization | prevention — the paper's
    #: third classification dimension; informational but validated.
    adaptation_type: str = "correction"

    def __post_init__(self) -> None:
        if not self.name:
            raise PolicyError("adaptation policy needs a name")
        if not self.triggers:
            raise PolicyError(f"adaptation policy {self.name!r} needs at least one trigger")
        if not self.actions:
            raise PolicyError(f"adaptation policy {self.name!r} needs at least one action")
        if self.adaptation_type not in (
            "customization",
            "correction",
            "optimization",
            "prevention",
        ):
            raise PolicyError(
                f"unknown adaptation type {self.adaptation_type!r} in {self.name!r}"
            )
        if self.condition is not None:
            object.__setattr__(self, "_condition", Expression(self.condition))
        else:
            object.__setattr__(self, "_condition", None)

    def triggered_by(self, event: str) -> bool:
        return _match_event(self.triggers, event)

    def condition_holds(self, context: dict[str, Any]) -> bool:
        compiled = getattr(self, "_condition")
        if compiled is None:
            return True
        try:
            return bool(compiled.holds(context))
        except Exception:  # noqa: BLE001
            return False

    @property
    def layers(self) -> set[str]:
        return {action.layer for action in self.actions}


@dataclass(frozen=True)
class GoalPolicy:
    """A utility/goal policy: the paper's planned extension beyond ECA.

    "We are also extending our middleware to enable making and enacting
    adaptation decisions... based on not only event-condition-action rules,
    but also more abstract utility/goal policies describing how to
    determine business benefits/costs and maximize business value."

    When a goal policy is in scope for an event, the utility-driven
    decision maker ranks the competing adaptation policies by estimated
    business value instead of enacting all of them in priority order.

    The cost model parameters price the non-monetary side effects of
    actions: recovery latency (``time_value_per_second``) and fan-out
    bandwidth (``bandwidth_cost_per_message``).
    """

    name: str
    goal: str = "maximize_business_value"
    scope: PolicyScope = field(default_factory=PolicyScope)
    time_value_per_second: float = 1.0
    bandwidth_cost_per_message: float = 0.1
    priority: int = 100

    def __post_init__(self) -> None:
        if not self.name:
            raise PolicyError("goal policy needs a name")
        if self.goal not in ("maximize_business_value", "minimize_cost"):
            raise PolicyError(f"unknown goal {self.goal!r} in {self.name!r}")


@dataclass
class PolicyDocument:
    """A WS-Policy4MASC document: a named collection of policies."""

    name: str
    monitoring_policies: list[MonitoringPolicy] = field(default_factory=list)
    adaptation_policies: list[AdaptationPolicy] = field(default_factory=list)
    goal_policies: list[GoalPolicy] = field(default_factory=list)

    def policy_names(self) -> list[str]:
        return (
            [p.name for p in self.monitoring_policies]
            + [p.name for p in self.adaptation_policies]
            + [p.name for p in self.goal_policies]
        )

    def __len__(self) -> int:
        return (
            len(self.monitoring_policies)
            + len(self.adaptation_policies)
            + len(self.goal_policies)
        )
