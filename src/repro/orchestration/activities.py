"""Activity model for process definitions.

A process is a tree of named activities. Names are unique within a
definition — they are the anchors that WS-Policy4MASC adaptation policies
use to address insertion/removal points ("an activity block is specified
using beginning and ending points").

Execution protocol: ``execute(instance)`` returns a generator that the
engine runs as a simulated process. Composite activities re-read their child
lists on every scheduling step, which is what makes dynamic modification of
a running instance effective without restarting it.
"""

from __future__ import annotations

import copy
from collections.abc import Callable, Generator
from typing import TYPE_CHECKING, Any

from repro.orchestration.errors import DefinitionError, ProcessFault, ProcessTerminated
from repro.orchestration.expressions import Expression
from repro.soap import FaultCode, SoapFault
from repro.xmlutils import Element

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.orchestration.instance import ProcessInstance

__all__ = [
    "Activity",
    "Assign",
    "Compensate",
    "CompensateScope",
    "CompensationPair",
    "CompensationScope",
    "Delay",
    "Empty",
    "Flow",
    "IfElse",
    "Invoke",
    "Receive",
    "Reply",
    "Scope",
    "Sequence",
    "Terminate",
    "Throw",
    "While",
]

Condition = Callable[[dict[str, Any]], bool]


def as_condition(condition: str | Expression | Condition) -> Condition:
    """Normalize a condition: string → safe Expression, else callable."""
    if isinstance(condition, str):
        condition = Expression(condition)
    if isinstance(condition, Expression):
        expression = condition
        return expression.holds
    if callable(condition):
        return condition
    raise DefinitionError(f"not a valid condition: {condition!r}")


def _coerce(text: str | None) -> Any:
    """Best-effort typing of message part text for use in conditions."""
    if text is None:
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    if text in ("true", "false"):
        return text == "true"
    return text


class Activity:
    """Base class: a named node in the process tree."""

    def __init__(self, name: str) -> None:
        if not name:
            raise DefinitionError("activity name must be non-empty")
        self.name = name

    def children(self) -> list["Activity"]:
        """Direct child activities (overridden by composites)."""
        return []

    def iter_tree(self) -> Generator["Activity", None, None]:
        """This activity and all descendants, depth-first."""
        yield self
        for child in self.children():
            yield from child.iter_tree()

    def copy(self) -> "Activity":
        """A deep copy for transient-modification workflows."""
        return copy.deepcopy(self)

    def execute(self, instance: "ProcessInstance") -> Generator:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class Empty(Activity):
    """A no-op; the canonical replacement body when removing an activity."""

    def execute(self, instance: "ProcessInstance") -> Generator:
        return
        yield  # pragma: no cover - makes this a generator function


class Assign(Activity):
    """Set a process variable from an expression, callable or literal."""

    def __init__(
        self,
        name: str,
        variable: str,
        expression: str | Expression | Callable[[dict[str, Any]], Any] | None = None,
        value: Any = None,
    ) -> None:
        super().__init__(name)
        self.variable = variable
        #: Serializable source of the computation, for the XML process form.
        self._assign_source: str | None = None
        if expression is None:
            self._compute: Callable[[dict[str, Any]], Any] = lambda _vars: value
            if isinstance(value, (str, int, float, bool)) or value is None:
                self._assign_source = repr(value)
        elif isinstance(expression, str):
            compiled = Expression(expression)
            self._compute = compiled.evaluate
            self._assign_source = expression
        elif isinstance(expression, Expression):
            self._compute = expression.evaluate
            self._assign_source = expression.source
        elif callable(expression):
            self._compute = expression
        else:
            raise DefinitionError(f"invalid Assign expression: {expression!r}")

    def execute(self, instance: "ProcessInstance") -> Generator:
        instance.variables[self.variable] = self._compute(instance.variables)
        return
        yield  # pragma: no cover


class Delay(Activity):
    """Wait a fixed or computed number of simulated seconds."""

    def __init__(self, name: str, seconds: float | str | Expression) -> None:
        super().__init__(name)
        if isinstance(seconds, (str, Expression)):
            expression = seconds if isinstance(seconds, Expression) else Expression(seconds)
            self._seconds: Callable[[dict[str, Any]], float] = lambda v: float(
                expression.evaluate(v)
            )
            self._delay_source: str | None = expression.source
        else:
            fixed = float(seconds)
            if fixed < 0:
                raise DefinitionError(f"negative delay {fixed}")
            self._seconds = lambda _v: fixed
            self._delay_source = str(fixed)

    def execute(self, instance: "ProcessInstance") -> Generator:
        yield instance.env.timeout(self._seconds(instance.variables))


class Sequence(Activity):
    """Run children one after another.

    The child list is re-read on every step, so activities inserted into a
    *running* sequence (after the execution frontier) are picked up without
    restarting the instance — the core mechanism behind MASC's dynamic
    customization.
    """

    def __init__(self, name: str, activities: list[Activity] | None = None) -> None:
        super().__init__(name)
        self.activities: list[Activity] = list(activities or ())

    def children(self) -> list[Activity]:
        return list(self.activities)

    def execute(self, instance: "ProcessInstance") -> Generator:
        completed: set[str] = set()
        while True:
            pending = [child for child in self.activities if child.name not in completed]
            if not pending:
                return
            child = pending[0]
            yield from instance.run_activity(child)
            completed.add(child.name)


class Flow(Activity):
    """Run children concurrently; completes when all complete.

    A fault in any branch fails the flow (remaining branches are abandoned),
    matching BPEL flow semantics closely enough for the case studies.
    """

    def __init__(self, name: str, activities: list[Activity] | None = None) -> None:
        super().__init__(name)
        self.activities: list[Activity] = list(activities or ())

    def children(self) -> list[Activity]:
        return list(self.activities)

    def execute(self, instance: "ProcessInstance") -> Generator:
        env = instance.env
        branches = [
            env.process(instance.run_activity(child), name=f"flow:{child.name}")
            for child in self.activities
        ]
        if not branches:
            return
        composite = env.all_of(branches)
        try:
            yield composite
        except ProcessFault:
            # A branch faulted. Interrupt deliveries are deferred to the next
            # scheduler turn, so cancel the siblings and *wait for the
            # cancellations to land* before propagating: an enclosing scope's
            # fault handler (and its compensation chain) must observe a
            # quiesced flow, not race against branches that are still running.
            composite.defused = True
            interrupted = _cancel_branches(branches)
            if interrupted and not instance.engine.crashed:
                yield from _await_branches_settled(env, interrupted)
            raise
        except BaseException:
            # Abrupt unwinding (interrupt, crashed-engine tear-down): the
            # composite loses its listener; defuse so a branch failing later
            # doesn't raise unattended in the simulation core. Generator
            # unwinds cannot yield, so settling is not awaited here.
            composite.defused = True
            _cancel_branches(branches)
            raise


def _cancel_branches(branches: list) -> list:
    """Interrupt live flow branches; returns the ones that need to settle."""
    interrupted = []
    for branch in branches:
        if branch.is_alive:
            branch.interrupt("flow aborted")
            branch.defused = True
            interrupted.append(branch)
        elif not branch.processed:
            branch.defused = True
    return interrupted


def _await_branches_settled(env, interrupted: list) -> Generator:
    """Wait until every interrupted branch process has finished unwinding."""
    gate = env.event()
    remaining = len(interrupted)

    def _settled(_event) -> None:
        nonlocal remaining
        remaining -= 1
        if remaining == 0:
            gate.succeed()

    for branch in interrupted:
        branch.callbacks.append(_settled)
    yield gate


class IfElse(Activity):
    """Conditional branch."""

    def __init__(
        self,
        name: str,
        condition: str | Expression | Condition,
        then: Activity,
        orelse: Activity | None = None,
    ) -> None:
        super().__init__(name)
        self._condition_source = condition
        self.condition = as_condition(condition)
        self.then = then
        self.orelse = orelse

    def children(self) -> list[Activity]:
        branches = [self.then]
        if self.orelse is not None:
            branches.append(self.orelse)
        return branches

    def execute(self, instance: "ProcessInstance") -> Generator:
        credits = instance._replay_credits
        if credits:
            # Replaying a rehydrated instance: the branch actually taken
            # before the checkpoint is the one holding completion credits —
            # re-take it rather than re-evaluating the condition, whose
            # variables may have changed after the original decision.
            for branch in self.children():
                if any(credits.get(node.name) for node in branch.iter_tree()):
                    yield from instance.run_activity(branch)
                    return
            if credits.get(self.name):
                # Completed without taking a branch (false condition, no
                # orelse); run_activity consumes this activity's credit.
                return
        if self.condition(instance.variables):
            yield from instance.run_activity(self.then)
        elif self.orelse is not None:
            yield from instance.run_activity(self.orelse)


class While(Activity):
    """Loop while a condition holds.

    ``max_iterations`` is a defensive bound: a policy-inserted loop that
    never converges fails the process instead of hanging the simulation.
    """

    def __init__(
        self,
        name: str,
        condition: str | Expression | Condition,
        body: Activity,
        max_iterations: int = 10_000,
    ) -> None:
        super().__init__(name)
        self.condition = as_condition(condition)
        self.body = body
        self.max_iterations = max_iterations
        #: Serializable condition source, for the XML process form.
        if isinstance(condition, str):
            self._condition_source_text: str | None = condition
        elif isinstance(condition, Expression):
            self._condition_source_text = condition.source
        else:
            self._condition_source_text = None

    def children(self) -> list[Activity]:
        return [self.body]

    def execute(self, instance: "ProcessInstance") -> Generator:
        iterations = 0
        while self.condition(instance.variables):
            iterations += 1
            if iterations > self.max_iterations:
                raise ProcessFault(
                    SoapFault(
                        FaultCode.SERVER,
                        f"while loop {self.name!r} exceeded {self.max_iterations} iterations",
                    ),
                    self.name,
                )
            yield from instance.run_activity(self.body)


class Invoke(Activity):
    """Call a partner Web service.

    The target can be a concrete address (``to``) or an abstract
    ``service_type`` resolved at runtime by the engine's binder — which is
    how wsBus VEPs and registry-based dynamic selection slot in underneath
    the process without the process knowing.

    ``inputs`` maps message part names to variable names, literal values or
    safe expressions; the response payload lands in ``output_variable`` and
    individual parts can be extracted (type-coerced) into variables via
    ``extract``.
    """

    def __init__(
        self,
        name: str,
        operation: str,
        to: str | None = None,
        service_type: str | None = None,
        inputs: dict[str, Any] | None = None,
        input_builder: Callable[[dict[str, Any]], Element] | None = None,
        output_variable: str | None = None,
        extract: dict[str, str] | None = None,
        timeout_seconds: float | None = 30.0,
        padding_variable: str | None = None,
    ) -> None:
        super().__init__(name)
        if to is None and service_type is None:
            raise DefinitionError(f"Invoke {name!r} needs a target address or service type")
        self.operation = operation
        self.to = to
        self.service_type = service_type
        self.inputs = dict(inputs or {})
        self.input_builder = input_builder
        self.output_variable = output_variable
        self.extract = dict(extract or {})
        self.timeout_seconds = timeout_seconds
        self.padding_variable = padding_variable

    def build_payload(self, instance: "ProcessInstance") -> Element:
        if self.input_builder is not None:
            return self.input_builder(instance.variables)
        payload = Element(f"{self.operation}Request")
        for part, spec in self.inputs.items():
            value = _resolve_input(spec, instance.variables)
            text = "true" if value is True else "false" if value is False else str(value)
            payload.add(part, text=text)
        return payload

    def execute(self, instance: "ProcessInstance") -> Generator:
        payload = self.build_payload(instance)
        padding = 0
        if self.padding_variable is not None:
            padding = int(instance.variables.get(self.padding_variable, 0))
        target = self.to
        if target is None:
            target = instance.engine.resolve_service(self.service_type or "", instance)
        response = yield from instance.invoke_partner(
            activity=self,
            to=target,
            operation=self.operation,
            payload=payload,
            timeout_seconds=self.timeout_seconds,
            padding=padding,
        )
        if self.output_variable is not None:
            instance.variables[self.output_variable] = response.body
        for variable, part in self.extract.items():
            text = response.body.child_text(part) if response.body is not None else None
            instance.variables[variable] = _coerce(text)


def _resolve_input(spec: Any, variables: dict[str, Any]) -> Any:
    """Input specs: ``VarRef`` strings prefixed with '$', expressions via
    :class:`Expression`, callables, or literals."""
    if isinstance(spec, str) and spec.startswith("$"):
        name = spec[1:]
        if name not in variables:
            raise ProcessFault(
                SoapFault(FaultCode.CLIENT, f"unbound process variable {name!r}")
            )
        return variables[name]
    if isinstance(spec, Expression):
        return spec.evaluate(variables)
    if callable(spec):
        return spec(variables)
    return spec


class Receive(Activity):
    """Bind the instance's initiating message into a variable."""

    def __init__(self, name: str, variable: str = "request") -> None:
        super().__init__(name)
        self.variable = variable

    def execute(self, instance: "ProcessInstance") -> Generator:
        instance.variables[self.variable] = instance.input
        return
        yield  # pragma: no cover


class Reply(Activity):
    """Set the instance's result (what the composition returns)."""

    def __init__(
        self,
        name: str,
        expression: str | Expression | Callable[[dict[str, Any]], Any] | None = None,
        variable: str | None = None,
    ) -> None:
        super().__init__(name)
        if (expression is None) == (variable is None):
            raise DefinitionError(f"Reply {name!r} needs exactly one of expression/variable")
        #: Serializable source ("variable"/"expression", value) or None.
        self._reply_source: tuple[str, str] | None = None
        if variable is not None:
            self._compute: Callable[[dict[str, Any]], Any] = (
                lambda v, _name=variable: v.get(_name)
            )
            self._reply_source = ("variable", variable)
        elif isinstance(expression, str):
            compiled = Expression(expression)
            self._compute = compiled.evaluate
            self._reply_source = ("expression", expression)
        elif isinstance(expression, Expression):
            self._compute = expression.evaluate
            self._reply_source = ("expression", expression.source)
        else:
            assert callable(expression)
            self._compute = expression

    def execute(self, instance: "ProcessInstance") -> Generator:
        instance.result = self._compute(instance.variables)
        return
        yield  # pragma: no cover


class Throw(Activity):
    """Raise a business-process fault."""

    def __init__(self, name: str, code: FaultCode, reason: str) -> None:
        super().__init__(name)
        self.code = code
        self.reason = reason

    def execute(self, instance: "ProcessInstance") -> Generator:
        raise ProcessFault(SoapFault(self.code, self.reason), self.name)
        yield  # pragma: no cover


class Terminate(Activity):
    """Stop the instance immediately (no fault handling).

    Plain scopes run no handlers on termination; an enclosing
    :class:`CompensationScope` still unwinds its registered compensation
    chain before the termination propagates.
    """

    def __init__(self, name: str, reason: str = "terminated by process") -> None:
        super().__init__(name)
        self.reason = reason

    def execute(self, instance: "ProcessInstance") -> Generator:
        raise ProcessTerminated(self.reason)
        yield  # pragma: no cover


class Scope(Activity):
    """A structured scope: fault handlers, compensation, optional deadline.

    - ``fault_handlers`` maps a :class:`FaultCode` (or ``None`` for
      catch-all) to a handler activity.
    - ``compensation`` is registered when the scope completes and runs if a
      later fault triggers compensation of completed work.
    - ``timeout_seconds`` races the body against an *extensible* deadline;
      cross-layer coordination can push the deadline out while the messaging
      layer retries (the paper's "increase its timeout interval to avoid the
      calling process timing out").
    """

    def __init__(
        self,
        name: str,
        body: Activity,
        fault_handlers: dict[FaultCode | None, Activity] | None = None,
        compensation: Activity | None = None,
        timeout_seconds: float | None = None,
        compensate_on_fault: bool = False,
    ) -> None:
        super().__init__(name)
        self.body = body
        self.fault_handlers = dict(fault_handlers or {})
        self.compensation = compensation
        self.timeout_seconds = timeout_seconds
        self.compensate_on_fault = compensate_on_fault

    def children(self) -> list[Activity]:
        nested = [self.body]
        nested.extend(self.fault_handlers.values())
        if self.compensation is not None:
            nested.append(self.compensation)
        return nested

    def execute(self, instance: "ProcessInstance") -> Generator:
        try:
            if self.timeout_seconds is None:
                yield from instance.run_activity(self.body)
            else:
                yield from instance.run_with_deadline(self, self.body, self.timeout_seconds)
        except ProcessFault as fault:
            handler = self.fault_handlers.get(fault.code, self.fault_handlers.get(None))
            if handler is None:
                raise
            if self.compensate_on_fault:
                yield from instance.compensate_completed_scopes(self)
            instance.variables["_fault"] = fault.fault
            yield from instance.run_activity(handler)
            return
        if self.compensation is not None:
            instance.register_compensation(self)


def CompensationPair(name: str, primary: Activity, compensation: Activity) -> Scope:
    """Sugar: a scope pairing an activity with its compensation."""
    return Scope(f"{name}", body=primary, compensation=compensation)


class CompensationScope(Scope):
    """A saga scope: per-step compensations, unwound LIFO on fault.

    ``compensations`` maps the names of body activities (saga steps) to
    compensation activities. Each time a mapped step completes, its
    compensation is registered on the instance; a fault, a ``Terminate``
    or a policy-requested compensation unwinds the registered chain in
    reverse (LIFO) order before the scope's fault handler runs — the
    saga pattern's backward recovery, engine-orchestrated.
    """

    def __init__(
        self,
        name: str,
        body: Activity,
        compensations: dict[str, Activity] | None = None,
        fault_handlers: dict[FaultCode | None, Activity] | None = None,
        compensation: Activity | None = None,
        timeout_seconds: float | None = None,
    ) -> None:
        super().__init__(
            name,
            body,
            fault_handlers=fault_handlers,
            compensation=compensation,
            timeout_seconds=timeout_seconds,
            compensate_on_fault=True,
        )
        self.compensations: dict[str, Activity] = dict(compensations or {})

    def children(self) -> list[Activity]:
        nested = super().children()
        nested.extend(self.compensations.values())
        return nested

    def execute(self, instance: "ProcessInstance") -> Generator:
        instance._saga_stack.append(self)
        try:
            try:
                if self.timeout_seconds is None:
                    yield from instance.run_activity(self.body)
                else:
                    yield from instance.run_with_deadline(
                        self, self.body, self.timeout_seconds
                    )
            except ProcessTerminated:
                # Terminate unwinds the saga before stopping the instance.
                yield from instance.compensate(scope=self.name, reason="terminate")
                raise
            except ProcessFault as fault:
                yield from instance.compensate(
                    scope=self.name, reason=f"fault:{fault.code.value}"
                )
                handler = self.fault_handlers.get(fault.code, self.fault_handlers.get(None))
                if handler is None:
                    raise
                if instance._compensation_request is not None:
                    # The request's fault stopped here; later activities
                    # (the handler, outer scopes) run normally again.
                    instance._compensation_request = None
                instance.variables["_fault"] = fault.fault
                yield from instance.run_activity(handler)
                return
        finally:
            instance._saga_stack.pop()
        if self.compensation is not None:
            instance.register_compensation(self)


class Compensate(Activity):
    """Run the registered compensation chain, LIFO.

    With ``scope`` set, only compensations registered under that
    :class:`CompensationScope` are run (BPEL's ``compensateScope``);
    without it, every registered compensation unwinds.
    """

    #: Replay must re-execute this activity (to re-pop registered
    #: compensations) instead of fast-forwarding it as a leaf.
    replay_composite = True

    def __init__(self, name: str, scope: str | None = None) -> None:
        super().__init__(name)
        self.scope = scope

    def execute(self, instance: "ProcessInstance") -> Generator:
        yield from instance.compensate(scope=self.scope, reason=f"compensate:{self.name}")


def CompensateScope(name: str, scope: str) -> Compensate:
    """Sugar: compensate exactly one named saga scope."""
    if not scope:
        raise DefinitionError(f"CompensateScope {name!r} needs a scope name")
    return Compensate(name, scope=scope)
