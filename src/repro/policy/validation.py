"""Policy consistency checking.

The paper argues its approach "controls adaptation using policies that can
be checked for consistency" (contrasting with RobustBPEL's generated
constructs). This module implements that check: structural errors that make
a document unenforceable, and warnings for specifications that are legal
but ambiguous or suspicious.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.orchestration import ProcessDefinition
from repro.policy.actions import (
    AddActivityAction,
    RemoveActivityAction,
    ReplaceActivityAction,
    RetryAction,
)
from repro.policy.model import PolicyDocument

__all__ = ["PolicyValidationError", "ValidationIssue", "validate_document"]


@dataclass(frozen=True)
class ValidationIssue:
    severity: str  # "error" | "warning"
    policy_name: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.policy_name}: {self.message}"


class PolicyValidationError(Exception):
    """Raised when a document has validation errors."""

    def __init__(self, issues: list[ValidationIssue]) -> None:
        super().__init__("; ".join(str(issue) for issue in issues))
        self.issues = issues


def validate_document(
    document: PolicyDocument,
    process: ProcessDefinition | None = None,
    known_service_types: set[str] | None = None,
    raise_on_error: bool = True,
) -> list[ValidationIssue]:
    """Check a document; returns all issues (errors first).

    When ``process`` is given, activity anchors in process-layer actions
    are resolved against its definition. When ``known_service_types`` is
    given, abstract service references are checked against it.
    """
    issues: list[ValidationIssue] = []

    names = document.policy_names()
    for name in sorted({n for n in names if names.count(n) > 1}):
        issues.append(ValidationIssue("error", name, "duplicate policy name"))

    activity_names = set(process.activity_names()) if process is not None else None

    for policy in document.adaptation_policies:
        retry_only = all(isinstance(action, RetryAction) for action in policy.actions)
        if retry_only and any(action.max_retries == 0 for action in policy.actions):
            issues.append(
                ValidationIssue(
                    "warning", policy.name, "retry action with maxRetries=0 does nothing"
                )
            )
        for action in policy.actions:
            issues.extend(_check_action(policy.name, action, activity_names, known_service_types))
        if policy.state_before is not None and policy.state_after == policy.state_before:
            issues.append(
                ValidationIssue(
                    "warning",
                    policy.name,
                    f"state transition {policy.state_before!r} -> {policy.state_after!r} "
                    "is a no-op",
                )
            )

    # Ambiguous ordering: same trigger + same priority among adaptation policies.
    seen: dict[tuple[str, int], str] = {}
    for policy in document.adaptation_policies:
        for trigger in policy.triggers:
            key = (trigger, policy.priority)
            if key in seen and seen[key] != policy.name:
                issues.append(
                    ValidationIssue(
                        "warning",
                        policy.name,
                        f"shares trigger {trigger!r} and priority {policy.priority} with "
                        f"{seen[key]!r}; execution order falls back to name ordering",
                    )
                )
            else:
                seen[key] = policy.name

    for policy in document.monitoring_policies:
        if not policy.emits and policy.classify_as is None and not policy.qos_thresholds:
            if not policy.conditions:
                issues.append(
                    ValidationIssue(
                        "warning",
                        policy.name,
                        "policy neither emits events, classifies faults, nor checks "
                        "conditions — it has no observable effect",
                    )
                )

    issues.sort(key=lambda issue: (issue.severity != "error", issue.policy_name))
    if raise_on_error and any(issue.severity == "error" for issue in issues):
        raise PolicyValidationError([i for i in issues if i.severity == "error"])
    return issues


def _check_action(
    policy_name: str,
    action,
    activity_names: set[str] | None,
    known_service_types: set[str] | None,
) -> list[ValidationIssue]:
    issues: list[ValidationIssue] = []

    def check_anchor(anchor: str, role: str) -> None:
        if activity_names is not None and anchor not in activity_names:
            issues.append(
                ValidationIssue(
                    "error",
                    policy_name,
                    f"{role} {anchor!r} does not exist in the target process",
                )
            )

    if isinstance(action, AddActivityAction):
        check_anchor(action.anchor, "anchor activity")
        for spec in action.invokes:
            if (
                known_service_types is not None
                and spec.service_type is not None
                and spec.service_type not in known_service_types
            ):
                issues.append(
                    ValidationIssue(
                        "error",
                        policy_name,
                        f"inserted invoke {spec.name!r} references unknown service type "
                        f"{spec.service_type!r}",
                    )
                )
    elif isinstance(action, RemoveActivityAction):
        check_anchor(action.target, "removal target")
        if action.block_end is not None:
            check_anchor(action.block_end, "block end")
    elif isinstance(action, ReplaceActivityAction):
        check_anchor(action.target, "replacement target")
    return issues
