"""Trace analytics: loading, assembly, critical path, attribution, CLI."""

import json
import math

import pytest

from repro.observability import (
    Span,
    assemble_trace,
    attribute_latency,
    critical_path,
    group_traces,
    load_spans,
    slowest_traces,
    trace_report,
)
from repro.observability.analysis import PHASES, phase_of


def span(
    name,
    span_id,
    trace_id="tr-000001",
    parent=None,
    start=0.0,
    end=None,
    status="ok",
    **attributes,
):
    return Span.from_dict(
        {
            "name": name,
            "span_id": span_id,
            "trace_id": trace_id,
            "parent_id": parent,
            "correlation_id": "msg-1",
            "start": start,
            "end": end,
            "status": status,
            "attributes": attributes,
        }
    )


def sample_trace():
    """A hand-built five-phase trace with known self-times.

    mediate [0,10] > vep [2,9] > send [3,8] > net [3.2,7.8] > execute [4,7],
    plus a violation [8.5,8.9] directly under the root.
    """
    return [
        span("wsbus.mediate", "sp-000001", start=0.0, end=10.0),
        span("vep.handle", "sp-000002", parent="sp-000001", start=2.0, end=9.0),
        span("wsbus.send", "sp-000003", parent="sp-000002", start=3.0, end=8.0),
        span("net.exchange", "sp-000004", parent="sp-000003", start=3.2, end=7.8),
        span("service.execute", "sp-000005", parent="sp-000004", start=4.0, end=7.0),
        span("slo.violation", "sp-000006", parent="sp-000001", start=8.5, end=8.9),
    ]


class TestPhaseOf:
    @pytest.mark.parametrize(
        ("name", "phase"),
        [
            ("wsbus.mediate", "queue-wait"),
            ("vep.handle", "mediation"),
            ("traffic.cache_hit", "mediation"),
            ("wsbus.send", "network"),
            ("net.exchange", "network"),
            ("service.execute", "service-execution"),
            ("wsbus.retry", "adaptation"),
            ("wsbus.adaptation.event", "adaptation"),
            ("slo.violation", "adaptation"),
            ("federation.vep.failover", "adaptation"),
            ("something.unknown", "other"),
        ],
    )
    def test_span_names_map_to_phases(self, name, phase):
        assert phase_of(name) == phase


class TestAssembly:
    def test_tree_shape_and_duration(self):
        tree = assemble_trace(sample_trace())
        assert tree.root.name == "wsbus.mediate"
        assert tree.duration == 10.0
        assert tree.span_count == 6
        assert [child.name for child in tree.children["sp-000001"]] == [
            "vep.handle",
            "slo.violation",
        ]

    def test_missing_ancestor_promotes_earliest_orphan(self):
        spans = [
            span("vep.handle", "sp-000002", parent="sp-gone", start=1.0, end=4.0),
            span("wsbus.send", "sp-000003", parent="sp-000002", start=2.0, end=3.0),
            span("slo.violation", "sp-000009", parent="sp-gone", start=3.5, end=3.8),
        ]
        tree = assemble_trace(spans)
        assert tree.root.span_id == "sp-000002"
        # The other orphan hangs off the stand-in root: nothing vanishes.
        assert {child.span_id for child in tree.children["sp-000002"]} == {
            "sp-000003",
            "sp-000009",
        }

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            assemble_trace([])

    def test_group_traces_partitions_by_trace_id(self):
        spans = sample_trace() + [
            span("wsbus.mediate", "sp-000050", trace_id="tr-000002", start=1.0, end=2.0)
        ]
        grouped = group_traces(spans)
        assert set(grouped) == {"tr-000001", "tr-000002"}
        assert len(grouped["tr-000001"]) == 6

    def test_slowest_traces_order_and_limit(self):
        spans = sample_trace() + [
            span("wsbus.mediate", "sp-000050", trace_id="tr-000002", start=1.0, end=2.0),
            span("wsbus.mediate", "sp-000060", trace_id="tr-000003", start=0.0, end=30.0),
        ]
        rows = slowest_traces(spans, limit=2)
        assert [row.trace_id for row in rows] == ["tr-000003", "tr-000001"]
        assert rows[1].duration == 10.0
        assert rows[1].span_count == 6


class TestCriticalPath:
    def test_path_follows_the_last_finishing_child(self):
        tree = assemble_trace(sample_trace())
        assert [item.name for item in critical_path(tree)] == [
            "wsbus.mediate",
            "vep.handle",
            "wsbus.send",
            "net.exchange",
            "service.execute",
        ]

    def test_single_span_path_is_the_root(self):
        tree = assemble_trace([span("wsbus.mediate", "sp-000001", end=1.0)])
        assert [item.span_id for item in critical_path(tree)] == ["sp-000001"]


class TestAttribution:
    def test_phase_self_times_are_exclusive(self):
        attribution = attribute_latency(assemble_trace(sample_trace()))
        # Root self-time: [0,2] + [9,10].
        assert attribution["queue-wait"] == pytest.approx(3.0)
        # vep.handle minus its child and its overlapping sibling (the
        # violation, deeper tie broken to the later-starting span).
        assert attribution["mediation"] == pytest.approx(1.6)
        assert attribution["network"] == pytest.approx(0.4 + 1.6)
        assert attribution["service-execution"] == pytest.approx(3.0)
        assert attribution["adaptation"] == pytest.approx(0.4)
        assert attribution["other"] == 0.0

    def test_phases_tile_the_root_duration_exactly(self):
        tree = assemble_trace(sample_trace())
        total = math.fsum(attribute_latency(tree).values())
        assert math.isclose(total, tree.duration, rel_tol=1e-9, abs_tol=1e-9)

    def test_child_outliving_its_parent_is_clipped(self):
        # An abandoned exchange racing a timeout: the child ends after the
        # parent. Only the overlap counts, and the total still tiles.
        spans = [
            span("wsbus.mediate", "sp-000001", start=0.0, end=5.0),
            span("net.exchange", "sp-000002", parent="sp-000001", start=4.0, end=9.0),
        ]
        tree = assemble_trace(spans)
        attribution = attribute_latency(tree)
        assert attribution["queue-wait"] == pytest.approx(4.0)
        assert attribution["network"] == pytest.approx(1.0)
        assert math.isclose(
            math.fsum(attribution.values()), tree.duration, rel_tol=1e-9
        )

    def test_unfinished_span_counts_as_zero_width(self):
        spans = [
            span("wsbus.mediate", "sp-000001", start=0.0, end=5.0),
            span("net.exchange", "sp-000002", parent="sp-000001", start=2.0, end=None),
        ]
        attribution = attribute_latency(assemble_trace(spans))
        assert attribution["queue-wait"] == pytest.approx(5.0)
        assert attribution["network"] == 0.0


class TestLoadSpans:
    def _write_jsonl(self, path, spans):
        with open(path, "w", encoding="utf-8") as handle:
            for item in spans:
                handle.write(json.dumps(item.to_dict()) + "\n")

    def test_merges_jsonl_and_flight_dump_with_finished_winning(self, tmp_path):
        finished = sample_trace()
        jsonl = tmp_path / "spans.jsonl"
        self._write_jsonl(jsonl, finished)
        # The flight dump saw sp-000005 before it ended (crash flush).
        unfinished = span(
            "service.execute",
            "sp-000005",
            parent="sp-000004",
            start=4.0,
            end=None,
            unfinished=True,
        )
        dump = tmp_path / "flight.json"
        dump.write_text(
            json.dumps(
                {
                    "reason": "crash",
                    "spans": [unfinished.to_dict(), finished[0].to_dict()],
                }
            ),
            encoding="utf-8",
        )
        merged = load_spans([dump, jsonl])
        assert len(merged) == 6  # deduplicated
        execute = next(item for item in merged if item.span_id == "sp-000005")
        assert execute.end_time == 7.0  # the finished record won

    def test_ordering_is_deterministic(self, tmp_path):
        jsonl = tmp_path / "spans.jsonl"
        self._write_jsonl(jsonl, list(reversed(sample_trace())))
        merged = load_spans([jsonl])
        assert [item.span_id for item in merged] == [
            f"sp-{index:06d}" for index in range(1, 7)
        ]


class TestTraceReport:
    def test_report_totals_match_durations(self):
        spans = sample_trace()
        report = trace_report(spans, limit=5)
        assert report["span_count"] == 6
        assert report["trace_count"] == 1
        entry = report["traces"][0]
        assert entry["trace_id"] == "tr-000001"
        assert [step["name"] for step in entry["critical_path"]][0] == "wsbus.mediate"
        assert math.isclose(
            entry["attribution_total"], entry["duration"], rel_tol=1e-9
        )
        assert set(entry["attribution"]) == set(PHASES)


class TestTraceCli:
    def _jsonl(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            for item in sample_trace():
                handle.write(json.dumps(item.to_dict()) + "\n")
        return path

    def test_trace_command_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        path = self._jsonl(tmp_path)
        report_path = tmp_path / "report.json"
        code = main(
            [
                "trace",
                str(path),
                "--critical-path",
                "--attribution",
                "--report",
                str(report_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Slowest" in out
        assert "critical path of tr-000001" in out
        assert "service-execution" in out
        assert "phases sum to" in out
        payload = json.loads(report_path.read_text(encoding="utf-8"))
        assert payload["trace_count"] == 1

    def test_tree_renders_requested_trace(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["trace", str(self._jsonl(tmp_path)), "--tree", "tr-000001"])
        assert code == 0
        assert "wsbus.mediate" in capsys.readouterr().out

    def test_unknown_trace_id_fails(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["trace", str(self._jsonl(tmp_path)), "--tree", "tr-999999"])
        assert code == 1
        assert "no trace" in capsys.readouterr().err

    def test_empty_input_fails(self, tmp_path, capsys):
        from repro.cli import main

        empty = tmp_path / "empty.jsonl"
        empty.write_text("", encoding="utf-8")
        assert main(["trace", str(empty)]) == 1
        assert "no spans" in capsys.readouterr().err
