"""Qualified XML names."""

from __future__ import annotations

__all__ = ["QName"]


class QName:
    """An XML qualified name: a (namespace URI, local part) pair.

    Immutable and hashable so qualified names can key dictionaries (fault
    code tables, policy-subject maps, operation dispatch tables).
    """

    __slots__ = ("namespace", "local")

    def __init__(self, namespace: str | None, local: str) -> None:
        if not local:
            raise ValueError("local part must be non-empty")
        object.__setattr__(self, "namespace", namespace or "")
        object.__setattr__(self, "local", local)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("QName is immutable")

    @classmethod
    def parse(cls, text: str) -> "QName":
        """Parse Clark notation (``{uri}local``) or a bare local name."""
        if text.startswith("{"):
            uri, _, local = text[1:].partition("}")
            return cls(uri, local)
        return cls("", text)

    def clark(self) -> str:
        """Clark notation, the canonical text form."""
        return f"{{{self.namespace}}}{self.local}" if self.namespace else self.local

    def __eq__(self, other: object) -> bool:
        if isinstance(other, QName):
            return self.namespace == other.namespace and self.local == other.local
        if isinstance(other, str):
            return self == QName.parse(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.namespace, self.local))

    def __repr__(self) -> str:
        return f"QName({self.clark()!r})"

    def __str__(self) -> str:
        return self.clark()
