"""Legacy setup shim: enables `pip install -e .` on offline environments
that lack the `wheel` package required for PEP 660 editable installs."""

from setuptools import setup

setup()
