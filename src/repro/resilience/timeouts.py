"""Adaptive timeouts derived from observed latency percentiles.

The paper's bus uses one fixed ``invocation_timeout`` per VEP. Under a
fault storm that single number is always wrong somewhere: too long for a
healthy endpoint (a hung call burns the whole client budget before
recovery even starts) and too short for a slow-but-working one. The
adaptive policy replaces it with ``multiplier`` × an aggregate (p95/p99/
mean/max) of the QoS Measurement Service's recent *successful* response
times, clamped to a configured band — so timeouts track what "normal"
currently looks like per endpoint.
"""

from __future__ import annotations

from repro.policy.actions import AdaptiveTimeoutAction

__all__ = ["adaptive_timeout"]


def adaptive_timeout(
    qos,
    endpoint: str,
    config: AdaptiveTimeoutAction,
    fallback: float | None,
) -> float | None:
    """The timeout to use for ``endpoint``, or ``fallback`` without data.

    ``qos`` is a :class:`~repro.wsbus.qos.QoSMeasurementService`. Until
    ``config.min_samples`` successful observations exist in the window the
    fixed ``fallback`` is returned unchanged (optimistic guessing from two
    samples would be worse than the status quo).
    """
    endpoint_qos = qos.endpoint(endpoint)
    if endpoint_qos is None:
        return fallback
    if endpoint_qos.sample_count(config.window, successful_only=True) < config.min_samples:
        return fallback
    observed = endpoint_qos.response_time(config.window, config.aggregate)
    if observed is None:
        return fallback
    derived = config.multiplier * observed
    return max(config.min_seconds, min(config.max_seconds, derived))
