"""Workflow orchestration engine.

A from-scratch equivalent of the capabilities MASC uses from the Windows
Workflow Foundation runtime (Section 2.1 of the paper):

- processes defined as activity trees (:mod:`repro.orchestration.activities`)
  and executed by a lightweight engine hosted in the simulation;
- an extensible set of runtime services with lifecycle hooks (Tracking and
  Persistence are built in; MASC plugs its adaptation service in the same
  way);
- instance suspension/resumption at activity boundaries;
- dynamic modification: the engine hands out a **transient copy** of a
  process's object representation, the caller edits it with the primitives
  in :mod:`repro.orchestration.modification`, and the engine applies the
  changes to the running instance.
"""

from repro.orchestration.activities import (
    Activity,
    Assign,
    Compensate,
    CompensateScope,
    CompensationPair,
    CompensationScope,
    Delay,
    Empty,
    Flow,
    IfElse,
    Invoke,
    Receive,
    Reply,
    Scope,
    Sequence,
    Terminate,
    Throw,
    While,
)
from repro.orchestration.definition import ProcessDefinition
from repro.orchestration.engine import (
    FaultVerdict,
    PersistenceService,
    RuntimeService,
    TrackingEvent,
    TrackingService,
    WorkflowEngine,
)
from repro.orchestration.errors import (
    DefinitionError,
    ModificationError,
    ProcessFault,
    ProcessTerminated,
)
from repro.orchestration.expressions import Expression, ExpressionError
from repro.orchestration.instance import (
    CompensationEntry,
    InstanceStatus,
    ProcessInstance,
)
from repro.orchestration.modification import (
    ModificationOperation,
    ProcessModifier,
    perform_operation,
)
from repro.orchestration.xmlio import (
    PROCESS_NS,
    ProcessSerializationError,
    parse_activity,
    parse_process_definition,
    serialize_activity,
    serialize_process_definition,
)

__all__ = [
    "Activity",
    "Assign",
    "Compensate",
    "CompensateScope",
    "CompensationEntry",
    "CompensationPair",
    "CompensationScope",
    "DefinitionError",
    "Delay",
    "Empty",
    "Expression",
    "ExpressionError",
    "FaultVerdict",
    "Flow",
    "IfElse",
    "InstanceStatus",
    "Invoke",
    "ModificationError",
    "ModificationOperation",
    "PROCESS_NS",
    "PersistenceService",
    "ProcessDefinition",
    "ProcessFault",
    "ProcessInstance",
    "ProcessModifier",
    "ProcessSerializationError",
    "ProcessTerminated",
    "Receive",
    "Reply",
    "RuntimeService",
    "Scope",
    "Sequence",
    "Terminate",
    "Throw",
    "TrackingEvent",
    "TrackingService",
    "While",
    "WorkflowEngine",
    "parse_activity",
    "parse_process_definition",
    "perform_operation",
    "serialize_activity",
    "serialize_process_definition",
]
