"""Durable process-instance persistence: dehydration and rehydration.

Reproduces the WF persistence-service role the paper's middleware depends
on: running compositions are dehydrated (checkpointed) at activity
boundaries and around suspend–modify–resume adaptation cycles, and can be
rehydrated into a fresh :class:`~repro.orchestration.WorkflowEngine` after
an engine crash, resuming mid-sequence with no lost or re-executed work.

- :class:`CheckpointStore` — append-only JSONL record log (memory or file).
- :class:`CheckpointingService` — engine runtime service writing full
  checkpoints plus a replayable modification journal.
- :func:`rehydrate_instance` / ``WorkflowEngine.rehydrate`` — recovery.
- :mod:`repro.persistence.encoding` — structured variable encoding (the
  replacement for the old scalars-only snapshot filter).
"""

from repro.persistence.checkpoint import (
    CheckpointingService,
    PersistenceError,
    RestoredState,
    capture_checkpoint,
    rehydrate_instance,
    restore_state,
)
from repro.persistence.encoding import (
    StateEncodingError,
    decode_value,
    decode_variables,
    encode_value,
    encode_variables,
    snapshot_variables,
)
from repro.persistence.store import CHECKPOINT, MODIFICATION, CheckpointStore

__all__ = [
    "CHECKPOINT",
    "MODIFICATION",
    "CheckpointStore",
    "CheckpointingService",
    "PersistenceError",
    "RestoredState",
    "StateEncodingError",
    "capture_checkpoint",
    "decode_value",
    "decode_variables",
    "encode_value",
    "encode_variables",
    "rehydrate_instance",
    "restore_state",
    "snapshot_variables",
]
