"""wsBus: the SOAP messaging middleware (Section 3 of the paper).

The key abstraction is the :class:`VirtualEndpoint` (VEP): "a set of
functionally equivalent services" exposed behind "an abstract WSDL",
acting as a recovery block with attached runtime policies. Around it:

- :class:`QoSMeasurementService` — reliability / response time /
  availability measurement from invocation records;
- :class:`BusMonitoringService` — assertion-based fault capture and
  classification at the messaging layer;
- :class:`AdaptationManager` — policy-driven recovery: retries (with retry
  and dead-letter queues), substitution, concurrent invocation, skipping;
- :class:`SelectionService` — round-robin / best-QoS / broadcast /
  content-based dynamic binding;
- message :class:`~repro.wsbus.pipeline.MessagePipeline` with inspectors
  and the :class:`MessageAdaptationService` transformation modules;
- :class:`WsBus` — the deployable intermediary (gateway to an orchestration
  engine or transparent proxy).
"""

from repro.wsbus.adaptation import AdaptationManager, RecoveryOutcome
from repro.wsbus.enforcement import BusEnforcementPoint, QuarantineRecord
from repro.wsbus.bus import WsBus
from repro.wsbus.conversation import Conversation, ConversationManager, ConversationState
from repro.wsbus.monitoring import BusMonitoringService, MonitoringPoint
from repro.wsbus.probing import ManagementEventSource, ProbeResult, QoSProbe
from repro.wsbus.pipeline import (
    ApplicabilityRule,
    MessagePipeline,
    MessageProcessingModule,
    PipelineContext,
)
from repro.wsbus.inspectors import (
    BusinessEventTracer,
    ContractValidationInspector,
    MessageLogger,
)
from repro.wsbus.qos import EndpointQoS, QoSMeasurementService
from repro.wsbus.retry import DeadLetterQueue, RetryQueue
from repro.wsbus.selection import SelectionService
from repro.wsbus.transformation import (
    AggregatorModule,
    EnrichmentModule,
    MessageAdaptationService,
    PayloadTransformModule,
    SplitterModule,
)
from repro.wsbus.vep import VirtualEndpoint

__all__ = [
    "AdaptationManager",
    "AggregatorModule",
    "ApplicabilityRule",
    "BusEnforcementPoint",
    "BusMonitoringService",
    "BusinessEventTracer",
    "ContractValidationInspector",
    "Conversation",
    "ConversationManager",
    "ConversationState",
    "DeadLetterQueue",
    "EndpointQoS",
    "EnrichmentModule",
    "MessageAdaptationService",
    "MessageLogger",
    "ManagementEventSource",
    "MessagePipeline",
    "MessageProcessingModule",
    "MonitoringPoint",
    "PayloadTransformModule",
    "PipelineContext",
    "ProbeResult",
    "QoSMeasurementService",
    "QoSProbe",
    "QuarantineRecord",
    "RecoveryOutcome",
    "RetryQueue",
    "SelectionService",
    "SplitterModule",
    "VirtualEndpoint",
    "WsBus",
]
