"""Unit tests for the XML element tree and QNames."""

import pytest

from repro.xmlutils import (
    Element,
    QName,
    XmlError,
    parse_xml,
    serialize_xml,
    serialize_xml_reference,
)


class TestQName:
    def test_clark_notation(self):
        assert QName("urn:ns", "local").clark() == "{urn:ns}local"

    def test_no_namespace_clark(self):
        assert QName("", "local").clark() == "local"

    def test_parse_clark(self):
        name = QName.parse("{urn:ns}local")
        assert name.namespace == "urn:ns" and name.local == "local"

    def test_parse_bare(self):
        name = QName.parse("local")
        assert name.namespace == "" and name.local == "local"

    def test_equality_with_string(self):
        assert QName("urn:ns", "x") == "{urn:ns}x"
        assert QName("", "x") == "x"

    def test_hashable(self):
        table = {QName("urn:ns", "x"): 1}
        assert table[QName.parse("{urn:ns}x")] == 1

    def test_immutable(self):
        name = QName("a", "b")
        with pytest.raises(AttributeError):
            name.local = "c"

    def test_empty_local_rejected(self):
        with pytest.raises(ValueError):
            QName("ns", "")


class TestElementTree:
    def test_builder_add(self):
        root = Element("root")
        child = root.add("child", text="hello", attr="1")
        assert child.parent is root
        assert root.find("child") is child
        assert child.text == "hello"
        assert child.attributes["attr"] == "1"

    def test_append_reparents(self):
        a, b = Element("a"), Element("b")
        child = a.add("c")
        b.append(child)
        assert child.parent is b
        assert a.find("c") is None

    def test_insert_positions_child(self):
        root = Element("root")
        root.add("one")
        root.add("three")
        root.insert(1, Element("two"))
        assert [c.name.local for c in root.children] == ["one", "two", "three"]

    def test_remove_detaches(self):
        root = Element("root")
        child = root.add("child")
        root.remove(child)
        assert child.parent is None and not root.children

    def test_find_all(self):
        root = Element("root")
        root.add("item", text="1")
        root.add("other")
        root.add("item", text="2")
        assert [e.text for e in root.find_all("item")] == ["1", "2"]

    def test_find_respects_namespace(self):
        root = Element("root")
        root.add(QName("urn:a", "x"), text="a")
        root.add(QName("urn:b", "x"), text="b")
        assert root.find(QName("urn:b", "x")).text == "b"
        assert root.find("x") is None

    def test_iter_is_depth_first(self):
        root = Element("r")
        a = root.add("a")
        a.add("a1")
        root.add("b")
        assert [e.name.local for e in root.iter()] == ["r", "a", "a1", "b"]

    def test_child_text_with_default(self):
        root = Element("root")
        root.add("present", text="yes")
        assert root.child_text("present") == "yes"
        assert root.child_text("absent", "fallback") == "fallback"

    def test_string_value_concatenates(self):
        root = Element("r", text="a")
        root.add("c", text="b")
        assert root.string_value == "ab"

    def test_copy_is_deep_and_detached(self):
        root = Element("root", attributes={"k": "v"})
        root.add("child", text="t")
        duplicate = root.copy()
        assert duplicate.parent is None
        duplicate.find("child").text = "changed"
        assert root.find("child").text == "t"

    def test_structural_equality(self):
        a = Element("r", children=[Element("c", text="x")])
        b = Element("r", children=[Element("c", text="x")])
        assert a.structurally_equal(b)

    def test_structural_inequality_on_text(self):
        a = Element("r", children=[Element("c", text="x")])
        b = Element("r", children=[Element("c", text="y")])
        assert not a.structurally_equal(b)

    def test_structural_inequality_on_child_count(self):
        a = Element("r", children=[Element("c")])
        b = Element("r")
        assert not a.structurally_equal(b)


class TestSerialization:
    def test_round_trip_preserves_structure(self):
        root = Element(QName("urn:test", "root"), attributes={"version": "1"})
        root.add("plain", text="text & entities <ok>")
        nested = root.add(QName("urn:test", "nested"))
        nested.add("deep", text="value")
        parsed = parse_xml(serialize_xml(root))
        assert parsed.structurally_equal(root)

    def test_namespaced_round_trip(self):
        root = Element(QName("urn:a", "r"))
        root.add(QName("urn:b", "child"), text="x")
        parsed = parse_xml(serialize_xml(root))
        assert parsed.find(QName("urn:b", "child")).text == "x"

    def test_malformed_xml_raises(self):
        with pytest.raises(XmlError):
            parse_xml("<open>")

    def test_whitespace_only_text_dropped(self):
        parsed = parse_xml("<r>\n  <c>x</c>\n</r>")
        assert parsed.text is None
        assert parsed.find("c").text == "x"

    def test_indent_output_contains_newlines(self):
        root = Element("r", children=[Element("c")])
        assert "\n" in serialize_xml(root, indent=True)


def _multi_namespace_tree():
    root = Element(QName("urn:a", "root"), attributes={"plain": "1"})
    child = root.add(QName("urn:b", "child"), text="payload")
    child.append(Element(QName("urn:a", "leaf"), attributes={"{urn:c}ref": "x"}))
    root.add(QName("urn:b", "sibling"))
    return root


def _special_character_tree():
    root = Element("doc", text="a & b < c > d")
    root.append(
        Element("attrs", attributes={"q": 'say "hi"', "nl": "line1\nline2", "tab": "a\tb"})
    )
    root.add("entities", text="5 < 6 && 7 > 2")
    root.append(Element("cr", attributes={"v": "a\rb"}))
    return root


def _well_known_prefix_tree():
    # ElementTree assigns its registered prefix (wsdl) instead of ns0.
    root = Element(QName("http://schemas.xmlsoap.org/wsdl/", "definitions"))
    root.add(QName("http://schemas.xmlsoap.org/wsdl/", "message"))
    return root


def _xml_namespace_tree():
    # The xml: prefix is predeclared and must never get an xmlns declaration.
    return Element(
        "note",
        attributes={"{http://www.w3.org/XML/1998/namespace}lang": "en"},
        text="hello",
    )


def _empty_elements_tree():
    root = Element("r")
    root.add("empty")
    root.add("with-attr", a="1")
    root.add("with-text", text="")
    return root


def _unicode_tree():
    root = Element("r", text="héllo — 中文")
    root.append(Element("c", attributes={"v": "naïve"}))
    return root


def _deep_repeated_namespace_tree():
    root = Element(QName("urn:x", "a"))
    node = root
    for _ in range(6):
        node = node.add(QName("urn:x", "a"), text="t")
    return root


class TestFastSerializerDifferential:
    """The direct writer must match the ElementTree reference byte for byte."""

    CORPUS = {
        "multi_namespace": _multi_namespace_tree,
        "special_characters": _special_character_tree,
        "well_known_prefix": _well_known_prefix_tree,
        "xml_namespace_attr": _xml_namespace_tree,
        "empty_elements": _empty_elements_tree,
        "unicode": _unicode_tree,
        "deep_repeated_namespace": _deep_repeated_namespace_tree,
    }

    @pytest.mark.parametrize("name", sorted(CORPUS))
    def test_fast_path_matches_reference(self, name):
        tree = self.CORPUS[name]()
        assert serialize_xml(tree) == serialize_xml_reference(tree)

    @pytest.mark.parametrize("name", sorted(CORPUS))
    def test_fast_path_output_reparses(self, name):
        tree = self.CORPUS[name]()
        assert parse_xml(serialize_xml(tree)).structurally_equal(tree)

    def test_serialization_does_not_mutate_the_tree(self):
        tree = _multi_namespace_tree()
        before = serialize_xml_reference(tree)
        serialize_xml(tree)
        assert serialize_xml_reference(tree) == before
