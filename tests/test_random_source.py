"""Unit tests for deterministic named random streams."""

from repro.simulation import RandomSource


class TestRandomSource:
    def test_same_seed_same_stream(self):
        a = RandomSource(1).stream("x")
        b = RandomSource(1).stream("x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_differ(self):
        source = RandomSource(1)
        a = source.stream("a").random()
        b = source.stream("b").random()
        assert a != b

    def test_different_seeds_differ(self):
        assert RandomSource(1).stream("x").random() != RandomSource(2).stream("x").random()

    def test_stream_is_cached(self):
        source = RandomSource(3)
        assert source.stream("s") is source.stream("s")

    def test_adding_stream_does_not_perturb_existing(self):
        """The key property: new consumers never shift existing draws."""
        source_a = RandomSource(9)
        first = source_a.stream("main")
        draws_before = [first.random() for _ in range(3)]

        source_b = RandomSource(9)
        source_b.stream("newcomer")  # extra stream created first
        second = source_b.stream("main")
        draws_after = [second.random() for _ in range(3)]
        assert draws_before == draws_after

    def test_fork_is_deterministic(self):
        a = RandomSource(5).fork("child").stream("s").random()
        b = RandomSource(5).fork("child").stream("s").random()
        assert a == b

    def test_fork_differs_from_parent(self):
        parent = RandomSource(5)
        child = parent.fork("child")
        assert parent.stream("s").random() != child.stream("s").random()

    def test_fork_names_independent(self):
        parent = RandomSource(5)
        assert (
            parent.fork("a").stream("s").random() != parent.fork("b").stream("s").random()
        )
