"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.simulation import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
    Timeout,
)


class TestEnvironmentClock:
    def test_starts_at_zero(self):
        assert Environment().now == 0.0

    def test_custom_initial_time(self):
        assert Environment(10.0).now == 10.0

    def test_run_until_number_advances_clock(self, env):
        env.run(until=5.0)
        assert env.now == 5.0

    def test_run_backwards_rejected(self, env):
        env.run(until=5.0)
        with pytest.raises(SimulationError):
            env.run(until=1.0)

    def test_peek_empty_is_infinite(self, env):
        assert env.peek() == float("inf")

    def test_peek_returns_next_event_time(self, env):
        env.timeout(3.0)
        assert env.peek() == 3.0

    def test_step_without_events_raises(self, env):
        with pytest.raises(SimulationError):
            env.step()


class TestEvents:
    def test_event_starts_untriggered(self, env):
        event = env.event()
        assert not event.triggered
        assert not event.processed

    def test_succeed_carries_value(self, env):
        event = env.event()
        event.succeed("payload")
        env.run()
        assert event.ok and event.value == "payload"

    def test_double_trigger_rejected(self, env):
        event = env.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_requires_exception(self, env):
        event = env.event()
        with pytest.raises(SimulationError):
            event.fail("not an exception")

    def test_value_before_trigger_rejected(self, env):
        with pytest.raises(SimulationError):
            env.event().value

    def test_negative_delay_rejected(self, env):
        event = env.event()
        with pytest.raises(SimulationError):
            event.succeed(delay=-1)

    def test_unhandled_failure_surfaces(self, env):
        event = env.event()
        event.fail(RuntimeError("boom"))
        with pytest.raises(RuntimeError):
            env.run()

    def test_defused_failure_is_silent(self, env):
        event = env.event()
        event.fail(RuntimeError("boom"))
        event.defused = True
        env.run()  # no exception

    def test_delayed_succeed_fires_at_offset(self, env):
        event = env.event()
        event.succeed("v", delay=7.5)
        env.run()
        assert env.now == 7.5

    def test_callbacks_receive_event(self, env):
        event = env.event()
        seen = []
        event.callbacks.append(seen.append)
        event.succeed()
        env.run()
        assert seen == [event]


class TestTimeout:
    def test_timeout_advances_clock(self, env):
        env.timeout(2.0)
        env.run()
        assert env.now == 2.0

    def test_timeout_value(self, env):
        timeout = env.timeout(1.0, value="tick")
        env.run()
        assert timeout.value == "tick"

    def test_negative_timeout_rejected(self, env):
        with pytest.raises(SimulationError):
            env.timeout(-0.5)

    def test_zero_timeout_fires_immediately(self, env):
        timeout = env.timeout(0.0)
        env.run()
        assert timeout.processed and env.now == 0.0

    def test_timeouts_fire_in_order(self, env):
        order = []

        def proc(delay, tag):
            yield env.timeout(delay)
            order.append(tag)

        env.process(proc(3, "c"))
        env.process(proc(1, "a"))
        env.process(proc(2, "b"))
        env.run()
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self, env):
        order = []

        def proc(tag):
            yield env.timeout(1.0)
            order.append(tag)

        env.process(proc("first"))
        env.process(proc("second"))
        env.run()
        assert order == ["first", "second"]


class TestProcesses:
    def test_process_return_value(self, env):
        def proc():
            yield env.timeout(1)
            return 42

        assert env.run(env.process(proc())) == 42

    def test_nested_processes(self, env):
        def inner():
            yield env.timeout(1)
            return "in"

        def outer():
            value = yield env.process(inner())
            return f"out-{value}"

        assert env.run(env.process(outer())) == "out-in"

    def test_process_exception_propagates_to_run(self, env):
        def proc():
            yield env.timeout(1)
            raise ValueError("inside")

        with pytest.raises(ValueError, match="inside"):
            env.run(env.process(proc()))

    def test_waiting_process_catches_child_failure(self, env):
        def failing():
            yield env.timeout(1)
            raise ValueError("child")

        def parent():
            try:
                yield env.process(failing())
            except ValueError:
                return "caught"

        assert env.run(env.process(parent())) == "caught"

    def test_is_alive_lifecycle(self, env):
        def proc():
            yield env.timeout(1)

        process = env.process(proc())
        assert process.is_alive
        env.run()
        assert not process.is_alive

    def test_yielding_non_event_fails_process(self, env):
        def proc():
            yield "not an event"

        with pytest.raises(SimulationError):
            env.run(env.process(proc()))

    def test_requires_generator(self, env):
        with pytest.raises(SimulationError):
            env.process(lambda: None)

    def test_immediate_return(self, env):
        def proc():
            return 7
            yield  # pragma: no cover

        assert env.run(env.process(proc())) == 7

    def test_process_waits_on_already_processed_event(self, env):
        timeout = env.timeout(1.0, value="done")
        env.run()

        def proc():
            value = yield timeout
            return value

        assert env.run(env.process(proc())) == "done"


class TestInterrupt:
    def test_interrupt_delivers_cause(self, env):
        def victim():
            try:
                yield env.timeout(100)
            except Interrupt as interrupt:
                return interrupt.cause

        process = env.process(victim())

        def interrupter():
            yield env.timeout(1)
            process.interrupt("why")

        env.process(interrupter())
        assert env.run(process) == "why"
        assert env.now == 1.0

    def test_interrupting_finished_process_rejected(self, env):
        def quick():
            yield env.timeout(1)

        process = env.process(quick())
        env.run()
        with pytest.raises(SimulationError):
            process.interrupt()

    def test_interrupted_process_does_not_resume_from_original_event(self, env):
        resumed = []

        def victim():
            try:
                yield env.timeout(5)
                resumed.append("timer")
            except Interrupt:
                yield env.timeout(10)
                resumed.append("post-interrupt")

        process = env.process(victim())

        def interrupter():
            yield env.timeout(1)
            process.interrupt()

        env.process(interrupter())
        env.run()
        assert resumed == ["post-interrupt"]
        assert env.now == 11.0


class TestConditions:
    def test_any_of_first_wins(self, env):
        def slow():
            yield env.timeout(10)
            return "slow"

        def fast():
            yield env.timeout(1)
            return "fast"

        def racer():
            a, b = env.process(slow()), env.process(fast())
            result = yield env.any_of([a, b])
            return list(result.values())

        assert env.run(env.process(racer())) == ["fast"]

    def test_any_of_pending_timeout_does_not_count_as_fired(self, env):
        """Regression: a Timeout is scheduled at creation but must not
        satisfy a condition until it actually fires."""

        def proc():
            work = env.process(iter_work())
            timer = env.timeout(50)
            result = yield env.any_of([work, timer])
            return work in result

        def iter_work():
            yield env.timeout(1)
            return "done"

        assert env.run(env.process(proc())) is True

    def test_all_of_waits_for_everything(self, env):
        def worker(delay):
            yield env.timeout(delay)
            return delay

        def gather():
            processes = [env.process(worker(d)) for d in (3, 1, 2)]
            result = yield env.all_of(processes)
            return sorted(result.values())

        assert env.run(env.process(gather())) == [1, 2, 3]
        assert env.now == 3.0

    def test_any_of_failure_propagates(self, env):
        def bad():
            yield env.timeout(1)
            raise RuntimeError("bad")

        def racer():
            yield env.any_of([env.process(bad()), env.timeout(10)])

        with pytest.raises(RuntimeError):
            env.run(env.process(racer()))

    def test_empty_any_of_succeeds_immediately(self, env):
        condition = env.any_of([])
        env.run()
        assert condition.processed and condition.value == {}

    def test_all_of_with_already_processed_events(self, env):
        t1 = env.timeout(1)
        env.run()

        def proc():
            result = yield env.all_of([t1, env.timeout(1)])
            return len(result)

        assert env.run(env.process(proc())) == 2

    def test_condition_rejects_foreign_environment(self, env):
        other = Environment()
        with pytest.raises(SimulationError):
            env.any_of([other.timeout(1)])

    def test_run_until_event(self, env):
        timer = env.timeout(4.0, value="fired")
        later = env.timeout(9.0)
        assert env.run(until=timer) == "fired"
        assert env.now == 4.0
        assert not later.processed

    def test_run_until_unreachable_event_raises(self, env):
        event = env.event()  # never triggered
        env.timeout(1.0)
        with pytest.raises(SimulationError):
            env.run(until=event)
