"""Span exporters: where finished spans go.

Three built-ins, all registered via ``tracer.add_exporter(...)``:

- :class:`InMemoryExporter` — collects spans in a list with query
  helpers; the exporter tests and integration tests use.
- :class:`JsonlExporter` — appends one JSON object per span to a file
  (the ``--trace`` CLI flag's format; see :func:`read_spans_jsonl` for
  the round trip).
- :class:`ConsoleSummaryExporter` — buffers spans and renders a
  human-readable per-trace tree (:func:`render_trace_tree`).
"""

from __future__ import annotations

import io
import json
import sys
import warnings
from pathlib import Path

from repro.observability.tracing import Span

__all__ = [
    "ConsoleSummaryExporter",
    "InMemoryExporter",
    "JsonlExporter",
    "SpanExporter",
    "read_spans_jsonl",
    "render_trace_tree",
]


class SpanExporter:
    """Base class: receives each span exactly once, when it ends."""

    def export(self, span: Span) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush/release resources; further exports are undefined."""


class InMemoryExporter(SpanExporter):
    """Collects finished spans in memory (the test exporter)."""

    def __init__(self) -> None:
        self.spans: list[Span] = []

    def export(self, span: Span) -> None:
        self.spans.append(span)

    def clear(self) -> None:
        self.spans.clear()

    # -- queries -------------------------------------------------------------

    def find(
        self, name: str | None = None, correlation_id: str | None = None
    ) -> list[Span]:
        return [
            span
            for span in self.spans
            if (name is None or span.name == name)
            and (correlation_id is None or span.correlation_id == correlation_id)
        ]

    def by_correlation(self) -> dict[str | None, list[Span]]:
        grouped: dict[str | None, list[Span]] = {}
        for span in self.spans:
            grouped.setdefault(span.correlation_id, []).append(span)
        return grouped


class JsonlExporter(SpanExporter):
    """Writes one JSON object per finished span to ``path`` (or a stream).

    The file is opened **line-buffered** and every span is written as one
    complete line, so a crash mid-run loses at most the line being
    written — :func:`read_spans_jsonl` tolerates that truncated tail.
    Usable as a context manager::

        with JsonlExporter("spans.jsonl") as exporter:
            tracer.add_exporter(exporter)
            ...

    ``flush()`` forces buffered lines to disk; ``close()`` is idempotent.
    """

    def __init__(self, path, mode: str = "w") -> None:
        if hasattr(path, "write"):
            self._file = path
            self._owns_file = False
            self.path = None
        else:
            self.path = Path(path)
            # buffering=1 == line buffered: each span line reaches the OS
            # as soon as it is complete (crash-safety for long runs).
            self._file = self.path.open(mode, encoding="utf-8", buffering=1)
            self._owns_file = True
        self.exported = 0
        self._closed = False

    def export(self, span: Span) -> None:
        self._file.write(json.dumps(span.to_dict(), separators=(",", ":")) + "\n")
        self.exported += 1

    def flush(self) -> None:
        """Push buffered lines to the OS without closing the file."""
        if not self._closed:
            self._file.flush()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._file.flush()
        if self._owns_file:
            self._file.close()

    def __enter__(self) -> "JsonlExporter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_spans_jsonl(path) -> list[Span]:
    """Load spans back from a :class:`JsonlExporter` file.

    A truncated *trailing* line (the writer crashed mid-write) is
    tolerated with a warning; corruption anywhere else still raises.
    """
    if hasattr(path, "read"):
        lines = path.read().splitlines()
    else:
        lines = Path(path).read_text(encoding="utf-8").splitlines()
    lines = [line for line in lines if line.strip()]
    spans: list[Span] = []
    for index, line in enumerate(lines):
        try:
            spans.append(Span.from_dict(json.loads(line)))
        except json.JSONDecodeError:
            if index == len(lines) - 1:
                warnings.warn(
                    f"ignoring truncated trailing span line ({len(line)} bytes)",
                    RuntimeWarning,
                    stacklevel=2,
                )
                break
            raise
    return spans


def render_trace_tree(spans: list[Span]) -> str:
    """Indented per-trace view of a span collection.

    Spans are grouped by ``trace_id``; within a trace, children indent
    under their parent. Each line shows simulated start time, duration,
    status (when not ok), correlation ID (on roots) and key attributes.
    """
    by_id = {span.span_id: span for span in spans}
    children: dict[str | None, list[Span]] = {}
    for span in spans:
        parent = span.parent_id if span.parent_id in by_id else None
        children.setdefault(parent, []).append(span)
    for bucket in children.values():
        bucket.sort(key=lambda s: (s.start_time, s.span_id))

    lines: list[str] = []

    def walk(span: Span, depth: int) -> None:
        indent = "  " * depth
        status = "" if span.status == "ok" else f" [{span.status}]"
        corr = f" corr={span.correlation_id}" if depth == 0 and span.correlation_id else ""
        attrs = ""
        if span.attributes:
            rendered = " ".join(f"{k}={v}" for k, v in sorted(span.attributes.items()))
            attrs = f" {{{rendered}}}"
        lines.append(
            f"{indent}{span.start_time:10.4f}s +{span.duration * 1000:8.2f}ms "
            f"{span.name}{status}{corr}{attrs}"
        )
        for time, name, event_attrs in span.events:
            extra = (
                " " + " ".join(f"{k}={v}" for k, v in sorted(event_attrs.items()))
                if event_attrs
                else ""
            )
            lines.append(f"{indent}    · {time:.4f}s {name}{extra}")
        for child in children.get(span.span_id, ()):
            walk(child, depth + 1)

    for root in children.get(None, ()):
        walk(root, 0)
    return "\n".join(lines)


class ConsoleSummaryExporter(SpanExporter):
    """Buffers spans; prints the rendered trace tree on :meth:`close`."""

    def __init__(self, stream=None, limit: int = 10_000) -> None:
        self._stream = stream
        self._limit = limit
        self.spans: list[Span] = []
        self.dropped = 0

    def export(self, span: Span) -> None:
        if len(self.spans) >= self._limit:
            self.dropped += 1
            return
        self.spans.append(span)

    def render(self) -> str:
        out = io.StringIO()
        out.write(f"=== trace summary: {len(self.spans)} spans")
        if self.dropped:
            out.write(f" ({self.dropped} dropped beyond the {self._limit} limit)")
        out.write(" ===\n")
        out.write(render_trace_tree(self.spans))
        return out.getvalue()

    def close(self) -> None:
        stream = self._stream if self._stream is not None else sys.stdout
        print(self.render(), file=stream)
