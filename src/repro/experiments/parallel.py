"""Process-pool sharded experiment runner.

The Table 1 / Figure 5 / fault-storm matrices are embarrassingly parallel:
every ``(configuration, seed)`` cell builds its own seeded deployment and
simulation environment, so cells share no state and can run in separate
worker processes. This module fans cells out across a process pool and
merges the results in an order fixed by the *cell key* — never by
completion order — so ``--jobs 4`` produces per-seed results byte-identical
to ``--jobs 1``.

Design rules that keep the merge deterministic:

- A :class:`Cell` is ``(key, runner, kwargs)`` where ``runner`` is a
  module-level function (picklable by reference) returning plain data.
- :func:`run_cells` executes cells (inline for ``jobs <= 1``; otherwise in
  a pool) and returns ``{key: result}`` ordered by sorted key. Execution
  order is irrelevant: cells are seeded and isolated.
- A crashing shard never hangs or silently drops its cell: every failure
  is collected and reported per-key through :exc:`ShardError`.

Tracing (``--trace``) records spans in-process, so a non-None ``tracer``
forces the calling harness back to ``jobs=1``.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any, Callable

from repro.experiments.harness import (
    run_direct_configuration,
    run_fault_storm,
    run_rtt_point,
    run_vep_configuration,
)

__all__ = [
    "Cell",
    "ShardError",
    "figure5_cells",
    "figure5_point_cell",
    "run_cells",
    "storm_cell",
    "storm_cells",
    "table1_cells",
    "table1_direct_cell",
    "table1_vep_cell",
]


@dataclass(frozen=True)
class Cell:
    """One independent experiment shard.

    ``key`` orders the merge and names the cell in failure reports;
    ``runner`` must be a module-level callable returning picklable data.
    """

    key: tuple
    runner: Callable[..., Any]
    kwargs: dict = field(default_factory=dict)


class ShardError(RuntimeError):
    """One or more experiment shards failed.

    ``failures`` maps each failed cell key to the exception it raised (or
    the pool-level error, e.g. ``BrokenProcessPool``, if the worker died).
    """

    def __init__(self, failures: dict[tuple, BaseException]) -> None:
        self.failures = dict(failures)
        detail = "; ".join(
            f"{key}: {type(error).__name__}: {error}"
            for key, error in sorted(self.failures.items(), key=lambda item: item[0])
        )
        super().__init__(f"{len(self.failures)} experiment shard(s) failed: {detail}")


def _pool_context():
    """Prefer fork (workers inherit the imported simulation stack)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def run_cells(cells: list[Cell], jobs: int = 1) -> dict[tuple, Any]:
    """Execute every cell; return ``{key: result}`` in sorted-key order.

    ``jobs <= 1`` runs inline in the calling process (no pool, no pickling);
    ``jobs > 1`` fans out over a process pool of at most ``jobs`` workers.
    Raises :exc:`ShardError` naming every failed cell if any shard raised.
    """
    ordered = sorted(cells, key=lambda cell: cell.key)
    keys = [cell.key for cell in ordered]
    if len(set(keys)) != len(keys):
        raise ValueError(f"duplicate cell keys in {keys}")
    results: dict[tuple, Any] = {}
    failures: dict[tuple, BaseException] = {}
    if jobs <= 1 or len(ordered) <= 1:
        for cell in ordered:
            try:
                results[cell.key] = cell.runner(**cell.kwargs)
            except Exception as error:  # noqa: BLE001 - reported per cell
                failures[cell.key] = error
    else:
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(ordered)), mp_context=_pool_context()
        ) as pool:
            futures = [(cell, pool.submit(cell.runner, **cell.kwargs)) for cell in ordered]
            for cell, future in futures:
                try:
                    results[cell.key] = future.result()
                except Exception as error:  # noqa: BLE001 - includes BrokenProcessPool
                    failures[cell.key] = error
    if failures:
        raise ShardError(failures)
    return {key: results[key] for key in keys}


# -- cell runners (module-level: picklable by reference) ------------------------


def table1_direct_cell(retailer: str, seed: int, clients: int, requests: int):
    """One direct-configuration Table 1 cell."""
    return run_direct_configuration(retailer, seed, clients=clients, requests=requests)


def table1_vep_cell(seed: int, clients: int, requests: int, tracer=None):
    """One wsBus-VEP Table 1 cell (row only; the bus stays in the worker)."""
    row, _bus, _result = run_vep_configuration(
        seed, clients=clients, requests=requests, tracer=tracer
    )
    return row


def figure5_point_cell(
    operation: str, padding: int, through_bus: bool, requests: int, tracer=None
):
    """One Figure 5 cell: the mean RTT at one request size."""
    rtt, _result = run_rtt_point(
        operation, padding, through_bus=through_bus, requests=requests, tracer=tracer
    )
    return rtt


def storm_cell(
    seed: int, resilience: bool, clients: int, requests: int, tracer=None, slo: bool = False
):
    """One fault-storm arm; the (unpicklable) bus is stripped from the result."""
    result = run_fault_storm(
        seed=seed,
        resilience=resilience,
        clients=clients,
        requests=requests,
        tracer=tracer,
        slo=slo,
    )
    return replace(result, bus=None)


# -- matrix builders ------------------------------------------------------------


def table1_cells(
    seeds, clients: int, requests: int, tracer=None
) -> list[Cell]:
    """The full Table 1 matrix: 4 direct configurations + the VEP, per seed."""
    cells = []
    for retailer in ("A", "B", "C", "D"):
        for seed in seeds:
            cells.append(
                Cell(
                    (retailer, seed),
                    table1_direct_cell,
                    dict(retailer=retailer, seed=seed, clients=clients, requests=requests),
                )
            )
    for seed in seeds:
        kwargs = dict(seed=seed, clients=clients, requests=requests)
        if tracer is not None:
            kwargs["tracer"] = tracer
        cells.append(Cell(("VEP", seed), table1_vep_cell, kwargs))
    return cells


def figure5_cells(
    sizes_kb, operations, requests: int, tracer=None
) -> list[Cell]:
    """The Figure 5 sweep: (operation, size, direct|bus) cells."""
    cells = []
    for operation in operations:
        for size_kb in sizes_kb:
            padding = size_kb * 1024
            cells.append(
                Cell(
                    (operation, size_kb, "direct"),
                    figure5_point_cell,
                    dict(
                        operation=operation,
                        padding=padding,
                        through_bus=False,
                        requests=requests,
                    ),
                )
            )
            kwargs = dict(
                operation=operation, padding=padding, through_bus=True, requests=requests
            )
            if tracer is not None:
                kwargs["tracer"] = tracer
            cells.append(Cell((operation, size_kb, "bus"), figure5_point_cell, kwargs))
    return cells


def storm_cells(
    seed: int, clients: int, requests: int, tracer=None, slo: bool = False
) -> list[Cell]:
    """Both fault-storm ablation arms (resilience off / on)."""
    cells = []
    for resilience in (False, True):
        kwargs = dict(seed=seed, resilience=resilience, clients=clients, requests=requests)
        if tracer is not None and resilience:
            kwargs["tracer"] = tracer
        if slo and resilience:
            # The SLO loop rides the resilience arm only: its reaction
            # policy tightens breakers, which need the service active.
            kwargs["slo"] = True
        cells.append(Cell((seed, "on" if resilience else "off"), storm_cell, kwargs))
    return cells
