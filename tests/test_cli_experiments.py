"""Tests for the CLI and the shared experiment harness."""

import pytest

from repro.cli import build_parser, main
from repro.experiments import (
    regenerate_figure5,
    regenerate_table1,
    render_figure5,
    render_table1,
    run_direct_configuration,
    run_vep_configuration,
)


class TestHarness:
    def test_direct_configuration_reports(self):
        row = run_direct_configuration("A", seed=11, clients=1, requests=40)
        assert "Retailer A" in row.configuration
        assert row.failures_per_1000 >= 0
        assert 0 <= row.availability <= 1

    def test_vep_configuration_reports(self):
        row, bus, result = run_vep_configuration(seed=11, clients=1, requests=40)
        assert "wsBus VEP" in row.configuration
        assert len(result.records) == 40
        assert bus.veps["retailers"].stats.requests == 40

    def test_table1_small(self):
        rows = regenerate_table1(seeds=(11,), clients=1, requests=30)
        assert set(rows) == {"A", "B", "C", "D", "VEP"}
        rendered = render_table1(rows)
        assert "Table 1" in rendered and "wsBus VEP" in rendered

    def test_figure5_small(self):
        series = regenerate_figure5(sizes_kb=(1, 8), operations=("getCatalog",), requests=20)
        (direct, mediated) = series["getCatalog"]
        assert len(direct) == len(mediated) == 2
        assert all(m > d for d, m in zip(direct, mediated))
        assert "Figure 5" in render_figure5(series, sizes_kb=(1, 8))


class TestCli:
    def test_parser_commands(self):
        parser = build_parser()
        for command in ("table1", "figure5", "scenarios", "quickcheck"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scenarios_command_runs(self, capsys):
        assert main(["scenarios"]) == 0
        output = capsys.readouterr().out
        assert "customization scenario matrix" in output
        assert "Business-value ledger" in output

    def test_table1_command_runs(self, capsys):
        assert main(["table1", "--seeds", "11", "--clients", "1", "--requests", "30"]) == 0
        output = capsys.readouterr().out
        assert "Reliability (ours)" in output

    def test_storm_slo_trace_writes_operations_artifacts(self, capsys, tmp_path):
        trace = tmp_path / "storm.jsonl"
        assert (
            main(
                [
                    "storm",
                    "--seed",
                    "7",
                    "--clients",
                    "3",
                    "--requests",
                    "25",
                    "--slo",
                    "--trace",
                    str(trace),
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "SLO events (resilience on):" in output
        assert "sloBurnRateExceeded" in output
        assert trace.exists()
        flight = tmp_path / "storm.jsonl.flight.json"
        prom = tmp_path / "storm.jsonl.prom"
        assert flight.exists() and prom.exists()
        assert "wsbus_endpoint_requests_total" in prom.read_text(encoding="utf-8")

    def test_top_command_renders_operations_table(self, capsys):
        assert main(["top", "--seed", "7", "--clients", "3", "--requests", "20"]) == 0
        output = capsys.readouterr().out
        assert "wsBus top" in output
        assert "Breaker" in output and "Burn" in output
