"""Resilience subsystem: graceful degradation machinery for wsBus.

Four protections, all configured through WS-Policy4MASC resilience
assertions (``resilience.configure`` policies) so behavior stays
policy-driven like everything else in MASC:

- **circuit breakers** (:mod:`repro.resilience.breaker`): per-endpoint
  closed/open/half-open state machines fed by invocation outcomes;
  open endpoints are skipped by selection and fail fast at send time
  until a half-open probe succeeds;
- **bulkheads** (:mod:`repro.resilience.bulkhead`): bounded concurrency
  partitions per endpoint and per VEP with bounded wait queues;
- **adaptive timeouts** (:mod:`repro.resilience.timeouts`): invocation
  timeouts derived from the QoS Measurement Service's observed latency
  percentiles instead of one fixed ``invocation_timeout``;
- **load shedding** (:mod:`repro.resilience.shedding`): bus-wide
  admission control rejecting work with a retryable fault once
  mediation utilization or retry-queue depth crosses its threshold.

:class:`~repro.resilience.service.ResilienceService` ties them together
and is hosted by :class:`~repro.wsbus.bus.WsBus`.
"""

from repro.resilience.breaker import BreakerState, BreakerTransition, CircuitBreaker
from repro.resilience.bulkhead import Bulkhead
from repro.resilience.service import Admission, ResilienceService
from repro.resilience.shedding import LoadShedder
from repro.resilience.timeouts import adaptive_timeout

__all__ = [
    "Admission",
    "BreakerState",
    "BreakerTransition",
    "Bulkhead",
    "CircuitBreaker",
    "LoadShedder",
    "ResilienceService",
    "adaptive_timeout",
]
