"""Reliability and availability computed from invocation records."""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.services import InvocationRecord

__all__ = [
    "ReliabilityReport",
    "availability_from_records",
    "failures_per_1000",
    "mtbf_mttr",
    "reliability_report",
]


def failures_per_1000(records: Sequence[InvocationRecord]) -> float:
    """The paper's reliability figure: failures seen per 1000 requests."""
    if not records:
        return 0.0
    failures = sum(1 for record in records if not record.succeeded)
    return failures * 1000.0 / len(records)


def _failure_bursts(records: Sequence[InvocationRecord]) -> list[tuple[float, float]]:
    """Contiguous failed-request runs as (start, end) windows.

    From the client's standpoint a run of consecutive failures is one
    outage: it begins with the first failed request and ends when the next
    request succeeds.
    """
    bursts: list[tuple[float, float]] = []
    ordered = sorted(records, key=lambda r: r.started_at)
    burst_start: float | None = None
    burst_end = 0.0
    for record in ordered:
        if not record.succeeded:
            if burst_start is None:
                burst_start = record.started_at
            burst_end = max(burst_end, record.finished_at)
        elif burst_start is not None:
            bursts.append((burst_start, max(burst_end, burst_start)))
            burst_start = None
    if burst_start is not None:
        bursts.append((burst_start, max(burst_end, burst_start)))
    return bursts


def mtbf_mttr(records: Sequence[InvocationRecord]) -> tuple[float | None, float | None]:
    """Estimate (MTBF, MTTR) from the request-outcome timeline.

    MTTR is the mean outage-burst duration. MTBF is the mean interval
    between the *end* of one outage and the *start* of the next (plus the
    leading uptime), i.e. mean uninterrupted service time.
    """
    if not records:
        return None, None
    bursts = _failure_bursts(records)
    ordered = sorted(records, key=lambda r: r.started_at)
    horizon_start = ordered[0].started_at
    horizon_end = max(record.finished_at for record in ordered)
    if not bursts:
        return horizon_end - horizon_start, None
    mttr = sum(end - start for start, end in bursts) / len(bursts)
    uptimes: list[float] = []
    previous_end = horizon_start
    for start, end in bursts:
        uptimes.append(max(0.0, start - previous_end))
        previous_end = end
    uptimes.append(max(0.0, horizon_end - previous_end))
    positive = [u for u in uptimes if u > 0]
    mtbf = sum(positive) / len(positive) if positive else 0.0
    return mtbf, mttr


def availability_from_records(records: Sequence[InvocationRecord]) -> float:
    """The paper's availability: MTBF / (MTBF + MTTR)."""
    mtbf, mttr = mtbf_mttr(records)
    if mtbf is None:
        return 0.0
    if mttr is None:
        return 1.0
    if mtbf + mttr <= 0:
        return 0.0
    return mtbf / (mtbf + mttr)


@dataclass(frozen=True)
class ReliabilityReport:
    """The Table 1 row for one configuration."""

    configuration: str
    requests: int
    failures: int
    failures_per_1000: float
    availability: float
    mtbf: float | None
    mttr: float | None

    def row(self) -> list[str]:
        return [
            self.configuration,
            str(self.requests),
            f"{self.failures_per_1000:.0f} failures per 1000 requests",
            f"{self.availability:.3f}",
        ]


def reliability_report(
    configuration: str, records: Sequence[InvocationRecord]
) -> ReliabilityReport:
    """Build one Table 1 row from a run's invocation records."""
    mtbf, mttr = mtbf_mttr(records)
    return ReliabilityReport(
        configuration=configuration,
        requests=len(records),
        failures=sum(1 for record in records if not record.succeeded),
        failures_per_1000=failures_per_1000(records),
        availability=availability_from_records(records),
        mtbf=mtbf,
        mttr=mttr,
    )
