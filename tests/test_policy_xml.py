"""Unit tests for WS-Policy4MASC XML serialization and parsing."""

import pytest

from repro.policy import (
    ActionError,
    AdaptationPolicy,
    AddActivityAction,
    BusinessValue,
    ConcurrentInvokeAction,
    ExtendTimeoutAction,
    FederationAction,
    InvokeSpec,
    MessageCondition,
    MonitoringPolicy,
    PolicyDocument,
    PolicyError,
    PolicyScope,
    QoSThreshold,
    RemoveActivityAction,
    ReplaceActivityAction,
    RetryAction,
    ShardRoutingAction,
    SkipAction,
    SubstituteAction,
    TerminateProcessAction,
    parse_policy_document,
    serialize_policy_document,
)
from repro.policy.actions import ResumeProcessAction, SuspendProcessAction
from repro.soap import FaultCode


def full_document() -> PolicyDocument:
    document = PolicyDocument("everything")
    document.monitoring_policies.append(
        MonitoringPolicy(
            name="watch",
            events=("message.request", "message.response"),
            scope=PolicyScope(service_type="Retailer", operation="getCatalog"),
            condition="amount > 100",
            conditions=(
                MessageCondition("CustomerID", "exists"),
                MessageCondition("amount", "lte", "10000"),
            ),
            qos_thresholds=(QoSThreshold("response_time", "lte", 1.5, window=30, aggregate="p95"),),
            extract={"amount": "amount", "customer": "CustomerID"},
            classify_as=FaultCode.SLA_VIOLATION,
            emits=("order.large",),
            priority=7,
        )
    )
    document.adaptation_policies.append(
        AdaptationPolicy(
            name="recover",
            triggers=("fault.Timeout", "fault.*"),
            scope=PolicyScope(endpoint="http://scm/*"),
            condition="fault_code == 'Timeout'",
            state_before="normal",
            state_after="degraded",
            actions=(
                SuspendProcessAction(),
                ExtendTimeoutAction(extra_seconds=12.0),
                RetryAction(max_retries=5, delay_seconds=1.5, backoff_multiplier=2.0),
                SubstituteAction(strategy="backup", backup_address="http://backup"),
                ConcurrentInvokeAction(max_targets=3),
                SkipAction(reason="optional step"),
                ResumeProcessAction(),
                TerminateProcessAction(reason="last resort"),
            ),
            business_value=BusinessValue(-4.5, "USD", "recovery cost"),
            priority=3,
            adaptation_type="correction",
        )
    )
    document.adaptation_policies.append(
        AdaptationPolicy(
            name="customize",
            triggers=("trade.international",),
            adaptation_type="customization",
            actions=(
                AddActivityAction(
                    anchor="place-trade",
                    position="before",
                    block_name="variation-block",
                    bindings={"seed": "$amount", "mode": "fast"},
                    invokes=(
                        InvokeSpec(
                            name="convert",
                            operation="convert",
                            service_type="CurrencyConversion",
                            inputs={"amount": "$amount"},
                            outputs={"local": "converted"},
                            timeout_seconds=9.0,
                        ),
                        InvokeSpec(
                            name="audit",
                            operation="logEvent",
                            address="http://log",
                        ),
                    ),
                ),
                RemoveActivityAction(target="a-block", block_end="b-block"),
                ReplaceActivityAction(
                    target="old",
                    invokes=(InvokeSpec(name="new", operation="op", address="http://new"),),
                ),
            ),
        )
    )
    return document


class TestRoundTrip:
    def test_full_round_trip_is_stable(self):
        document = full_document()
        xml_once = serialize_policy_document(document, indent=True)
        reparsed = parse_policy_document(xml_once)
        xml_twice = serialize_policy_document(reparsed, indent=True)
        assert xml_once == xml_twice

    def test_monitoring_fields_survive(self):
        reparsed = parse_policy_document(serialize_policy_document(full_document()))
        policy = reparsed.monitoring_policies[0]
        assert policy.name == "watch"
        assert policy.events == ("message.request", "message.response")
        assert policy.scope.service_type == "Retailer"
        assert policy.condition == "amount > 100"
        assert len(policy.conditions) == 2
        assert policy.conditions[1].operator == "lte"
        assert policy.qos_thresholds[0].aggregate == "p95"
        assert policy.extract == {"amount": "amount", "customer": "CustomerID"}
        assert policy.classify_as is FaultCode.SLA_VIOLATION
        assert policy.emits == ("order.large",)
        assert policy.priority == 7

    def test_adaptation_fields_survive(self):
        reparsed = parse_policy_document(serialize_policy_document(full_document()))
        policy = reparsed.adaptation_policies[0]
        assert policy.state_before == "normal" and policy.state_after == "degraded"
        assert policy.business_value.amount == -4.5
        assert policy.business_value.currency == "USD"
        assert policy.priority == 3
        retry = policy.actions[2]
        assert isinstance(retry, RetryAction)
        assert (retry.max_retries, retry.delay_seconds, retry.backoff_multiplier) == (5, 1.5, 2.0)
        substitute = policy.actions[3]
        assert substitute.strategy == "backup" and substitute.backup_address == "http://backup"

    def test_customization_actions_survive(self):
        reparsed = parse_policy_document(serialize_policy_document(full_document()))
        policy = reparsed.adaptation_policies[1]
        add, remove, replace = policy.actions
        assert isinstance(add, AddActivityAction)
        assert add.block_name == "variation-block"
        assert add.bindings == {"seed": "$amount", "mode": "fast"}
        assert add.invokes[0].timeout_seconds == 9.0
        assert add.invokes[0].outputs == {"local": "converted"}
        assert add.invokes[1].address == "http://log"
        assert isinstance(remove, RemoveActivityAction) and remove.block_end == "b-block"
        assert isinstance(replace, ReplaceActivityAction)
        assert replace.invokes[0].name == "new"

    def test_adaptation_type_survives(self):
        reparsed = parse_policy_document(serialize_policy_document(full_document()))
        assert reparsed.adaptation_policies[1].adaptation_type == "customization"


class TestParsingErrors:
    def test_not_a_policy_document(self):
        with pytest.raises(PolicyError):
            parse_policy_document("<NotPolicy/>")

    def test_unknown_assertion_rejected(self):
        xml = (
            '<Policy xmlns="http://schemas.xmlsoap.org/ws/2004/09/policy" Name="d">'
            '<Mystery xmlns="http://masc.web.cse.unsw.edu.au/ns/ws-policy4masc"/>'
            "</Policy>"
        )
        with pytest.raises(PolicyError):
            parse_policy_document(xml)

    def test_unknown_action_rejected(self):
        xml = (
            '<wsp:Policy xmlns:wsp="http://schemas.xmlsoap.org/ws/2004/09/policy" '
            'xmlns:masc="http://masc.web.cse.unsw.edu.au/ns/ws-policy4masc" Name="d">'
            '<masc:AdaptationPolicy name="a"><masc:On event="e"/>'
            "<masc:Actions><masc:FlyToTheMoon/></masc:Actions>"
            "</masc:AdaptationPolicy></wsp:Policy>"
        )
        with pytest.raises(PolicyError):
            parse_policy_document(xml)

    def test_missing_required_attribute(self):
        xml = (
            '<wsp:Policy xmlns:wsp="http://schemas.xmlsoap.org/ws/2004/09/policy" '
            'xmlns:masc="http://masc.web.cse.unsw.edu.au/ns/ws-policy4masc" Name="d">'
            '<masc:MonitoringPolicy name="m"><masc:On/></masc:MonitoringPolicy>'
            "</wsp:Policy>"
        )
        with pytest.raises(PolicyError):
            parse_policy_document(xml)

    def test_adaptation_without_actions_element(self):
        xml = (
            '<wsp:Policy xmlns:wsp="http://schemas.xmlsoap.org/ws/2004/09/policy" '
            'xmlns:masc="http://masc.web.cse.unsw.edu.au/ns/ws-policy4masc" Name="d">'
            '<masc:AdaptationPolicy name="a"><masc:On event="e"/></masc:AdaptationPolicy>'
            "</wsp:Policy>"
        )
        with pytest.raises(PolicyError):
            parse_policy_document(xml)

    def test_ws_policy_operators_flattened(self):
        xml = (
            '<wsp:Policy xmlns:wsp="http://schemas.xmlsoap.org/ws/2004/09/policy" '
            'xmlns:masc="http://masc.web.cse.unsw.edu.au/ns/ws-policy4masc" Name="d">'
            "<wsp:ExactlyOne><wsp:All>"
            '<masc:AdaptationPolicy name="a" priority="1"><masc:On event="e"/>'
            '<masc:Actions><masc:Retry maxRetries="1"/></masc:Actions>'
            "</masc:AdaptationPolicy>"
            "</wsp:All></wsp:ExactlyOne></wsp:Policy>"
        )
        document = parse_policy_document(xml)
        assert document.adaptation_policies[0].name == "a"

    def test_document_name_defaults(self):
        xml = '<Policy xmlns="http://schemas.xmlsoap.org/ws/2004/09/policy"/>'
        assert parse_policy_document(xml).name == "unnamed"


class TestFederationVocabulary:
    def _round_trip(self, *actions):
        document = PolicyDocument("federation")
        document.adaptation_policies.append(
            AdaptationPolicy(
                name="fleet-config",
                triggers=("federation.configure",),
                scope=PolicyScope(),
                actions=tuple(actions),
                adaptation_type="prevention",
            )
        )
        reparsed = parse_policy_document(serialize_policy_document(document))
        return reparsed.adaptation_policies[0]

    def test_federation_action_round_trips(self):
        action = FederationAction(
            heartbeat_interval_seconds=0.25,
            suspicion_multiplier=4.0,
            gossip_interval_seconds=1.5,
            gossip_fanout=2,
            lease_seconds=2.0,
            virtual_nodes=16,
        )
        policy = self._round_trip(action)
        assert policy.triggers == ("federation.configure",)
        assert policy.actions == (action,)

    def test_shard_routing_round_trips_with_defaults(self):
        policy = self._round_trip(
            FederationAction(),
            ShardRoutingAction(bus="bus-1", vep_pattern="orders-*"),
            ShardRoutingAction(bus="bus-0"),
        )
        assert policy.actions == (
            FederationAction(),
            ShardRoutingAction(bus="bus-1", vep_pattern="orders-*"),
            ShardRoutingAction(bus="bus-0"),
        )
        assert policy.actions[2].vep_pattern == "*"

    def test_federation_action_validation(self):
        with pytest.raises(ActionError):
            FederationAction(heartbeat_interval_seconds=0.0)
        with pytest.raises(ActionError):
            FederationAction(suspicion_multiplier=1.0)
        with pytest.raises(ActionError):
            FederationAction(gossip_interval_seconds=-1.0)
        with pytest.raises(ActionError):
            FederationAction(gossip_fanout=0)
        with pytest.raises(ActionError):
            FederationAction(lease_seconds=0.0)
        with pytest.raises(ActionError):
            FederationAction(virtual_nodes=0)

    def test_shard_routing_validation(self):
        with pytest.raises(ActionError):
            ShardRoutingAction(bus="")
        with pytest.raises(ActionError):
            ShardRoutingAction(bus="bus-0", vep_pattern="")
