"""Structured spans with parent links and cross-layer correlation.

A :class:`Span` records one named unit of work on the simulation clock:
a VEP mediation pass, a retry session, a policy enactment, an activity
execution. Spans carry three identifiers:

- ``span_id`` — unique per span;
- ``trace_id`` — shared by a span and all of its descendants (explicit
  ``parent=`` links);
- ``correlation_id`` — the *domain* key that ties spans together even
  across layers where no parent link can be threaded: the calling
  process instance ID when one exists, otherwise the original request's
  WS-Addressing message ID (see :func:`correlation_id_for`).

IDs are deterministic counters, not UUIDs, so traces are reproducible
bit-for-bit like everything else in this repository.

The default tracer everywhere is :data:`NULL_TRACER`. Instrumented code
follows one discipline::

    span = None
    if tracer.enabled:
        span = tracer.start_span("vep.handle", correlation_id=cid)
    try:
        ...
    finally:
        if span is not None:
            span.end()

i.e. a single attribute load and branch on the hot path when tracing is
disabled — zero allocations, zero exporter work.
"""

from __future__ import annotations

import itertools
import time
from typing import Any

__all__ = ["NULL_TRACER", "NullTracer", "Span", "Tracer", "correlation_id_for"]


def correlation_id_for(envelope) -> str | None:
    """The correlation key of a SOAP message.

    Prefers the MASC ProcessInstanceID header (so engine-driven calls
    join the calling instance's trace), falling back to the message ID.
    """
    if envelope is None:
        return None
    addressing = envelope.addressing
    return addressing.process_instance_id or addressing.message_id


class Span:
    """One named, timed unit of work."""

    __slots__ = (
        "name",
        "span_id",
        "trace_id",
        "parent_id",
        "correlation_id",
        "start_time",
        "end_time",
        "attributes",
        "events",
        "status",
        "sampled",
        "_tracer",
    )

    def __init__(
        self,
        name: str,
        span_id: str,
        trace_id: str,
        parent_id: str | None,
        correlation_id: str | None,
        start_time: float,
        tracer: "Tracer | None" = None,
        attributes: dict[str, Any] | None = None,
        sampled: bool = True,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.correlation_id = correlation_id
        self.start_time = start_time
        self.end_time: float | None = None
        self.attributes: dict[str, Any] = attributes if attributes is not None else {}
        self.events: list[tuple[float, str, dict[str, Any]]] = []
        self.status = "ok"
        #: Head-based sampling verdict, inherited from the parent (or the
        #: wire context) and made at trace birth by the tracer's sampler.
        #: Not serialized: an exported span was sampled by definition.
        self.sampled = sampled
        self._tracer = tracer

    # -- recording -----------------------------------------------------------

    def set_attribute(self, key: str, value: Any) -> "Span":
        self.attributes[key] = value
        return self

    def add_event(self, name: str, **attributes: Any) -> "Span":
        """A point-in-time annotation inside this span."""
        now = self._tracer.now() if self._tracer is not None else self.start_time
        self.events.append((now, name, attributes))
        return self

    def end(self, status: str | None = None) -> None:
        """Close the span (idempotent) and hand it to the exporters."""
        if self.end_time is not None:
            return
        if status is not None:
            self.status = status
        tracer = self._tracer
        self.end_time = tracer.now() if tracer is not None else self.start_time
        if tracer is not None:
            tracer._finish(self)

    @property
    def duration(self) -> float:
        end = self.end_time if self.end_time is not None else self.start_time
        return end - self.start_time

    @property
    def ended(self) -> bool:
        return self.end_time is not None

    # -- context manager -----------------------------------------------------

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, _tb) -> None:
        if exc is not None and self.status == "ok":
            self.status = f"error:{exc_type.__name__}"
            self.attributes.setdefault("exception.type", exc_type.__name__)
            if str(exc):
                self.attributes.setdefault("exception.message", str(exc))
        self.end()

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """The JSONL wire form (see ``docs/observability.md``)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "correlation_id": self.correlation_id,
            "start": self.start_time,
            "end": self.end_time,
            "status": self.status,
            "attributes": self.attributes,
            "events": [
                {"time": t, "name": n, "attributes": a} for t, n, a in self.events
            ],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        span = cls(
            name=data["name"],
            span_id=data["span_id"],
            trace_id=data["trace_id"],
            parent_id=data.get("parent_id"),
            correlation_id=data.get("correlation_id"),
            start_time=data["start"],
            attributes=dict(data.get("attributes", {})),
        )
        span.end_time = data.get("end")
        span.status = data.get("status", "ok")
        span.events = [
            (e["time"], e["name"], dict(e.get("attributes", {})))
            for e in data.get("events", ())
        ]
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Span {self.name} id={self.span_id} corr={self.correlation_id} "
            f"status={self.status}>"
        )


class Tracer:
    """Creates spans and routes finished ones to exporters.

    ``clock`` is any zero-argument callable returning the current time.
    Components running on the simulation bind it to ``env.now`` the first
    time a tracer-aware component (:class:`~repro.wsbus.bus.WsBus`,
    :class:`~repro.orchestration.engine.WorkflowEngine`) sees the tracer,
    so span times are *simulated* seconds. Outside a simulation it falls
    back to ``time.monotonic``.
    """

    enabled = True

    #: Unsampled traces buffered for possible promotion, at most this many.
    MAX_BUFFERED_TRACES = 256

    def __init__(self, clock=None) -> None:
        self._clock = clock
        self._exporters: list = []
        self._span_ids = itertools.count(1)
        self._trace_ids = itertools.count(1)
        self.finished_count = 0
        #: Started-but-not-ended spans, flushed with ``unfinished=true`` at
        #: :meth:`close` so a crash mid-span never loses the partial record.
        self._open: dict[Span, None] = {}
        #: Head-based sampler (None = record everything, the default).
        self._sampler = None
        #: trace_id -> finished-but-unexported spans of unsampled traces,
        #: kept around (bounded) in case a later span promotes the trace.
        self._buffered: "dict[str, list[Span]]" = {}
        #: Unsampled traces promoted by a fault/SLO violation.
        self._promoted: set[str] = set()

    # -- clock ---------------------------------------------------------------

    def now(self) -> float:
        clock = self._clock
        return clock() if clock is not None else time.monotonic()

    def bind_clock(self, env) -> None:
        """Adopt a simulation environment's clock (first binder wins)."""
        if self._clock is None:
            self._clock = lambda: env.now

    def rebind_clock(self, env) -> None:
        """Forcibly adopt a new simulation's clock.

        For harnesses that reuse one tracer (and one exporter) across
        several independent simulation runs; components should use the
        soft :meth:`bind_clock` instead.
        """
        self._clock = lambda: env.now

    # -- span lifecycle ------------------------------------------------------

    def start_span(
        self,
        name: str,
        correlation_id: str | None = None,
        parent: Span | None = None,
        attributes: dict[str, Any] | None = None,
    ) -> Span:
        # ``parent`` is duck-typed: a live Span or a wire
        # :class:`~repro.observability.trace_context.TraceContext` — anything
        # exposing trace_id / span_id / correlation_id (and optionally
        # sampled) joins its trace.
        if parent is not None:
            trace_id = parent.trace_id
            parent_id = parent.span_id
            if correlation_id is None:
                correlation_id = parent.correlation_id
            sampled = getattr(parent, "sampled", True)
        else:
            trace_id = f"tr-{next(self._trace_ids):06d}"
            parent_id = None
            sampler = self._sampler
            sampled = sampler is None or sampler.sample(trace_id)
        span = Span(
            name=name,
            span_id=f"sp-{next(self._span_ids):06d}",
            trace_id=trace_id,
            parent_id=parent_id,
            correlation_id=correlation_id,
            start_time=self.now(),
            tracer=self,
            attributes=attributes,
            sampled=sampled,
        )
        self._open[span] = None
        return span

    def span(self, name: str, **kwargs) -> Span:
        """``with tracer.span("x") as s:`` convenience (spans are CMs)."""
        return self.start_span(name, **kwargs)

    # -- exporters -----------------------------------------------------------

    def add_exporter(self, exporter) -> Any:
        self._exporters.append(exporter)
        return exporter

    def remove_exporter(self, exporter) -> None:
        if exporter in self._exporters:
            self._exporters.remove(exporter)

    # -- sampling ------------------------------------------------------------

    def configure_sampling(self, sampler) -> None:
        """Install (or clear, with None) a head-based trace sampler.

        The sampler decides at trace birth (``sample(trace_id)``) and may
        promote an unsampled trace after the fact (``promotes(span)`` —
        faults, SLO violations); see
        :class:`~repro.observability.sampling.TraceSampler`.
        """
        self._sampler = sampler

    # -- shutdown ------------------------------------------------------------

    def flush_open(self) -> int:
        """Export still-open spans with an explicit ``unfinished=true``.

        A crash (or an abandoned simulation process) can leave spans that
        never reached :meth:`Span.end`; silently dropping them would make
        the trace lie about what was in flight. Returns the flush count.
        """
        flushed = 0
        for span in list(self._open):
            span.set_attribute("unfinished", True)
            span.end()
            flushed += 1
        return flushed

    def close(self) -> None:
        self.flush_open()
        for exporter in self._exporters:
            exporter.close()

    def _finish(self, span: Span) -> None:
        self.finished_count += 1
        self._open.pop(span, None)
        if self._sampler is not None and not span.sampled:
            trace_id = span.trace_id
            if trace_id not in self._promoted and not self._sampler.promotes(span):
                # Buffer the unsampled span: a later fault or SLO violation
                # in this trace may still promote the whole thing.
                buffered = self._buffered.setdefault(trace_id, [])
                buffered.append(span)
                while len(self._buffered) > self.MAX_BUFFERED_TRACES:
                    self._buffered.pop(next(iter(self._buffered)))
                return
            self._promoted.add(trace_id)
            for earlier in self._buffered.pop(trace_id, ()):
                for exporter in self._exporters:
                    exporter.export(earlier)
        for exporter in self._exporters:
            exporter.export(span)


class _NullSpan:
    """The shared do-nothing span. Every method returns immediately."""

    __slots__ = ()

    name = "null"
    span_id = trace_id = "null"
    parent_id = correlation_id = None
    start_time = 0.0
    end_time: float | None = 0.0
    attributes: dict[str, Any] = {}
    events: list = []
    status = "ok"
    duration = 0.0
    ended = True
    sampled = False

    def set_attribute(self, key: str, value: Any) -> "_NullSpan":
        return self

    def add_event(self, name: str, **attributes: Any) -> "_NullSpan":
        return self

    def end(self, status: str | None = None) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


NULL_SPAN = _NullSpan()


class NullTracer:
    """The default, disabled tracer: never allocates, never exports.

    ``start_span`` returns the shared :data:`NULL_SPAN` singleton, so
    even un-guarded call sites cost only a method call. Hot paths should
    still guard on ``tracer.enabled`` and skip span creation entirely.
    """

    enabled = False

    def now(self) -> float:
        return 0.0

    def bind_clock(self, env) -> None:
        return None

    def rebind_clock(self, env) -> None:
        return None

    def start_span(self, name, correlation_id=None, parent=None, attributes=None):
        return NULL_SPAN

    def span(self, name, **kwargs):
        return NULL_SPAN

    def add_exporter(self, exporter):
        return exporter

    def remove_exporter(self, exporter) -> None:
        return None

    def configure_sampling(self, sampler) -> None:
        return None

    def flush_open(self) -> int:
        return 0

    def close(self) -> None:
        return None


NULL_TRACER = NullTracer()
