"""Trace analytics: assembly, critical path, latency attribution.

The exporters (:mod:`repro.observability.exporters`,
:class:`~repro.observability.ops.FlightRecorder`) record *spans*; an
operator asks questions about *traces* — "which requests were slow, and
where did the time go?". This module turns exported span streams back
into answers:

- :func:`load_spans` merges any mix of JSONL span files and
  flight-recorder dumps from **one run** into a deduplicated span list
  (a fleet writes one JSONL per run plus per-bus flight dumps; span ids
  are unique within a run, so the union is well-defined);
- :func:`group_traces` / :func:`assemble_trace` rebuild the per-trace
  span trees, including trees whose root crossed buses via the
  ``masc:TraceContext`` wire header;
- :func:`critical_path` walks the tree root-to-leaf through the child
  that finished last — the chain of spans an operator should read first;
- :func:`attribute_latency` charges every simulated second of the root
  span to exactly one **phase** (queue-wait, mediation, network,
  service-execution, adaptation, other) by exclusive self-time, so the
  phase durations *sum to the critical-path (root) duration exactly* —
  no second is double-counted or dropped.

Everything here is pure post-processing over plain :class:`Span`
records; nothing imports the simulation.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path

from repro.observability.exporters import read_spans_jsonl
from repro.observability.tracing import Span

__all__ = [
    "PHASES",
    "TraceSummary",
    "TraceTree",
    "assemble_trace",
    "attribute_latency",
    "critical_path",
    "group_traces",
    "load_spans",
    "phase_of",
    "slowest_traces",
    "trace_report",
]

#: Attribution phases, in report order. Every span name maps to exactly
#: one phase (:func:`phase_of`); unknown names land in ``other``.
PHASES = (
    "queue-wait",
    "mediation",
    "network",
    "service-execution",
    "adaptation",
    "other",
)

#: Longest-prefix-wins span-name → phase table. ``wsbus.mediate``'s
#: *self* time is the admission-queue wait (its child ``vep.handle``
#: covers actual mediation work), hence its phase.
_PHASE_PREFIXES = (
    ("wsbus.mediate", "queue-wait"),
    ("vep.handle", "mediation"),
    ("traffic.", "mediation"),
    ("wsbus.monitoring", "mediation"),
    ("wsbus.pipeline", "mediation"),
    ("resilience.", "mediation"),
    ("wsbus.send", "network"),
    ("net.exchange", "network"),
    ("service.execute", "service-execution"),
    ("wsbus.retry", "adaptation"),
    ("wsbus.adaptation", "adaptation"),
    ("wsbus.policy", "adaptation"),
    ("masc.", "adaptation"),
    ("slo.", "adaptation"),
    ("federation.", "adaptation"),
    ("process.", "adaptation"),
    ("engine.", "adaptation"),
    ("persistence.", "adaptation"),
)


def phase_of(name: str) -> str:
    """The attribution phase of a span name (longest matching prefix)."""
    best = "other"
    best_len = -1
    for prefix, phase in _PHASE_PREFIXES:
        if name.startswith(prefix) and len(prefix) > best_len:
            best = phase
            best_len = len(prefix)
    return best


# -- loading -----------------------------------------------------------------


def load_spans(paths) -> list[Span]:
    """Merge span files from one run into a deduplicated, ordered list.

    Accepts any mix of JSONL span files and flight-recorder dumps (a
    JSON object with a ``"spans"`` list). Duplicate span ids — the same
    span reaching both the JSONL exporter and a flight recorder — keep
    the record that has an end time (a finished record wins over an
    ``unfinished`` flush). Only meaningful for files from a *single*
    run: span ids restart at ``sp-000001`` every run.
    """
    merged: dict[str, Span] = {}
    for path in paths:
        for span in _read_any(path):
            previous = merged.get(span.span_id)
            if previous is None or (
                previous.end_time is None and span.end_time is not None
            ):
                merged[span.span_id] = span
    return sorted(merged.values(), key=lambda s: (s.start_time, s.span_id))


def _read_any(path) -> list[Span]:
    target = Path(path)
    text = target.read_text(encoding="utf-8")
    stripped = text.lstrip()
    if stripped.startswith("{"):
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            payload = None
        if isinstance(payload, dict) and "spans" in payload:
            # A flight-recorder dump.
            return [Span.from_dict(record) for record in payload["spans"]]
    return read_spans_jsonl(target)


# -- assembly ----------------------------------------------------------------


@dataclass
class TraceTree:
    """One assembled trace: the root plus a parent→children index."""

    trace_id: str
    root: Span
    spans: list[Span]
    children: dict[str, list[Span]] = field(repr=False, default_factory=dict)

    @property
    def duration(self) -> float:
        return _end_of(self.root) - self.root.start_time

    @property
    def span_count(self) -> int:
        return len(self.spans)


@dataclass(frozen=True)
class TraceSummary:
    """One row of the slowest-traces table."""

    trace_id: str
    root_name: str
    start: float
    duration: float
    span_count: int
    status: str
    correlation_id: str | None


def _end_of(span: Span) -> float:
    return span.end_time if span.end_time is not None else span.start_time


def group_traces(spans) -> dict[str, list[Span]]:
    """``{trace_id: [span, ...]}`` in deterministic order."""
    grouped: dict[str, list[Span]] = {}
    for span in spans:
        grouped.setdefault(span.trace_id, []).append(span)
    for bucket in grouped.values():
        bucket.sort(key=lambda s: (s.start_time, s.span_id))
    return grouped


def assemble_trace(spans) -> TraceTree:
    """Build the tree of one trace's spans.

    The root is the span whose parent is absent from the collection
    (sampling or ring-buffer eviction can drop a true ancestor — the
    earliest orphan then stands in as root). Remaining orphans hang off
    the synthetic root position so no span silently disappears.
    """
    if not spans:
        raise ValueError("cannot assemble an empty trace")
    ordered = sorted(spans, key=lambda s: (s.start_time, s.span_id))
    by_id = {span.span_id: span for span in ordered}
    children: dict[str, list[Span]] = {}
    orphans: list[Span] = []
    for span in ordered:
        if span.parent_id is not None and span.parent_id in by_id:
            children.setdefault(span.parent_id, []).append(span)
        else:
            orphans.append(span)
    root = orphans[0]
    # Extra orphans (evicted ancestors) become children of the root so
    # the walk still visits them.
    for span in orphans[1:]:
        children.setdefault(root.span_id, []).append(span)
    for bucket in children.values():
        bucket.sort(key=lambda s: (s.start_time, s.span_id))
    return TraceTree(
        trace_id=root.trace_id, root=root, spans=ordered, children=children
    )


def slowest_traces(spans, limit: int = 10) -> list[TraceSummary]:
    """The ``limit`` longest traces, longest first (ties by trace id)."""
    summaries = []
    for trace_id, bucket in group_traces(spans).items():
        tree = assemble_trace(bucket)
        summaries.append(
            TraceSummary(
                trace_id=trace_id,
                root_name=tree.root.name,
                start=tree.root.start_time,
                duration=tree.duration,
                span_count=tree.span_count,
                status=tree.root.status,
                correlation_id=tree.root.correlation_id,
            )
        )
    summaries.sort(key=lambda s: (-s.duration, s.trace_id))
    return summaries[:limit]


# -- critical path -----------------------------------------------------------


def critical_path(tree: TraceTree) -> list[Span]:
    """Root-to-leaf chain through the child that finished last.

    The returned chain is what an operator reads first: at every level
    the span that gated its parent's completion. Its total duration is
    the root's duration (the path lives inside the root span).
    """
    path = [tree.root]
    current = tree.root
    while True:
        offspring = tree.children.get(current.span_id, ())
        if not offspring:
            return path
        current = max(offspring, key=lambda s: (_end_of(s), s.span_id))
        path.append(current)


# -- latency attribution -----------------------------------------------------


def attribute_latency(tree: TraceTree) -> dict[str, float]:
    """Exclusive self-time per phase over the root span's tree.

    Every span's *effective window* is its own interval clipped to its
    parent's effective window (a child that outlives its parent — an
    abandoned exchange racing a timeout — only counts while the parent
    was open). The root's interval is cut at every window edge and each
    elementary segment is charged to exactly one span: the **deepest**
    span whose effective window covers it (ties go to the later-starting
    span, then the higher span id — deterministic, and resolving
    overlapping siblings without double-counting). Segment times are
    charged to :func:`phase_of` the owning span's name.

    By construction the segments tile the root's interval exactly:
    ``sum(attribute_latency(t).values()) == t.duration`` to float
    addition error — the invariant ``python -m repro trace
    --attribution`` asserts.
    """
    windows: list[tuple[float, float, int, Span]] = []

    def walk(span: Span, lo: float, hi: float, depth: int) -> None:
        lo = max(lo, span.start_time)
        hi = min(hi, _end_of(span))
        if hi <= lo:
            return
        windows.append((lo, hi, depth, span))
        for child in tree.children.get(span.span_id, ()):
            walk(child, lo, hi, depth + 1)

    root_lo, root_hi = tree.root.start_time, _end_of(tree.root)
    walk(tree.root, root_lo, root_hi, 0)
    edges = sorted(
        {root_lo, root_hi}
        | {lo for lo, _, _, _ in windows}
        | {hi for _, hi, _, _ in windows}
    )
    phases: dict[str, list[float]] = {phase: [] for phase in PHASES}
    for segment_lo, segment_hi in zip(edges, edges[1:]):
        owner = None
        owner_key = None
        for lo, hi, depth, span in windows:
            if lo <= segment_lo and segment_hi <= hi:
                key = (depth, lo, span.span_id)
                if owner_key is None or key > owner_key:
                    owner, owner_key = span, key
        if owner is not None:
            phases[phase_of(owner.name)].append(segment_hi - segment_lo)
    # fsum keeps the "phases sum to the critical-path duration" invariant
    # tight even for thousand-span trees.
    return {phase: math.fsum(values) for phase, values in phases.items()}


# -- reporting ---------------------------------------------------------------


def trace_report(spans, limit: int = 10) -> dict:
    """The JSON report behind ``python -m repro trace --report``."""
    rows = slowest_traces(spans, limit=limit)
    grouped = group_traces(spans)
    traces = []
    for summary in rows:
        tree = assemble_trace(grouped[summary.trace_id])
        attribution = attribute_latency(tree)
        traces.append(
            {
                "trace_id": summary.trace_id,
                "root": summary.root_name,
                "start": summary.start,
                "duration": summary.duration,
                "spans": summary.span_count,
                "status": summary.status,
                "correlation_id": summary.correlation_id,
                "critical_path": [
                    {
                        "name": span.name,
                        "span_id": span.span_id,
                        "start": span.start_time,
                        "duration": _end_of(span) - span.start_time,
                        "status": span.status,
                    }
                    for span in critical_path(tree)
                ],
                "attribution": attribution,
                "attribution_total": math.fsum(attribution.values()),
            }
        )
    return {
        "span_count": len(list(spans)),
        "trace_count": len(grouped),
        "traces": traces,
    }
