"""One self-adapting request, end to end, as a single correlated trace.

The paper's signature cross-layer scenario, observed through the tracing
layer (``repro.observability``): an orchestrated process calls a Web
service through a wsBus VEP; the backend is down; the adaptation policy
first extends the calling activity's pending timeout at the *process*
layer, then retries delivery at the *messaging* layer until the backend
comes back. Every step lands in one trace:

- ``process.instance`` / ``activity.*`` spans from the workflow engine,
- ``vep.handle`` / ``wsbus.adaptation.recover`` / ``wsbus.policy.enact``
  / ``wsbus.retry`` spans from the bus,
- ``masc.enact`` spans from MASCAdaptationService, parented under the
  bus-side policy span that triggered the cross-layer coordination —

all sharing the calling instance's ProcessInstanceID as correlation ID.

Run:  python examples/traced_scm_request.py
"""

import os
import tempfile

from repro.core import MASC
from repro.observability import (
    InMemoryExporter,
    JsonlExporter,
    Tracer,
    read_spans_jsonl,
    render_trace_tree,
)
from repro.orchestration import Invoke, ProcessDefinition, Reply, Sequence
from repro.policy import (
    AdaptationPolicy,
    ExtendTimeoutAction,
    PolicyDocument,
    PolicyScope,
    RetryAction,
    serialize_policy_document,
)
from repro.services import SimulatedService
from repro.wsbus import WsBus
from repro.wsdl import MessageSchema, Operation, PartSchema, ServiceContract

QUOTE_CONTRACT = ServiceContract(
    service_type="Quote",
    operations=(
        Operation(
            name="getQuote",
            input=MessageSchema("getQuoteRequest", (PartSchema("symbol"),)),
            output=MessageSchema("getQuoteResponse", (PartSchema("price"),)),
        ),
    ),
)


class QuoteService(SimulatedService):
    contract = QUOTE_CONTRACT

    def op_getQuote(self, payload, ctx):
        yield ctx.work()
        return QUOTE_CONTRACT.operation("getQuote").output.build(price="42.17")


def cross_layer_policy() -> str:
    """Extend the caller's timeout, then retry delivery (paper Sec. 3.3)."""
    document = PolicyDocument("traced-example")
    document.adaptation_policies.append(
        AdaptationPolicy(
            name="extend-then-retry",
            triggers=("fault.ServiceUnavailable", "fault.Timeout"),
            scope=PolicyScope(service_type="Quote"),
            actions=(
                ExtendTimeoutAction(extra_seconds=30.0),
                RetryAction(max_retries=5, delay_seconds=2.0),
            ),
            priority=10,
        )
    )
    return serialize_policy_document(document)


def main() -> None:
    tracer = Tracer()
    memory = tracer.add_exporter(InMemoryExporter())
    trace_path = os.path.join(tempfile.mkdtemp(prefix="repro-trace-"), "trace.jsonl")
    tracer.add_exporter(JsonlExporter(trace_path))

    masc = MASC(seed=9, tracer=tracer)
    masc.deploy(QuoteService(masc.env, "quotes1", "http://svc/quotes"))
    bus = WsBus(
        masc.env,
        masc.network,
        repository=masc.repository,
        registry=masc.registry,
        process_enforcement=masc.adaptation,
        member_timeout=3.0,
        tracer=tracer,
    )
    vep = bus.create_vep("quotes", QUOTE_CONTRACT, members=["http://svc/quotes"])
    masc.load_policies(cross_layer_policy())

    definition = ProcessDefinition(
        "quote-caller",
        Sequence(
            "main",
            [
                Invoke(
                    "get-quote",
                    operation="getQuote",
                    to=vep.address,
                    inputs={"symbol": "ACME"},
                    extract={"price": "price"},
                    timeout_seconds=5.0,
                ),
                Reply("answer", variable="price"),
            ],
        ),
    )

    # Take the backend down; repair it after 6 simulated seconds — only
    # the policy's timeout extension keeps the 5s-deadline caller alive.
    endpoint = masc.network.endpoint("http://svc/quotes")
    endpoint.available = False

    def repairer():
        yield masc.env.timeout(6.0)
        endpoint.available = True

    masc.env.process(repairer())
    instance = masc.engine.start(definition)
    price = masc.engine.run_to_completion(instance)
    tracer.close()

    print(f"process {instance.id} completed with price={price}\n")
    print(render_trace_tree(memory.spans))

    # The acceptance check: the bus-level retry span and the policy
    # adaptation span carry the same correlation ID (the instance ID that
    # rode in the MASC ProcessInstanceID SOAP header).
    spans = read_spans_jsonl(trace_path)
    by_name = {span.name: span for span in spans}
    retry, enact = by_name["wsbus.retry"], by_name["wsbus.policy.enact"]
    assert retry.correlation_id == enact.correlation_id == instance.id
    cross = by_name["masc.enact"]
    assert cross.trace_id == enact.trace_id  # one trace across both layers
    print(f"\n{len(spans)} spans written to {trace_path}")
    print(
        f"retry and policy-enactment spans share correlation id "
        f"{retry.correlation_id!r}"
    )


if __name__ == "__main__":
    main()
