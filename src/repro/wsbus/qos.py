"""QoS Measurement Service.

"Responsible for management data collection and analysis either through
direct computation of QoS metrics... The key QoS metrics measured by this
component are: (a) Reliability (calculated as a ratio of successful
invocations over the number of total invocations in given period of time);
(b) Response Time (the time interval between when a service is requested
and when it is delivered); (c) Availability: the percentage of time that a
service is available during some time interval."

The service consumes :class:`~repro.services.InvocationRecord` streams
(subscribe it to any invoker) and serves aggregate lookups — including the
``qos_lookup`` interface the MASC monitoring service and QoS-threshold
assertions expect, and the best-endpoint query the selection service uses.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.services import InvocationRecord

__all__ = ["EndpointQoS", "QoSMeasurementService"]


@dataclass
class EndpointQoS:
    """Rolling QoS observations for one endpoint."""

    address: str
    window: int = 500
    records: deque = field(default_factory=deque)
    total_invocations: int = 0
    total_failures: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.records, deque) or self.records.maxlen != self.window:
            self.records = deque(self.records, maxlen=self.window)

    def add(self, record: InvocationRecord) -> None:
        self.records.append(record)
        self.total_invocations += 1
        if not record.succeeded:
            self.total_failures += 1

    # -- metric computations ---------------------------------------------------

    def _recent(self, window: int) -> list[InvocationRecord]:
        records = list(self.records)
        return records[-window:] if window > 0 else records

    def sample_count(self, window: int = 0, successful_only: bool = False) -> int:
        """How many observations the window holds (adaptive-timeout input)."""
        records = self._recent(window)
        if successful_only:
            return sum(1 for r in records if r.succeeded)
        return len(records)

    def reliability(self, window: int = 0) -> float | None:
        """Ratio of successful invocations over total, in the window."""
        records = self._recent(window)
        if not records:
            return None
        return sum(1 for r in records if r.succeeded) / len(records)

    def response_time(self, window: int = 0, aggregate: str = "mean") -> float | None:
        """Aggregate RTT over *successful* invocations in the window."""
        durations = sorted(r.duration for r in self._recent(window) if r.succeeded)
        if not durations:
            return None
        if aggregate == "mean":
            return sum(durations) / len(durations)
        if aggregate == "min":
            return durations[0]
        if aggregate == "max":
            return durations[-1]
        if aggregate in ("p95", "p99"):
            quantile = 0.95 if aggregate == "p95" else 0.99
            index = min(len(durations) - 1, int(round(quantile * (len(durations) - 1))))
            return durations[index]
        raise ValueError(f"unknown aggregate {aggregate!r}")

    def availability(self, window: int = 0) -> float | None:
        """Observed availability: uptime fraction estimated from the
        request outcome timeline (MTBF / (MTBF + MTTR)).

        Consecutive failed requests form one outage burst; the burst's
        duration (first failure start to last failure end) approximates
        time-to-recover as seen by callers.
        """
        records = self._recent(window)
        if not records:
            return None
        horizon_start = records[0].started_at
        horizon_end = records[-1].finished_at
        horizon = horizon_end - horizon_start
        if horizon <= 0:
            return 1.0 if records[-1].succeeded else 0.0
        downtime = 0.0
        burst_start: float | None = None
        burst_end = 0.0
        for record in records:
            if not record.succeeded:
                if burst_start is None:
                    burst_start = record.started_at
                burst_end = record.finished_at
            else:
                if burst_start is not None:
                    downtime += burst_end - burst_start
                    burst_start = None
        if burst_start is not None:
            downtime += burst_end - burst_start
        return max(0.0, min(1.0, 1.0 - downtime / horizon))

    def throughput(self, window: int = 0) -> float | None:
        """Successful requests per second, as a caller observed them.

        Semantics:

        - The numerator counts *successful* invocations in the window.
        - The denominator is the delivery span: from the first successful
          invocation's start to the last successful invocation's finish.
          Think-time gaps between successes count as elapsed time (this is
          an observed delivery rate, not a peak service rate), but failed
          requests hanging off the edges of the window — e.g. a trailing
          30-second timeout burn — no longer dilute the rate of the
          successes that actually happened.
        - A single successful invocation is a measurable rate: its own
          duration is the span (one success taking 0.5s is 2 req/s).
        - Returns ``0.0`` when the window holds records but no success,
          and ``None`` only when the window is empty or the successes
          carry no elapsed time to divide by (all instantaneous).
        """
        records = self._recent(window)
        if not records:
            return None
        successes = [r for r in records if r.succeeded]
        if not successes:
            return 0.0
        span = successes[-1].finished_at - successes[0].started_at
        if span <= 0:
            return None
        return len(successes) / span


class QoSMeasurementService:
    """Collects invocation records and serves QoS aggregates."""

    def __init__(self, window: int = 500) -> None:
        self.window = window
        self.endpoints: dict[str, EndpointQoS] = {}

    # -- collection --------------------------------------------------------------

    def observe(self, record: InvocationRecord) -> None:
        """Invoker-observer entry point."""
        endpoint = self.endpoints.get(record.target)
        if endpoint is None:
            endpoint = EndpointQoS(record.target, window=self.window)
            self.endpoints[record.target] = endpoint
        endpoint.add(record)

    def attach_to_invoker(self, invoker) -> None:
        invoker.add_observer(self.observe)

    # -- federation anti-entropy ---------------------------------------------------

    def digest(self, limit: int = 0) -> dict[str, list[InvocationRecord]]:
        """Per-endpoint observation digest for gossip exchange.

        Returns the newest ``limit`` records per endpoint (all windowed
        records when 0), keyed by address in sorted order so two buses
        with the same observations produce identical digests.
        """
        out: dict[str, list[InvocationRecord]] = {}
        for address in sorted(self.endpoints):
            records = list(self.endpoints[address].records)
            out[address] = records[-limit:] if limit > 0 else records
        return out

    def merge_records(self, address: str, records) -> int:
        """Fold remotely observed records into an endpoint's rolling window.

        Records already present in the window are skipped; the merged
        window is re-ordered by completion time so a bus that *received*
        an observation via gossip converges on the same window (and hence
        the same ``best_endpoint`` answers) as the bus that made it.
        Returns how many records were new.
        """
        endpoint = self.endpoints.get(address)
        if endpoint is None:
            endpoint = EndpointQoS(address, window=self.window)
            self.endpoints[address] = endpoint
        known = set(endpoint.records)
        fresh = [r for r in records if r not in known]
        if not fresh:
            return 0
        for record in fresh:
            endpoint.total_invocations += 1
            if not record.succeeded:
                endpoint.total_failures += 1
        combined = sorted(
            list(endpoint.records) + fresh,
            key=lambda r: (r.finished_at, r.started_at, r.target, r.caller, r.operation),
        )
        endpoint.records = deque(combined, maxlen=endpoint.window)
        return len(fresh)

    # -- queries ------------------------------------------------------------------

    def endpoint(self, address: str) -> EndpointQoS | None:
        return self.endpoints.get(address)

    def lookup(
        self, metric: str, window: int, aggregate: str, endpoint: str | None
    ) -> float | None:
        """The ``qos_lookup`` interface used by QoS threshold assertions."""
        if endpoint is None:
            return None
        qos = self.endpoints.get(endpoint)
        if qos is None:
            return None
        if metric == "response_time":
            return qos.response_time(window, aggregate)
        if metric == "reliability":
            return qos.reliability(window)
        if metric == "availability":
            return qos.availability(window)
        if metric == "throughput":
            return qos.throughput(window)
        raise ValueError(f"unknown QoS metric {metric!r}")

    def best_endpoint(
        self, candidates: list[str], metric: str = "response_time", window: int = 50
    ) -> str | None:
        """The candidate with the best observed metric.

        Lower is better for response time; higher for everything else.
        Candidates without history win over candidates with *bad* history
        only when no measured candidate exists — unknown beats nothing,
        measurement beats optimism.
        """
        measured: list[tuple[float, str]] = []
        unmeasured: list[str] = []
        for address in candidates:
            value = self.lookup(metric, window, "mean", address)
            if value is None:
                unmeasured.append(address)
            else:
                measured.append((value, address))
        if not measured:
            return unmeasured[0] if unmeasured else None
        if metric == "response_time":
            return min(measured)[1]
        return max(measured)[1]
