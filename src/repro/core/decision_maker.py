"""MASCPolicyDecisionMaker: from events to enacted policies.

"The raised events are handled by MASCPolicyDecisionMaker, which determines
adaptation policy assertions to be applied to the process instance and
sends an event to MASCAdaptationService. Policy priorities are used to
determine the order of execution if several policy assertions apply per
event."

The decision maker is deliberately layer-agnostic: it dispatches each
action of a selected policy to the enforcement point registered for that
action's layer ("the policy decision manager passes an object
representation of the adaptation actions to the relevant policy enforcement
point(s) to execute the adaptation policy"). MASCAdaptationService is the
``process``-layer point; the wsBus Adaptation Manager is the ``messaging``-
layer point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.events import MASCEvent
from repro.observability import NULL_METRICS, NULL_TRACER, correlation_id_for
from repro.policy import AdaptationPolicy, PolicyRepository
from repro.policy.actions import AdaptationAction

__all__ = ["EnforcementPoint", "MASCPolicyDecisionMaker", "PolicyDecision"]


class EnforcementPoint:
    """Base class for policy enforcement points."""

    #: Layer whose actions this point enacts: "process" or "messaging".
    layer = "process"

    def enact(
        self, action: AdaptationAction, policy: AdaptationPolicy, event: MASCEvent
    ) -> bool:
        """Execute one action; return True on success."""
        raise NotImplementedError


@dataclass
class PolicyDecision:
    """The audit record of one policy application attempt."""

    time: float
    event_name: str
    policy_name: str
    subject_key: str
    applied: bool
    actions: list[str] = field(default_factory=list)
    detail: str | None = None


class MASCPolicyDecisionMaker:
    """Selects and dispatches adaptation policies for MASC events."""

    def __init__(
        self, env, repository: PolicyRepository, tracer=None, metrics=None
    ) -> None:
        self.env = env
        self.repository = repository
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.tracer.bind_clock(env)
        self._points: dict[str, EnforcementPoint] = {}
        #: Full decision audit trail (experiments read this).
        self.decisions: list[PolicyDecision] = []

    def register_enforcement_point(self, point: EnforcementPoint) -> EnforcementPoint:
        self._points[point.layer] = point
        return point

    def enforcement_point(self, layer: str) -> EnforcementPoint | None:
        return self._points.get(layer)

    # -- decision handling ---------------------------------------------------------

    def handle(self, event: MASCEvent) -> list[PolicyDecision]:
        """Evaluate and enact all adaptation policies matching ``event``.

        Returns the decisions made for this event (also appended to the
        audit trail).
        """
        self.metrics.counter("masc.events.handled").inc()
        policies = self.repository.adaptation_policies_for(event.name, **event.subject())
        span = None
        if self.tracer.enabled and policies:
            # One decision span per event with matching policies; it becomes
            # the parent of the enactment spans when the event did not
            # already arrive inside a bus-side trace.
            span = self.tracer.start_span(
                "masc.decision",
                correlation_id=event.process_instance_id
                or correlation_id_for(event.envelope),
                parent=event.trace_parent,
                attributes={"event": event.name, "policies": len(policies)},
            )
            if event.trace_parent is None:
                event.trace_parent = span
        made: list[PolicyDecision] = []
        for policy in policies:
            decision = self._apply(policy, event)
            made.append(decision)
            self.decisions.append(decision)
        if span is not None:
            applied = sum(1 for decision in made if decision.applied)
            span.set_attribute("applied", applied)
            span.end(status="applied" if applied else "no-effect")
        if any(decision.applied for decision in made):
            self.metrics.counter("masc.decisions.applied").inc()
        return made

    def _apply(self, policy: AdaptationPolicy, event: MASCEvent) -> PolicyDecision:
        subject_key = event.subject_key()
        decision = PolicyDecision(
            time=self.env.now,
            event_name=event.name,
            policy_name=policy.name,
            subject_key=subject_key,
            applied=False,
        )
        if not policy.condition_holds(event.context):
            decision.detail = "condition not satisfied"
            return decision
        if not self.repository.check_state(policy, subject_key):
            decision.detail = (
                f"subject in state {self.repository.state_of(subject_key)!r}, "
                f"policy requires {policy.state_before!r}"
            )
            return decision
        all_ok = True
        for action in policy.actions:
            point = self._points.get(action.layer)
            if point is None:
                decision.actions.append(f"SKIPPED({action.layer}): {action.describe()}")
                all_ok = False
                continue
            try:
                ok = point.enact(action, policy, event)
            except Exception as exc:  # noqa: BLE001 - recorded, not propagated
                decision.actions.append(f"FAILED: {action.describe()} ({exc})")
                all_ok = False
                break
            decision.actions.append(
                ("OK: " if ok else "NO-EFFECT: ") + action.describe()
            )
            if not ok:
                all_ok = False
        decision.applied = all_ok
        if all_ok:
            self.repository.transition(policy, subject_key)
            self.repository.record_business_value(self.env.now, policy, subject_key)
        return decision

    # -- reporting -----------------------------------------------------------------

    def decisions_for(self, policy_name: str | None = None, applied_only: bool = False):
        return [
            decision
            for decision in self.decisions
            if (policy_name is None or decision.policy_name == policy_name)
            and (not applied_only or decision.applied)
        ]
