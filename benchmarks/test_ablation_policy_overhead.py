"""Ablation: policy handling overhead — re-parsing vs object representation.

The paper diagnoses one source of wsBus latency as "the need to import,
parse, and process policies. In our .NET reimplementation of wsBus we will
minimize this overhead by working with object representation of policies,
which is updated only when policies change."

This benchmark quantifies that design choice on our implementation: policy
lookup against the repository's cached object representation versus
re-parsing the XML document on every decision. These are genuine wall-time
micro-benchmarks (unlike the simulated-time experiment harnesses).
"""

from __future__ import annotations

import pytest

from repro.casestudies.scm import retailer_recovery_policy_document
from repro.policy import PolicyRepository, parse_policy_document, serialize_policy_document

DOCUMENT = retailer_recovery_policy_document()
DOCUMENT_XML = serialize_policy_document(DOCUMENT)

_repository = PolicyRepository()
_repository.load(DOCUMENT)


def lookup_with_object_representation():
    """What the repository does per decision: in-memory prioritized lookup."""
    policies = _repository.adaptation_policies_for(
        "fault.Timeout", service_type="Retailer", operation="getCatalog"
    )
    assert policies
    return policies


def lookup_with_reparse():
    """The naive path the paper warns about: parse XML on every decision."""
    repository = PolicyRepository()
    repository.load(parse_policy_document(DOCUMENT_XML))
    policies = repository.adaptation_policies_for(
        "fault.Timeout", service_type="Retailer", operation="getCatalog"
    )
    assert policies
    return policies


@pytest.mark.benchmark(group="policy-overhead")
def test_lookup_object_representation(benchmark):
    benchmark(lookup_with_object_representation)


@pytest.mark.benchmark(group="policy-overhead")
def test_lookup_reparse_every_time(benchmark):
    benchmark(lookup_with_reparse)


def test_object_representation_is_faster(benchmark):
    """The design choice holds: cached objects beat re-parsing by a wide
    margin (the paper expects this to matter at message rates)."""
    import timeit

    def measure():
        cached = timeit.timeit(lookup_with_object_representation, number=300)
        reparsed = timeit.timeit(lookup_with_reparse, number=300)
        return cached, reparsed

    cached, reparsed = benchmark.pedantic(measure, rounds=1, iterations=1)
    speedup = reparsed / cached
    print(
        f"\nPolicy handling (300 decisions): object representation {cached * 1000:.1f} ms, "
        f"re-parse {reparsed * 1000:.1f} ms -> {speedup:.1f}x speedup"
    )
    assert speedup > 3.0
