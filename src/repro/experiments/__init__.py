"""Experiment harnesses reproducing the paper's evaluation.

The same code drives both the benchmark suite (``pytest benchmarks/``)
and the command-line interface (``python -m repro``). Each harness builds
a fresh seeded deployment, runs the workload, and returns plain data that
callers render or assert on.
"""

from repro.experiments.fleet import FleetStormResult, run_fleet_storm
from repro.experiments.harness import (
    CrashRecoveryResult,
    OverloadStormResult,
    StormResult,
    Table1Row,
    catalog_plan,
    count_crash_boundaries,
    order_plan,
    run_crash_recovery,
    run_direct_configuration,
    run_fault_storm,
    run_overload_storm,
    run_rtt_point,
    run_vep_configuration,
    shed_only_policy_document,
)
from repro.experiments.parallel import (
    Cell,
    ShardError,
    fleet_cells,
    run_cells,
    shutdown_pool,
    storm_cells,
)
from repro.experiments.reports import (
    regenerate_figure5,
    regenerate_table1,
    regenerate_table1_per_seed,
    render_figure5,
    render_table1,
)

__all__ = [
    "Cell",
    "CrashRecoveryResult",
    "FleetStormResult",
    "OverloadStormResult",
    "ShardError",
    "StormResult",
    "Table1Row",
    "catalog_plan",
    "count_crash_boundaries",
    "fleet_cells",
    "order_plan",
    "regenerate_figure5",
    "regenerate_table1",
    "regenerate_table1_per_seed",
    "render_figure5",
    "render_table1",
    "run_cells",
    "run_crash_recovery",
    "run_direct_configuration",
    "run_fault_storm",
    "run_fleet_storm",
    "run_overload_storm",
    "run_rtt_point",
    "shed_only_policy_document",
    "run_vep_configuration",
    "shutdown_pool",
    "storm_cells",
]
