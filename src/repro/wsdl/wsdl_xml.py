"""WSDL document generation and parsing.

"A VEP allows virtualization by grouping a set of functionally equivalent
services and **exposes an abstract WSDL** for accessing the configured
services." This module renders a :class:`~repro.wsdl.ServiceContract` as a
WSDL 1.1-shaped document (types simplified to named parts with XSD-ish
primitive types) and parses such documents back, so contracts themselves
can be exchanged as artifacts.
"""

from __future__ import annotations

from repro.soap import FaultCode
from repro.wsdl.contract import MessageSchema, Operation, PartSchema, ServiceContract
from repro.xmlutils import Element, QName, parse_xml, serialize_xml

__all__ = ["WSDL_NS", "WsdlError", "contract_to_wsdl", "wsdl_to_contract"]

WSDL_NS = "http://schemas.xmlsoap.org/wsdl/"
_XSD_TYPES = {"string": "xsd:string", "int": "xsd:int", "float": "xsd:double", "bool": "xsd:boolean"}
_KIND_BY_XSD = {xsd: kind for kind, xsd in _XSD_TYPES.items()}


class WsdlError(Exception):
    """Malformed WSDL document or unsupported construct."""


def _wsdl(local: str) -> QName:
    return QName(WSDL_NS, local)


def contract_to_wsdl(
    contract: ServiceContract,
    endpoint_address: str | None = None,
    indent: bool = False,
) -> str:
    """Render the contract as a WSDL document.

    ``endpoint_address`` (e.g. a VEP address) becomes the service port's
    location; abstract contracts omit it.
    """
    definitions = Element(
        _wsdl("definitions"),
        attributes={"name": contract.service_type, "targetNamespace": contract.namespace or ""},
    )
    for operation in contract.operations:
        definitions.append(_message_element(f"{operation.name}Input", operation.input))
        definitions.append(_message_element(f"{operation.name}Output", operation.output))
    port_type = definitions.append(
        Element(_wsdl("portType"), attributes={"name": f"{contract.service_type}PortType"})
    )
    for operation in contract.operations:
        operation_el = port_type.append(
            Element(_wsdl("operation"), attributes={"name": operation.name})
        )
        operation_el.add(_wsdl("input"), message=f"{operation.name}Input")
        operation_el.add(_wsdl("output"), message=f"{operation.name}Output")
        for fault in operation.declared_faults:
            operation_el.append(Element(_wsdl("fault"), attributes={"name": fault.value}))
    service = definitions.append(
        Element(_wsdl("service"), attributes={"name": contract.service_type})
    )
    port = service.append(
        Element(
            _wsdl("port"),
            attributes={
                "name": f"{contract.service_type}Port",
                "binding": f"{contract.service_type}Binding",
            },
        )
    )
    if endpoint_address is not None:
        port.add(_wsdl("address"), location=endpoint_address)
    return serialize_xml(definitions, indent=indent)


def _message_element(name: str, schema: MessageSchema) -> Element:
    message = Element(_wsdl("message"), attributes={"name": name, "element": schema.element_name})
    for part in schema.parts:
        attributes = {"name": part.name, "type": _XSD_TYPES[part.kind]}
        if not part.required:
            attributes["minOccurs"] = "0"
        message.append(Element(_wsdl("part"), attributes=attributes))
    return message


def wsdl_to_contract(source: str | Element) -> tuple[ServiceContract, str | None]:
    """Parse a WSDL document back to (contract, endpoint address or None)."""
    root = parse_xml(source) if isinstance(source, str) else source
    if root.name != _wsdl("definitions"):
        raise WsdlError(f"not a WSDL document: {root.name}")
    service_type = root.attributes.get("name")
    if not service_type:
        raise WsdlError("WSDL definitions element is missing its name")
    namespace = root.attributes.get("targetNamespace", "")

    messages: dict[str, MessageSchema] = {}
    for message in root.find_all(_wsdl("message")):
        parts = []
        for part in message.find_all(_wsdl("part")):
            xsd_type = part.attributes.get("type", "xsd:string")
            if xsd_type not in _KIND_BY_XSD:
                raise WsdlError(f"unsupported part type {xsd_type!r}")
            parts.append(
                PartSchema(
                    name=part.attributes["name"],
                    kind=_KIND_BY_XSD[xsd_type],
                    required=part.attributes.get("minOccurs") != "0",
                )
            )
        messages[message.attributes["name"]] = MessageSchema(
            element_name=message.attributes.get("element", message.attributes["name"]),
            parts=tuple(parts),
        )

    port_type = root.find(_wsdl("portType"))
    if port_type is None:
        raise WsdlError("WSDL document has no portType")
    operations = []
    for operation_el in port_type.find_all(_wsdl("operation")):
        name = operation_el.attributes["name"]
        input_ref = operation_el.find(_wsdl("input"))
        output_ref = operation_el.find(_wsdl("output"))
        if input_ref is None or output_ref is None:
            raise WsdlError(f"operation {name!r} is missing input/output")
        try:
            input_schema = messages[input_ref.attributes["message"]]
            output_schema = messages[output_ref.attributes["message"]]
        except KeyError as missing:
            raise WsdlError(f"operation {name!r} references unknown message {missing}") from None
        faults = tuple(
            FaultCode(fault.attributes["name"])
            for fault in operation_el.find_all(_wsdl("fault"))
        )
        operations.append(
            Operation(
                name=name,
                input=input_schema,
                output=output_schema,
                declared_faults=faults or (FaultCode.SERVER, FaultCode.SERVICE_FAILURE),
            )
        )

    address = None
    service = root.find(_wsdl("service"))
    if service is not None:
        port = service.find(_wsdl("port"))
        if port is not None:
            address_el = port.find(_wsdl("address"))
            if address_el is not None:
                address = address_el.attributes.get("location")
    return (
        ServiceContract(
            service_type=service_type, operations=tuple(operations), namespace=namespace
        ),
        address,
    )
