"""Fault injectors operating on simulated network endpoints."""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass, field

from repro.simulation import Environment, RandomSource
from repro.soap import FaultCode, SoapEnvelope, SoapFault
from repro.transport import Network, NetworkEndpoint

__all__ = [
    "ApplicationFaultInjector",
    "AvailabilityFaultInjector",
    "BusCrashInjector",
    "DowntimeLog",
    "EndpointFaultProfile",
    "FlappingEndpointInjector",
    "LatencySpikeInjector",
    "OverloadBurstInjector",
    "ProcessCrashInjector",
    "QoSDegradationInjector",
]


@dataclass(frozen=True)
class EndpointFaultProfile:
    """Availability behaviour of one endpoint.

    ``mean_time_between_failures`` and ``mean_time_to_recover`` parameterize
    exponential distributions, matching the availability definition the
    paper uses (MTBF / (MTBF + MTTR)). The implied steady-state availability
    is therefore directly controllable per endpoint, which is how the Table 1
    experiment differentiates Retailers A-D.
    """

    address: str
    mean_time_between_failures: float
    mean_time_to_recover: float

    @property
    def nominal_availability(self) -> float:
        total = self.mean_time_between_failures + self.mean_time_to_recover
        return self.mean_time_between_failures / total if total > 0 else 1.0


@dataclass
class DowntimeLog:
    """Recorded unavailability windows for one endpoint."""

    address: str
    windows: list[tuple[float, float]] = field(default_factory=list)
    _open_since: float | None = None

    def mark_down(self, now: float) -> None:
        if self._open_since is None:
            self._open_since = now

    def mark_up(self, now: float) -> None:
        if self._open_since is not None:
            self.windows.append((self._open_since, now))
            self._open_since = None

    def close(self, now: float) -> None:
        """Close any still-open window at the end of the observation period."""
        self.mark_up(now)

    def total_downtime(self, horizon: float) -> float:
        closed = sum(end - start for start, end in self.windows)
        if self._open_since is not None:
            closed += max(0.0, horizon - self._open_since)
        return closed

    def availability(self, horizon: float) -> float:
        """Observed availability over ``[0, horizon]``."""
        if horizon <= 0:
            return 1.0
        return max(0.0, 1.0 - self.total_downtime(horizon) / horizon)

    @property
    def failure_count(self) -> int:
        return len(self.windows) + (1 if self._open_since is not None else 0)


class AvailabilityFaultInjector:
    """Opens and closes random unavailability windows at endpoints."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        random_source: RandomSource | None = None,
    ) -> None:
        self.env = env
        self.network = network
        self._source = random_source or RandomSource()
        self.logs: dict[str, DowntimeLog] = {}
        self._processes = []

    def inject(self, profile: EndpointFaultProfile) -> DowntimeLog:
        """Start the up/down cycle for one endpoint."""
        endpoint = self.network.fault_injection_target(profile.address)
        if endpoint is None:
            raise ValueError(f"no endpoint registered at {profile.address!r}")
        log = DowntimeLog(profile.address)
        self.logs[profile.address] = log
        rng = self._source.stream(f"availability.{profile.address}")
        process = self.env.process(
            self._cycle(endpoint, profile, log, rng), name=f"faults:{profile.address}"
        )
        self._processes.append(process)
        return log

    def inject_all(self, profiles: list[EndpointFaultProfile]) -> dict[str, DowntimeLog]:
        for profile in profiles:
            self.inject(profile)
        return self.logs

    def _cycle(
        self,
        endpoint: NetworkEndpoint,
        profile: EndpointFaultProfile,
        log: DowntimeLog,
        rng,
    ) -> Generator:
        while True:
            uptime = rng.expovariate(1.0 / profile.mean_time_between_failures)
            yield self.env.timeout(uptime)
            endpoint.available = False
            log.mark_down(self.env.now)
            downtime = rng.expovariate(1.0 / profile.mean_time_to_recover)
            yield self.env.timeout(downtime)
            endpoint.available = True
            log.mark_up(self.env.now)

    def finalize(self) -> None:
        """Close open windows at the current instant (end of experiment)."""
        for log in self.logs.values():
            log.close(self.env.now)


class QoSDegradationInjector:
    """Transiently inflates an endpoint's processing delay.

    Models the paper's QoS-degradation events: at exponential intervals an
    endpoint's delay is raised for a bounded window, then restored.
    """

    def __init__(
        self,
        env: Environment,
        network: Network,
        random_source: RandomSource | None = None,
    ) -> None:
        self.env = env
        self.network = network
        self._source = random_source or RandomSource()
        self.episodes: dict[str, list[tuple[float, float, float]]] = {}

    def inject(
        self,
        address: str,
        mean_time_between_episodes: float,
        mean_episode_duration: float,
        added_delay_seconds: float,
    ) -> None:
        endpoint = self.network.fault_injection_target(address)
        if endpoint is None:
            raise ValueError(f"no endpoint registered at {address!r}")
        rng = self._source.stream(f"degradation.{address}")
        episodes = self.episodes.setdefault(address, [])
        if endpoint.address != address:
            # Injection resolved through a proxy: record episodes under both
            # the requested and the relocated backend address.
            self.episodes[endpoint.address] = episodes
        self.env.process(
            self._cycle(
                endpoint,
                mean_time_between_episodes,
                mean_episode_duration,
                added_delay_seconds,
                rng,
            ),
            name=f"degrade:{address}",
        )

    def _cycle(
        self,
        endpoint: NetworkEndpoint,
        mean_gap: float,
        mean_duration: float,
        delay: float,
        rng,
    ) -> Generator:
        while True:
            yield self.env.timeout(rng.expovariate(1.0 / mean_gap))
            started = self.env.now
            endpoint.added_delay_seconds += delay
            yield self.env.timeout(rng.expovariate(1.0 / mean_duration))
            endpoint.added_delay_seconds = max(0.0, endpoint.added_delay_seconds - delay)
            self.episodes[endpoint.address].append((started, self.env.now, delay))


class ApplicationFaultInjector:
    """Wraps an endpoint handler to return probabilistic application faults.

    Models "remote applications can produce unexpected results": with the
    configured probability a request is answered by a ``ServiceFailure``
    fault instead of being dispatched to the real handler.
    """

    def __init__(
        self,
        env: Environment,
        network: Network,
        random_source: RandomSource | None = None,
    ) -> None:
        self.env = env
        self.network = network
        self._source = random_source or RandomSource()
        self.injected_counts: dict[str, int] = {}

    def inject(self, address: str, fault_probability: float) -> None:
        endpoint = self.network.fault_injection_target(address)
        if endpoint is None:
            raise ValueError(f"no endpoint registered at {address!r}")
        if not 0.0 <= fault_probability <= 1.0:
            raise ValueError(f"fault probability out of range: {fault_probability}")
        rng = self._source.stream(f"appfault.{address}")
        inner = endpoint.handler
        self.injected_counts.setdefault(address, 0)

        def wrapped(request: SoapEnvelope) -> Generator:
            if rng.random() < fault_probability:
                self.injected_counts[address] += 1
                yield self.env.timeout(0.0)
                return request.reply_fault(
                    SoapFault(
                        FaultCode.SERVICE_FAILURE,
                        "injected application failure",
                        actor=address,
                        source="fault-injector",
                    )
                )
            return (yield self.env.process(inner(request), name=f"inner:{address}"))

        endpoint.handler = wrapped


class LatencySpikeInjector:
    """Deterministic periodic latency spikes at an endpoint.

    Every ``period_seconds`` the endpoint's processing delay is raised by
    ``added_delay_seconds`` for ``spike_duration_seconds``, then restored.
    Unlike :class:`QoSDegradationInjector` the schedule is fixed, not
    sampled — fault-storm scenarios stay bit-identical across runs and the
    spike train is dense enough to exercise adaptive timeouts and breakers.
    """

    def __init__(self, env: Environment, network: Network) -> None:
        self.env = env
        self.network = network
        self.episodes: dict[str, list[tuple[float, float, float]]] = {}

    def inject(
        self,
        address: str,
        period_seconds: float,
        spike_duration_seconds: float,
        added_delay_seconds: float,
        start_after: float = 0.0,
    ) -> None:
        endpoint = self.network.fault_injection_target(address)
        if endpoint is None:
            raise ValueError(f"no endpoint registered at {address!r}")
        if period_seconds <= 0 or spike_duration_seconds <= 0:
            raise ValueError("spike period and duration must be positive")
        episodes = self.episodes.setdefault(address, [])
        if endpoint.address != address:
            self.episodes[endpoint.address] = episodes
        self.env.process(
            self._cycle(
                endpoint, period_seconds, spike_duration_seconds, added_delay_seconds, start_after
            ),
            name=f"spike:{address}",
        )

    def _cycle(
        self,
        endpoint: NetworkEndpoint,
        period: float,
        duration: float,
        delay: float,
        start_after: float,
    ) -> Generator:
        if start_after > 0:
            yield self.env.timeout(start_after)
        while True:
            yield self.env.timeout(period)
            started = self.env.now
            endpoint.added_delay_seconds += delay
            yield self.env.timeout(duration)
            endpoint.added_delay_seconds = max(0.0, endpoint.added_delay_seconds - delay)
            self.episodes[endpoint.address].append((started, self.env.now, delay))


class FlappingEndpointInjector:
    """Rapid deterministic up/down cycling of one endpoint.

    The nastiest availability pattern for naive retry loops: the endpoint
    is up just long enough to attract traffic, then gone again. Fixed
    ``up_seconds``/``down_seconds`` (no sampling) keep the storm
    reproducible; the cycle repeats ``cycles`` times (None = forever).
    """

    def __init__(self, env: Environment, network: Network) -> None:
        self.env = env
        self.network = network
        self.logs: dict[str, DowntimeLog] = {}

    def inject(
        self,
        address: str,
        up_seconds: float,
        down_seconds: float,
        start_after: float = 0.0,
        cycles: int | None = None,
    ) -> DowntimeLog:
        endpoint = self.network.fault_injection_target(address)
        if endpoint is None:
            raise ValueError(f"no endpoint registered at {address!r}")
        if up_seconds <= 0 or down_seconds <= 0:
            raise ValueError("up/down durations must be positive")
        log = DowntimeLog(address)
        self.logs[address] = log
        self.env.process(
            self._cycle(endpoint, up_seconds, down_seconds, start_after, cycles, log),
            name=f"flap:{address}",
        )
        return log

    def _cycle(
        self,
        endpoint: NetworkEndpoint,
        up_seconds: float,
        down_seconds: float,
        start_after: float,
        cycles: int | None,
        log: DowntimeLog,
    ) -> Generator:
        if start_after > 0:
            yield self.env.timeout(start_after)
        completed = 0
        while cycles is None or completed < cycles:
            yield self.env.timeout(up_seconds)
            endpoint.available = False
            log.mark_down(self.env.now)
            yield self.env.timeout(down_seconds)
            endpoint.available = True
            log.mark_up(self.env.now)
            completed += 1

    def finalize(self) -> None:
        for log in self.logs.values():
            log.close(self.env.now)


class OverloadBurstInjector:
    """Fires bursts of synthetic background requests at an address.

    Models a stampeding secondary tenant: every ``interval_seconds`` a
    burst of ``burst_size`` concurrent requests hits the target, competing
    with the measured foreground workload for mediation capacity — the
    load-shedding and bulkhead scenarios' pressure source. Outcomes of the
    synthetic traffic are tallied but never raised.
    """

    def __init__(self, env: Environment, network: Network) -> None:
        self.env = env
        self.network = network
        self.sent = 0
        self.failed = 0

    def inject(
        self,
        address: str,
        operation: str,
        payload_factory,
        interval_seconds: float,
        burst_size: int,
        timeout: float = 10.0,
        start_after: float = 0.0,
        bursts: int | None = None,
    ) -> None:
        """Start the burst train; ``payload_factory(burst, index)`` builds
        each request body (an :class:`~repro.xmlutils.Element`)."""
        if interval_seconds <= 0 or burst_size < 1:
            raise ValueError("need a positive interval and burst size")
        from repro.services import Invoker

        invoker = Invoker(
            self.env, self.network, caller="overload-burst", default_timeout=timeout
        )
        self.env.process(
            self._cycle(
                invoker, address, operation, payload_factory,
                interval_seconds, burst_size, timeout, start_after, bursts,
            ),
            name=f"burst:{address}",
        )

    def _cycle(
        self,
        invoker,
        address: str,
        operation: str,
        payload_factory,
        interval: float,
        burst_size: int,
        timeout: float,
        start_after: float,
        bursts: int | None,
    ) -> Generator:
        from repro.soap import SoapFaultError

        def one_request(burst: int, index: int) -> Generator:
            self.sent += 1
            try:
                yield from invoker.invoke(
                    address, operation, payload_factory(burst, index), timeout=timeout
                )
            except SoapFaultError:
                self.failed += 1

        fired = 0
        if start_after > 0:
            yield self.env.timeout(start_after)
        while bursts is None or fired < bursts:
            yield self.env.timeout(interval)
            for index in range(burst_size):
                self.env.process(
                    one_request(fired, index), name=f"burst:{address}:{fired}:{index}"
                )
            fired += 1


class ProcessCrashInjector:
    """Kills the workflow engine after a set number of activity completions.

    The crash-recovery counterpart of the endpoint injectors: instead of
    degrading a *service*, it takes down the *orchestration host* mid-flight.
    Attach to the engine under test (``engine.add_service(...)``); once the
    configured number of ``activity_completed`` notifications has been
    observed, it calls ``engine.crash()`` — live instances freeze at their
    next activity boundary (the state their latest checkpoint captured) and
    recovery must rehydrate them from the checkpoint store into a fresh
    engine. ``crashed_event`` fires at the kill, so a scenario can run the
    simulation up to the crash and then schedule the recovery phase.
    """

    def __init__(
        self,
        env: Environment,
        crash_after_completions: int,
        reason: str = "injected engine crash",
    ) -> None:
        if crash_after_completions < 1:
            raise ValueError("crash_after_completions must be >= 1")
        self.env = env
        self.crash_after_completions = crash_after_completions
        self.reason = reason
        self.completions_seen = 0
        self.crash_time: float | None = None
        self.crashed_event = env.event()
        self._engine = None

    # RuntimeService protocol (duck-typed: unused hooks resolve through
    # __getattr__ so this module stays free of orchestration imports).

    def attached(self, engine) -> None:
        self._engine = engine

    def activity_completed(self, instance, activity) -> None:
        self.completions_seen += 1
        if (
            self.completions_seen >= self.crash_after_completions
            and self._engine is not None
            and not self._engine.crashed
        ):
            self._engine.crash(self.reason)
            self.crash_time = self.env.now
            if not self.crashed_event.triggered:
                self.crashed_event.succeed(self.env.now)

    def __getattr__(self, name: str):
        if name.startswith(
            ("instance_", "activity_", "timeout_", "engine_", "saga_", "compensation_")
        ):
            return _ignore_hook
        raise AttributeError(name)


def _ignore_hook(*_args, **_kwargs) -> None:
    """No-op engine hook (ProcessCrashInjector ignores other notifications)."""


class BusCrashInjector:
    """Kills one bus of a federated fleet at a fixed simulated time.

    The federation counterpart of :class:`ProcessCrashInjector`: instead
    of the orchestration host, it takes down a whole *bus instance* —
    heartbeats stop, its VEP frontdoors go dark, and if it held the
    leadership lease the fleet must detect the failure and transfer
    leadership. ``crashed_event`` fires at the kill so scenarios can
    sequence the failover phase deterministically.
    """

    def __init__(self, env: Environment, fleet, bus_name: str, at_time: float) -> None:
        if at_time < 0:
            raise ValueError(f"crash time must be non-negative: {at_time}")
        if bus_name not in fleet.buses:
            raise ValueError(f"unknown bus {bus_name!r}")
        self.env = env
        self.fleet = fleet
        self.bus_name = bus_name
        self.at_time = at_time
        self.crash_time: float | None = None
        self.crashed_event = env.event()
        env.process(self._run(), name=("bus-crash", bus_name))

    def _run(self) -> Generator:
        if self.at_time > 0:
            yield self.env.timeout(self.at_time)
        self.fleet.crash_bus(self.bus_name)
        self.crash_time = self.env.now
        if not self.crashed_event.triggered:
            self.crashed_event.succeed(self.env.now)
