"""Optimizing adaptation: utility/goal-driven policy selection.

Implements the paper's stated research direction: "making and enacting
adaptation decisions (e.g., optimal configuration of running Web services
compositions) based on not only event-condition-action rules, but also
more abstract utility/goal policies describing how to determine business
benefits/costs and maximize business value by performing adaptations."

:class:`UtilityDrivenDecisionMaker` extends the base decision maker: when
a :class:`~repro.policy.GoalPolicy` is in scope for an event, the matching
adaptation policies are *ranked by estimated utility* and only the best
one is enacted — instead of enacting all of them in priority order.

Utility = declared business value − estimated enactment cost, where costs
price the non-monetary side effects of the actions:

- retries cost worst-case recovery time (delays × time value);
- concurrent invocation costs fan-out bandwidth;
- suspension costs the expected pause duration;
- everything else costs one message round trip.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.decision_maker import MASCPolicyDecisionMaker, PolicyDecision
from repro.core.events import MASCEvent
from repro.policy import (
    AdaptationPolicy,
    ConcurrentInvokeAction,
    GoalPolicy,
    PolicyRepository,
    RetryAction,
    SuspendProcessAction,
)

__all__ = ["UtilityDrivenDecisionMaker", "UtilityEstimate", "estimate_utility"]


@dataclass(frozen=True)
class UtilityEstimate:
    """The components of one policy's estimated utility."""

    policy_name: str
    business_value: float
    estimated_cost: float

    @property
    def utility(self) -> float:
        return self.business_value - self.estimated_cost


def estimate_utility(
    policy: AdaptationPolicy, goal: GoalPolicy, member_count: int = 4
) -> UtilityEstimate:
    """Estimate the utility of enacting ``policy`` under ``goal``'s prices."""
    business_value = policy.business_value.amount if policy.business_value else 0.0
    cost = 0.0
    for action in policy.actions:
        if isinstance(action, RetryAction):
            worst_case_delay = sum(
                action.delay_for_attempt(attempt)
                for attempt in range(1, action.max_retries + 1)
            )
            cost += worst_case_delay * goal.time_value_per_second
            cost += action.max_retries * goal.bandwidth_cost_per_message
        elif isinstance(action, ConcurrentInvokeAction):
            targets = action.max_targets if action.max_targets > 0 else member_count
            cost += targets * goal.bandwidth_cost_per_message
        elif isinstance(action, SuspendProcessAction):
            cost += 1.0 * goal.time_value_per_second
        else:
            cost += goal.bandwidth_cost_per_message
    return UtilityEstimate(policy.name, business_value, cost)


class UtilityDrivenDecisionMaker(MASCPolicyDecisionMaker):
    """Priority-driven by default; utility-driven where a goal policy applies."""

    def __init__(self, env, repository: PolicyRepository, member_count: int = 4) -> None:
        super().__init__(env, repository)
        self.member_count = member_count
        #: Audit of utility rankings per decision point.
        self.rankings: list[list[UtilityEstimate]] = []

    def handle(self, event: MASCEvent) -> list[PolicyDecision]:
        goal = self.repository.goal_policy_for(**event.subject())
        if goal is None:
            return super().handle(event)
        candidates = self.repository.adaptation_policies_for(event.name, **event.subject())
        # Keep only policies whose guard conditions pass; rank the rest.
        viable = [
            policy
            for policy in candidates
            if policy.condition_holds(event.context)
            and self.repository.check_state(policy, event.subject_key())
        ]
        if not viable:
            return super().handle(event)  # records the non-applications
        estimates = sorted(
            (estimate_utility(policy, goal, self.member_count) for policy in viable),
            key=lambda estimate: estimate.utility,
            reverse=True,
        )
        self.rankings.append(estimates)
        if goal.goal == "minimize_cost":
            estimates = sorted(estimates, key=lambda estimate: estimate.estimated_cost)
        best_name = estimates[0].policy_name
        best_policy = next(policy for policy in viable if policy.name == best_name)
        decision = self._apply(best_policy, event)
        decision.detail = (
            f"selected by goal policy {goal.name!r}: utility "
            f"{estimates[0].utility:.2f} (value {estimates[0].business_value:.2f} "
            f"- cost {estimates[0].estimated_cost:.2f}); "
            f"{len(viable) - 1} competing policies not enacted"
        )
        self.decisions.append(decision)
        return [decision]
