"""The ``masc:TraceContext`` wire header and policy-driven sampling."""

import pytest

from repro.observability import (
    InMemoryExporter,
    TraceContext,
    Tracer,
    context_of_span,
    format_traceparent,
    parse_traceparent,
    stamp_trace_context,
    trace_context_of,
)
from repro.observability.sampling import TraceSampler, TracingService
from repro.policy import PolicyRepository
from repro.policy.actions import ActionError, TracingAction
from repro.soap import SoapEnvelope
from repro.xmlutils import Element


def make_envelope():
    return SoapEnvelope.request("http://svc", "urn:op:ping", Element("q", text="v"))


class TestTraceparent:
    def test_round_trip(self):
        context = TraceContext(trace_id="tr-000042", span_id="sp-000007")
        text = format_traceparent(context)
        assert text == "00-tr-000042-sp-000007-01"
        parsed = parse_traceparent(text)
        assert parsed.trace_id == "tr-000042"
        assert parsed.span_id == "sp-000007"
        assert parsed.sampled is True

    def test_unsampled_flag_round_trips(self):
        context = TraceContext(trace_id="tr-000001", span_id="sp-000001", sampled=False)
        text = format_traceparent(context)
        assert text.endswith("-00")
        assert parse_traceparent(text).sampled is False

    def test_dashes_inside_the_trace_id_survive(self):
        # The span id (always ``sp-<digits>``) anchors the split, so a
        # trace id may itself contain dashes.
        parsed = parse_traceparent("00-tr-000009-sp-000011-01")
        assert parsed.trace_id == "tr-000009"
        assert parsed.span_id == "sp-000011"

    @pytest.mark.parametrize(
        "text",
        [
            None,
            "",
            "garbage",
            "00-tr-000001-xx-01",  # span id not sp-<digits>
            "00-tr-000001-sp-000001",  # flags missing
            "zz-tr-000001-sp-000001-01",  # non-hex version
            "ff-tr-000001-sp-000001-01",  # forbidden version
        ],
    )
    def test_malformed_values_yield_none_not_errors(self, text):
        assert parse_traceparent(text) is None

    def test_context_of_live_span(self):
        tracer = Tracer(clock=lambda: 0.0)
        span = tracer.start_span("wsbus.mediate", correlation_id="msg-9")
        context = context_of_span(span)
        assert context.trace_id == span.trace_id
        assert context.span_id == span.span_id
        assert context.correlation_id == "msg-9"
        assert context.sampled is True

    def test_trace_context_duck_types_as_start_span_parent(self):
        tracer = Tracer(clock=lambda: 0.0)
        context = TraceContext(
            trace_id="tr-000321", span_id="sp-000123", correlation_id="msg-5"
        )
        child = tracer.start_span("vep.handle", parent=context)
        assert child.trace_id == "tr-000321"
        assert child.parent_id == "sp-000123"
        assert child.correlation_id == "msg-5"


class TestWireHeader:
    def test_stamp_and_read_back(self):
        envelope = make_envelope()
        assert trace_context_of(envelope) is None
        context = TraceContext("tr-000001", "sp-000001", correlation_id="msg-1")
        stamp_trace_context(envelope, context)
        assert trace_context_of(envelope) == context

    def test_header_survives_xml_serialization(self):
        envelope = make_envelope()
        context = TraceContext("tr-000002", "sp-000003", correlation_id="msg-2")
        stamp_trace_context(envelope, context)
        parsed = SoapEnvelope.from_xml(envelope.to_xml())
        assert trace_context_of(parsed) == context

    def test_header_is_size_transparent(self):
        bare = make_envelope()
        stamped = make_envelope()
        stamp_trace_context(
            stamped, TraceContext("tr-000001", "sp-000001", correlation_id="msg-1")
        )
        # On the wire but not in the size model: a traced run keeps the
        # transport's size-dependent latencies byte-identical.
        assert stamped.size_bytes == bare.size_bytes
        assert "TraceContext" in stamped.to_xml()
        assert "TraceContext" not in bare.to_xml()

    def test_restamp_replaces_rather_than_accumulates(self):
        envelope = make_envelope()
        stamp_trace_context(envelope, TraceContext("tr-000001", "sp-000001"))
        stamp_trace_context(envelope, TraceContext("tr-000001", "sp-000009"))
        assert trace_context_of(envelope).span_id == "sp-000009"
        assert envelope.to_xml().count("TraceContext") == 2  # open + close tag

    def test_restamping_a_copy_never_mutates_the_original(self):
        # Envelope copies share header blocks; replacement must drop the
        # stale entry from the copy's own list, not edit the shared block.
        original = make_envelope()
        stamp_trace_context(original, TraceContext("tr-000001", "sp-000001"))
        attempt = original.copy()
        stamp_trace_context(attempt, TraceContext("tr-000001", "sp-000044"))
        assert trace_context_of(original).span_id == "sp-000001"
        assert trace_context_of(attempt).span_id == "sp-000044"

    def test_malformed_header_reads_as_absent(self):
        envelope = make_envelope()
        from repro.observability.trace_context import TRACE_CONTEXT_HEADER

        envelope.add_header(
            Element(TRACE_CONTEXT_HEADER, text="not-a-traceparent"), transparent=True
        )
        assert trace_context_of(envelope) is None


class TestTraceSampler:
    def test_rate_extremes(self):
        assert TraceSampler(sample_rate=1.0).sample("tr-000001") is True
        assert TraceSampler(sample_rate=0.0).sample("tr-000001") is False

    def test_mid_rate_is_deterministic_and_roughly_proportional(self):
        sampler = TraceSampler(sample_rate=0.25)
        ids = [f"tr-{index:06d}" for index in range(1, 2001)]
        decisions = [sampler.sample(trace_id) for trace_id in ids]
        assert decisions == [sampler.sample(trace_id) for trace_id in ids]
        share = sum(decisions) / len(decisions)
        assert 0.18 < share < 0.32

    def test_fault_and_violation_promotion_flags(self):
        from types import SimpleNamespace

        fault = SimpleNamespace(status="error:Unavailable", name="net.exchange")
        violation = SimpleNamespace(status="ok", name="slo.violation")
        ok = SimpleNamespace(status="ok", name="wsbus.send")
        sampler = TraceSampler(sample_rate=0.0)
        assert sampler.promotes(fault)
        assert sampler.promotes(violation)
        assert not sampler.promotes(ok)
        strict = TraceSampler(
            sample_rate=0.0,
            always_sample_faults=False,
            always_sample_slo_violations=False,
        )
        assert not strict.promotes(fault)
        assert not strict.promotes(violation)

    def test_action_validates_rate(self):
        with pytest.raises(ActionError):
            TracingAction(sample_rate=1.5)
        with pytest.raises(ActionError):
            TracingAction(sample_rate=-0.1)


class TestSamplingTracer:
    def _tracer(self, rate):
        tracer = Tracer(clock=lambda: 0.0)
        memory = tracer.add_exporter(InMemoryExporter())
        tracer.configure_sampling(TraceSampler(sample_rate=rate))
        return tracer, memory

    def test_unsampled_spans_are_buffered_not_exported(self):
        tracer, memory = self._tracer(rate=0.0)
        span = tracer.start_span("wsbus.mediate")
        span.end()
        assert memory.spans == []

    def test_fault_promotes_the_whole_buffered_trace(self):
        tracer, memory = self._tracer(rate=0.0)
        root = tracer.start_span("wsbus.mediate")
        child = tracer.start_span("net.exchange", parent=root)
        child.end(status="error:Unavailable")
        root.end()
        # The fault flushes retroactively and keeps the trace flowing:
        # the root, finishing after promotion, exports directly.
        assert [span.name for span in memory.spans] == [
            "net.exchange",
            "wsbus.mediate",
        ]

    def test_slo_violation_promotes_buffered_ancestors(self):
        tracer, memory = self._tracer(rate=0.0)
        root = tracer.start_span("wsbus.send")
        root.end()
        assert memory.spans == []
        violation = tracer.start_span("slo.violation", parent=root)
        violation.end()
        assert [span.name for span in memory.spans] == ["wsbus.send", "slo.violation"]

    def test_sampled_traces_export_immediately(self):
        tracer, memory = self._tracer(rate=1.0)
        tracer.start_span("wsbus.mediate").end()
        assert [span.name for span in memory.spans] == ["wsbus.mediate"]

    def test_buffer_of_unsampled_traces_is_bounded(self):
        tracer, _memory = self._tracer(rate=0.0)
        for _ in range(Tracer.MAX_BUFFERED_TRACES + 40):
            tracer.start_span("wsbus.mediate").end()
        assert len(tracer._buffered) <= Tracer.MAX_BUFFERED_TRACES


class TestTracingPolicy:
    def test_tracing_policy_document_round_trips(self):
        from repro.casestudies.scm import tracing_policy_document

        document = tracing_policy_document(
            sample_rate=0.25,
            always_sample_faults=True,
            always_sample_slo_violations=False,
        )
        policy = next(
            p
            for p in document.adaptation_policies
            if "observability.tracing" in p.triggers
        )
        action = next(a for a in policy.actions if isinstance(a, TracingAction))
        # The builder round-trips through WS-Policy4MASC XML internally,
        # so these values survived serialize → parse.
        assert action.sample_rate == 0.25
        assert action.always_sample_faults is True
        assert action.always_sample_slo_violations is False

    def test_tracing_service_materializes_the_policy(self):
        from repro.casestudies.scm import tracing_policy_document

        repository = PolicyRepository()
        repository.load(tracing_policy_document(sample_rate=0.0))
        tracer = Tracer(clock=lambda: 0.0)
        memory = tracer.add_exporter(InMemoryExporter())
        service = TracingService(tracer, repository)
        assert service.action is not None
        assert service.action.sample_rate == 0.0
        tracer.start_span("wsbus.mediate").end()
        assert memory.spans == []

    def test_refresh_picks_up_hot_loaded_documents(self):
        from repro.casestudies.scm import tracing_policy_document

        repository = PolicyRepository()
        tracer = Tracer(clock=lambda: 0.0)
        memory = tracer.add_exporter(InMemoryExporter())
        service = TracingService(tracer, repository)
        assert service.action is None  # record-everything default
        tracer.start_span("wsbus.mediate").end()
        assert len(memory.spans) == 1
        repository.load(tracing_policy_document(sample_rate=0.0))
        service.refresh_from_policies()
        tracer.start_span("wsbus.mediate").end()
        assert len(memory.spans) == 1  # the new trace was not sampled
