"""Fault injection harness.

Reproduces the paper's test setup: "we wrote test code that occasionally (at
random times) injected exception events in the tested system. For service
failures, we randomly picked some of available services and made them
unavailable for a random amount of time. For service QoS degradations, test
code occasionally picked some service instances and changed their QoS values
(e.g., introduced delays)."

Three injectors cover those modes plus application-level failures:

- :class:`AvailabilityFaultInjector` — alternating up/down windows drawn
  from per-endpoint MTBF/MTTR distributions, with a downtime log for
  availability accounting.
- :class:`QoSDegradationInjector` — transient added delays at endpoints.
- :class:`ApplicationFaultInjector` — probabilistic application fault
  replies wrapped around an endpoint's handler.

Three more drive the resilience fault-storm scenarios, all on fixed
(deterministic) schedules:

- :class:`LatencySpikeInjector` — periodic latency spikes;
- :class:`FlappingEndpointInjector` — rapid up/down cycling;
- :class:`OverloadBurstInjector` — bursts of synthetic background traffic.

:class:`ProcessCrashInjector` targets the *orchestration host* instead of a
service: it kills the workflow engine mid-flight so the crash-recovery
scenarios can prove instances rehydrate from the checkpoint store.

:class:`BusCrashInjector` targets a *bus instance* of a federated fleet:
it kills one shard at a fixed time so the federation scenarios can prove
membership suspicion, VEP failover, and leadership transfer.
"""

from repro.faultinjection.injectors import (
    ApplicationFaultInjector,
    AvailabilityFaultInjector,
    BusCrashInjector,
    DowntimeLog,
    EndpointFaultProfile,
    FlappingEndpointInjector,
    LatencySpikeInjector,
    OverloadBurstInjector,
    ProcessCrashInjector,
    QoSDegradationInjector,
)

__all__ = [
    "ApplicationFaultInjector",
    "AvailabilityFaultInjector",
    "BusCrashInjector",
    "DowntimeLog",
    "EndpointFaultProfile",
    "FlappingEndpointInjector",
    "LatencySpikeInjector",
    "OverloadBurstInjector",
    "ProcessCrashInjector",
    "QoSDegradationInjector",
]
