"""SOAP 1.1-style messaging model.

The wire unit of the whole middleware: envelopes with headers and a body,
fault representation (with the fault taxonomy wsBus classifies into), and
WS-Addressing message-information headers — including the ``RelatesTo``-style
correlation header MASC uses to carry the calling ProcessInstanceID across
the messaging layer (Section 3.1 of the paper).
"""

from repro.soap.addressing import (
    MASC_NS,
    WSA_NS,
    AddressingHeaders,
    new_message_id,
)
from repro.soap.envelope import SOAP_ENV_NS, SoapEnvelope, SoapHeader
from repro.soap.faults import (
    FaultCode,
    SoapFault,
    SoapFaultError,
)

__all__ = [
    "AddressingHeaders",
    "FaultCode",
    "MASC_NS",
    "SOAP_ENV_NS",
    "SoapEnvelope",
    "SoapFault",
    "SoapFaultError",
    "SoapHeader",
    "WSA_NS",
    "new_message_id",
]
