"""Tests for optimizing (utility/goal) and preventive adaptation."""

import pytest

from conftest import ECHO_CONTRACT, EchoService, run_process
from repro.core import (
    MASCEvent,
    QoSTrendDetector,
    UtilityDrivenDecisionMaker,
    estimate_utility,
)
from repro.core.decision_maker import EnforcementPoint
from repro.policy import (
    AdaptationPolicy,
    BusinessValue,
    ConcurrentInvokeAction,
    GoalPolicy,
    PolicyDocument,
    PolicyError,
    PolicyRepository,
    PolicyScope,
    PreferBestAction,
    QuarantineAction,
    RetryAction,
    parse_policy_document,
    serialize_policy_document,
)
from repro.services import InvocationOutcome, InvocationRecord, Invoker
from repro.simulation import Environment
from repro.wsbus import BusEnforcementPoint, WsBus


class RecordingPoint(EnforcementPoint):
    layer = "messaging"

    def __init__(self):
        self.enacted = []

    def enact(self, action, policy, event):
        self.enacted.append(policy.name)
        return True


def goal(name="maximize", **kwargs):
    return GoalPolicy(name=name, **kwargs)


def policy(name, actions, value=None, priority=100, triggers=("fault.Timeout",)):
    return AdaptationPolicy(
        name=name,
        triggers=triggers,
        actions=actions,
        business_value=BusinessValue(value, "AUD") if value is not None else None,
        priority=priority,
    )


class TestGoalPolicyModel:
    def test_validation(self):
        with pytest.raises(PolicyError):
            GoalPolicy(name="", goal="maximize_business_value")
        with pytest.raises(PolicyError):
            GoalPolicy(name="g", goal="world_domination")

    def test_xml_round_trip(self):
        document = PolicyDocument("d")
        document.goal_policies.append(
            GoalPolicy(
                name="g",
                goal="minimize_cost",
                scope=PolicyScope(service_type="Retailer"),
                time_value_per_second=2.5,
                bandwidth_cost_per_message=0.3,
                priority=5,
            )
        )
        reparsed = parse_policy_document(serialize_policy_document(document))
        (parsed,) = reparsed.goal_policies
        assert parsed.goal == "minimize_cost"
        assert parsed.scope.service_type == "Retailer"
        assert parsed.time_value_per_second == 2.5
        assert parsed.bandwidth_cost_per_message == 0.3

    def test_new_actions_round_trip(self):
        document = PolicyDocument("d")
        document.adaptation_policies.append(
            policy("p", (QuarantineAction(120.0), PreferBestAction("reliability", 25)))
        )
        reparsed = parse_policy_document(serialize_policy_document(document))
        quarantine, prefer = reparsed.adaptation_policies[0].actions
        assert quarantine.duration_seconds == 120.0
        assert prefer.metric == "reliability" and prefer.window == 25

    def test_repository_goal_lookup(self):
        repo = PolicyRepository()
        document = PolicyDocument("d")
        document.goal_policies.append(goal("broad", priority=50))
        document.goal_policies.append(
            goal("retailer-specific", scope=PolicyScope(service_type="Retailer"), priority=1)
        )
        repo.load(document)
        assert repo.goal_policy_for(service_type="Retailer").name == "retailer-specific"
        assert repo.goal_policy_for(service_type="Other").name == "broad"
        assert repo.find_policy("broad") is not None


class TestUtilityEstimation:
    def test_retry_costs_time_and_bandwidth(self):
        g = goal(time_value_per_second=1.0, bandwidth_cost_per_message=0.1)
        estimate = estimate_utility(
            policy("p", (RetryAction(max_retries=3, delay_seconds=2.0),), value=5.0), g
        )
        # cost = (2+2+2)s * 1.0 + 3 * 0.1 = 6.3
        assert estimate.estimated_cost == pytest.approx(6.3)
        assert estimate.utility == pytest.approx(-1.3)

    def test_broadcast_costs_bandwidth(self):
        g = goal(bandwidth_cost_per_message=0.5)
        estimate = estimate_utility(
            policy("p", (ConcurrentInvokeAction(),), value=0.0), g, member_count=4
        )
        assert estimate.estimated_cost == pytest.approx(2.0)

    def test_backoff_increases_cost(self):
        g = goal()
        flat = estimate_utility(policy("f", (RetryAction(3, 2.0, 1.0),)), g)
        backoff = estimate_utility(policy("b", (RetryAction(3, 2.0, 2.0),)), g)
        assert backoff.estimated_cost > flat.estimated_cost


class TestUtilityDrivenDecisionMaker:
    def _setup(self, policies, goal_policies=()):
        env = Environment()
        repo = PolicyRepository()
        document = PolicyDocument("d")
        document.adaptation_policies.extend(policies)
        document.goal_policies.extend(goal_policies)
        repo.load(document)
        maker = UtilityDrivenDecisionMaker(env, repo)
        point = RecordingPoint()
        maker.register_enforcement_point(point)
        return maker, point

    def test_without_goal_policy_enacts_all_by_priority(self):
        maker, point = self._setup(
            [
                policy("cheap", (RetryAction(1, 0.1),), value=0.0, priority=2),
                policy("expensive", (RetryAction(9, 10.0),), value=0.0, priority=1),
            ]
        )
        maker.handle(MASCEvent(name="fault.Timeout", time=0.0))
        assert point.enacted == ["expensive", "cheap"]

    def test_goal_policy_selects_best_utility_only(self):
        maker, point = self._setup(
            [
                policy("cheap", (RetryAction(1, 0.1),), value=0.0, priority=2),
                policy("expensive", (RetryAction(9, 10.0),), value=0.0, priority=1),
            ],
            goal_policies=[goal()],
        )
        decisions = maker.handle(MASCEvent(name="fault.Timeout", time=0.0))
        assert point.enacted == ["cheap"]
        assert len(decisions) == 1
        assert "selected by goal policy" in decisions[0].detail
        assert maker.rankings and maker.rankings[0][0].policy_name == "cheap"

    def test_business_value_outweighs_cost(self):
        maker, point = self._setup(
            [
                policy("free-but-worthless", (RetryAction(1, 0.1),), value=0.0),
                policy("pricey-but-profitable", (RetryAction(3, 2.0),), value=100.0),
            ],
            goal_policies=[goal()],
        )
        maker.handle(MASCEvent(name="fault.Timeout", time=0.0))
        assert point.enacted == ["pricey-but-profitable"]

    def test_goal_scope_restricts_mode(self):
        maker, point = self._setup(
            [
                policy("a", (RetryAction(1, 0.1),), priority=2),
                policy("b", (RetryAction(1, 0.1),), priority=1),
            ],
            goal_policies=[goal(scope=PolicyScope(service_type="Retailer"))],
        )
        # Event outside the goal scope: classic priority-driven behaviour.
        maker.handle(MASCEvent(name="fault.Timeout", time=0.0, service_type="Other"))
        assert point.enacted == ["b", "a"]


class TestTrendDetector:
    def _record(self, start, duration):
        return InvocationRecord(
            caller="c",
            target="http://svc",
            operation="op",
            started_at=start,
            finished_at=start + duration,
            outcome=InvocationOutcome.SUCCESS,
        )

    def test_detects_degrading_trend(self):
        env = Environment()
        detector = QoSTrendDetector(env, slope_threshold=0.01, min_samples=10)
        events = []
        detector.add_sink(events.append)
        for index in range(20):
            env._now = float(index)  # advance observation time
            detector.observe(self._record(float(index), 0.05 + 0.02 * index))
        assert events and events[0].name == "qos.trend.degrading"
        assert events[0].endpoint == "http://svc"
        assert events[0].context["slope"] > 0
        assert detector.reports

    def test_stable_service_stays_quiet(self):
        env = Environment()
        detector = QoSTrendDetector(env, slope_threshold=0.01, min_samples=10)
        events = []
        detector.add_sink(events.append)
        for index in range(30):
            detector.observe(self._record(float(index), 0.05))
        assert events == []

    def test_cooldown_rate_limits(self):
        env = Environment()
        detector = QoSTrendDetector(env, slope_threshold=0.01, min_samples=5,
                                    cooldown_seconds=1000.0)
        events = []
        detector.add_sink(events.append)
        for index in range(40):
            env._now = float(index)
            detector.observe(self._record(float(index), 0.05 + 0.05 * index))
        assert len(events) == 1

    def test_failures_ignored(self):
        env = Environment()
        detector = QoSTrendDetector(env, min_samples=2)
        failing = InvocationRecord(
            caller="c", target="http://svc", operation="op",
            started_at=0.0, finished_at=5.0, outcome=InvocationOutcome.FAULT,
        )
        detector.observe(failing)
        assert detector._endpoints == {}


class TestBusEnforcement:
    @pytest.fixture
    def world(self, env, network, container):
        for name in ("a", "b"):
            container.deploy(EchoService(env, f"echo-{name}", f"http://svc/{name}"))
        bus = WsBus(env, network, repository=PolicyRepository(), member_timeout=5.0)
        vep = bus.create_vep(
            "echo", ECHO_CONTRACT, members=["http://svc/a", "http://svc/b"],
            selection_strategy="primary",
        )
        point = BusEnforcementPoint(bus)
        return bus, vep, point

    def _event(self, endpoint):
        return MASCEvent(name="qos.trend.degrading", time=0.0, endpoint=endpoint)

    def test_quarantine_removes_and_restores(self, env, world):
        bus, vep, point = world
        quarantine = AdaptationPolicy(
            name="q", triggers=("qos.trend.degrading",),
            actions=(QuarantineAction(duration_seconds=30.0),),
        )
        assert point.enact(quarantine.actions[0], quarantine, self._event("http://svc/a"))
        assert vep.members == ["http://svc/b"]
        env.run(until=31.0)
        assert set(vep.members) == {"http://svc/b", "http://svc/a"}
        assert point.quarantines[0].endpoint == "http://svc/a"

    def test_quarantine_never_empties_vep(self, env, world):
        bus, vep, point = world
        vep.members = ["http://svc/a"]
        action = QuarantineAction(duration_seconds=10.0)
        quarantine = AdaptationPolicy(name="q", triggers=("e",), actions=(action,))
        assert not point.enact(action, quarantine, self._event("http://svc/a"))
        assert vep.members == ["http://svc/a"]

    def test_double_quarantine_is_rejected(self, env, world):
        bus, vep, point = world
        action = QuarantineAction(duration_seconds=30.0)
        quarantine = AdaptationPolicy(name="q", triggers=("e",), actions=(action,))
        assert point.enact(action, quarantine, self._event("http://svc/a"))
        assert not point.enact(action, quarantine, self._event("http://svc/a"))

    def test_prefer_best_reorders_members(self, env, network, world):
        bus, vep, point = world
        # Give endpoint b a much better response-time history.
        from repro.services import InvocationOutcome, InvocationRecord

        bus.qos.observe(InvocationRecord("c", "http://svc/a", "echo", 0.0, 1.0,
                                         InvocationOutcome.SUCCESS))
        bus.qos.observe(InvocationRecord("c", "http://svc/b", "echo", 0.0, 0.1,
                                         InvocationOutcome.SUCCESS))
        action = PreferBestAction()
        optimize = AdaptationPolicy(name="o", triggers=("e",), actions=(action,))
        assert point.enact(action, optimize, self._event(None))
        assert vep.members[0] == "http://svc/b"

    def test_inline_actions_not_enactable_out_of_band(self, env, world):
        bus, vep, point = world
        action = RetryAction()
        corrective = AdaptationPolicy(name="r", triggers=("e",), actions=(action,))
        assert not point.enact(action, corrective, self._event("http://svc/a"))


class TestPreventiveEndToEnd:
    def test_trend_triggers_quarantine_through_decision_maker(self, env, network, container):
        """Full preventive loop: degrading QoS trend -> MASC event ->
        preventive policy -> quarantine -> traffic avoids the endpoint."""
        for name in ("a", "b"):
            container.deploy(EchoService(env, f"echo-{name}", f"http://svc/{name}"))
        repository = PolicyRepository()
        document = PolicyDocument("prevention")
        document.adaptation_policies.append(
            AdaptationPolicy(
                name="quarantine-degrading",
                triggers=("qos.trend.degrading",),
                adaptation_type="prevention",
                actions=(QuarantineAction(duration_seconds=100.0),),
            )
        )
        repository.load(document)

        bus = WsBus(env, network, repository=repository, member_timeout=10.0)
        vep = bus.create_vep(
            "echo", ECHO_CONTRACT, members=["http://svc/a", "http://svc/b"],
            selection_strategy="primary",
        )
        from repro.core import MASCPolicyDecisionMaker

        maker = MASCPolicyDecisionMaker(env, repository)
        maker.register_enforcement_point(BusEnforcementPoint(bus))
        detector = QoSTrendDetector(env, slope_threshold=0.005, min_samples=8)
        detector.add_sink(maker.handle)
        detector.attach_to_invoker(bus.invoker)

        endpoint_a = network.endpoint("http://svc/a")
        client = Invoker(env, network, caller="client")

        def drive():
            for index in range(25):
                # Endpoint A degrades steadily (but never actually fails).
                endpoint_a.added_delay_seconds = 0.01 * index
                payload = ECHO_CONTRACT.operation("echo").input.build(text="x")
                response = yield from client.invoke(vep.address, "echo", payload, timeout=30.0)
                yield env.timeout(1.0)
            return response.body.child_text("text")

        final = run_process(env, drive())
        # Prevention kicked in: A was quarantined mid-run and the primary
        # strategy switched to B without any fault ever surfacing.
        assert detector.reports, "trend should have been detected"
        assert any(d.applied for d in maker.decisions)
        assert final == "x@echo-b"
        assert vep.stats.failures == 0
