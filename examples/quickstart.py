"""Quickstart: self-healing Web service invocations in ~80 lines.

Builds the smallest useful MASC/wsBus deployment:

1. a simulated "greeting" Web service hosted in a service container;
2. a wsBus Virtual End Point (VEP) in front of it, with a backup instance;
3. a WS-Policy4MASC recovery policy (retry twice, then fail over);
4. a client that keeps calling while the primary service crashes.

Run:  python examples/quickstart.py
"""

from repro.policy import PolicyRepository
from repro.services import Invoker, ServiceContainer, SimulatedService
from repro.simulation import Environment, RandomSource
from repro.transport import Network
from repro.wsbus import WsBus
from repro.wsdl import MessageSchema, Operation, PartSchema, ServiceContract

GREETER_CONTRACT = ServiceContract(
    service_type="Greeter",
    operations=(
        Operation(
            name="greet",
            input=MessageSchema("greetRequest", (PartSchema("name"),)),
            output=MessageSchema("greetResponse", (PartSchema("greeting"),)),
        ),
    ),
)


class GreeterService(SimulatedService):
    """A tiny Web service: one operation, simulated processing time."""

    contract = GREETER_CONTRACT

    def op_greet(self, payload, ctx):
        yield ctx.work()
        who = payload.child_text("name")
        return GREETER_CONTRACT.operation("greet").output.build(
            greeting=f"Hello {who}, from {self.name}!"
        )


RECOVERY_POLICY = """
<wsp:Policy xmlns:wsp="http://schemas.xmlsoap.org/ws/2004/09/policy"
            xmlns:masc="http://masc.web.cse.unsw.edu.au/ns/ws-policy4masc"
            Name="quickstart-recovery">
  <masc:AdaptationPolicy name="retry-then-failover" priority="10" type="correction">
    <masc:On event="fault.ServiceUnavailable"/>
    <masc:On event="fault.Timeout"/>
    <masc:Scope serviceType="Greeter"/>
    <masc:Actions>
      <masc:Retry maxRetries="2" delaySeconds="1.0"/>
      <masc:Substitute strategy="round_robin"/>
    </masc:Actions>
  </masc:AdaptationPolicy>
</wsp:Policy>
"""


def main() -> None:
    # --- infrastructure: simulation, network, hosting ----------------------
    env = Environment()
    random_source = RandomSource(seed=7)
    network = Network(env, random_source)
    container = ServiceContainer(env, network, random_source)

    container.deploy(GreeterService(env, "greeter-primary", "http://svc/greeter1"))
    container.deploy(GreeterService(env, "greeter-backup", "http://svc/greeter2"))

    # --- middleware: a VEP with a declarative recovery policy ---------------
    repository = PolicyRepository()
    repository.load_xml(RECOVERY_POLICY)
    bus = WsBus(env, network, repository=repository, member_timeout=5.0)
    vep = bus.create_vep(
        "greeter",
        GREETER_CONTRACT,
        members=["http://svc/greeter1", "http://svc/greeter2"],
        selection_strategy="primary",
    )

    # --- a client that calls through the bus -------------------------------
    client = Invoker(env, network, caller="quickstart-client")

    def call(name: str):
        payload = GREETER_CONTRACT.operation("greet").input.build(name=name)
        response = yield from client.invoke(vep.address, "greet", payload, timeout=30.0)
        print(f"t={env.now:7.3f}s  {response.body.child_text('greeting')}")

    def scenario():
        yield from call("Ada")

        print(f"t={env.now:7.3f}s  !! primary service goes down")
        network.endpoint("http://svc/greeter1").available = False
        yield from call("Grace")  # recovered transparently via policy

        print(f"t={env.now:7.3f}s  !! primary service comes back")
        network.endpoint("http://svc/greeter1").available = True
        yield from call("Edsger")

    env.run(env.process(scenario()))

    print()
    print("wsBus statistics:", bus.stats_summary())
    for outcome in bus.adaptation.outcomes:
        print(
            f"recovery: fault={outcome.fault_code} -> recovered={outcome.recovered} "
            f"via {outcome.actions_taken}"
        )


if __name__ == "__main__":
    main()
