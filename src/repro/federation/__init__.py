"""Federated multi-bus scale-out for the MASC middleware.

One logical policy plane enacted by many bus instances: a
:class:`BusFleet` runs N :class:`~repro.wsbus.WsBus` shards over the
shared simulation environment with

- consistent-hash (and policy-overridable) placement of VEPs on shards
  (:class:`HashRing`, :class:`FederationService`),
- heartbeat membership with failure suspicion (:class:`FleetMembership`),
- gossip anti-entropy of QoS observation digests (:class:`QoSGossip`) so
  best-of selection converges fleet-wide, and
- lease-based leader election (:class:`LeaderElection`) so exactly one
  bus's Adaptation Manager enacts fleet-wide policy reactions.
"""

from repro.federation.election import LeaderElection, LeaderLease
from repro.federation.fleet import BusFleet, FleetVep
from repro.federation.gossip import GossipAgent, QoSGossip
from repro.federation.membership import BusMember, FleetMembership
from repro.federation.ring import HashRing
from repro.federation.service import FEDERATION_CONFIGURE, FederationService

__all__ = [
    "BusFleet",
    "BusMember",
    "FEDERATION_CONFIGURE",
    "FederationService",
    "FleetMembership",
    "FleetVep",
    "GossipAgent",
    "HashRing",
    "LeaderElection",
    "LeaderLease",
    "QoSGossip",
]
