"""Ablation: recovery layer — messaging vs process orchestration.

The paper's architectural argument: "Some reliability aspects (e.g.,
invocation retries) can be solved at different layers with different
trade-offs... Among the advantages of the adaptation at the messaging
layer is the potential reusability across process instances and process
types. In particular, executing faults handling policies at the messaging
layer shields faults from the process orchestration."

This ablation repairs the *same* transient fault three ways and measures
the trade-offs:

- **messaging layer**: the VEP retries; the process never sees a fault;
- **process layer**: the fault reaches the orchestration engine, whose
  fault advisor retries the whole Invoke activity;
- **no recovery**: the instance faults.
"""

from __future__ import annotations

from repro.casestudies.scm import RETAILER_CONTRACT, build_scm_deployment
from repro.metrics import Table
from repro.orchestration import Invoke, ProcessDefinition, Reply, Sequence
from repro.orchestration.instance import InstanceStatus
from repro.policy import (
    AdaptationPolicy,
    PolicyDocument,
    PolicyScope,
    RetryAction,
    serialize_policy_document,
)
from repro.wsbus import WsBus


def purchase(to):
    return ProcessDefinition(
        "layer-test",
        Sequence(
            "main",
            [
                Invoke(
                    "get-catalog",
                    operation="getCatalog",
                    to=to,
                    extract={"catalog": "catalog"},
                    timeout_seconds=120.0,
                ),
                Reply("r", variable="catalog"),
            ],
        ),
    )


def run_mode(mode: str, outage_seconds: float = 6.0):
    """One instance against a retailer that is down for ``outage_seconds``.

    The MASC components are wired onto the SCM deployment's simulation
    world directly (the facade would build its own separate world).
    """
    deployment = build_scm_deployment(seed=97, log_events=False)

    from repro.core import MASCAdaptationService, MASCPolicyDecisionMaker
    from repro.orchestration import TrackingService, WorkflowEngine
    from repro.policy import PolicyRepository

    repository = PolicyRepository()
    engine = WorkflowEngine(
        deployment.env, network=deployment.network, registry=deployment.registry
    )
    tracking = engine.add_service(TrackingService())
    decision_maker = MASCPolicyDecisionMaker(deployment.env, repository)
    adaptation = MASCAdaptationService(decision_maker)
    engine.add_service(adaptation)

    target = deployment.retailers["C"].address
    if mode == "messaging":
        repository.load(
            PolicyDocument(
                "messaging",
                adaptation_policies=[
                    AdaptationPolicy(
                        name="vep-retry",
                        triggers=("fault.*",),
                        scope=PolicyScope(service_type="Retailer"),
                        actions=(RetryAction(max_retries=5, delay_seconds=2.0),),
                    )
                ],
            )
        )
        bus = WsBus(
            deployment.env,
            deployment.network,
            repository=repository,
            registry=deployment.registry,
            member_timeout=5.0,
        )
        vep = bus.create_vep("retailers", RETAILER_CONTRACT, members=[target])
        call_target = vep.address
    elif mode == "process":
        repository.load(
            PolicyDocument(
                "process",
                adaptation_policies=[
                    AdaptationPolicy(
                        name="engine-retry",
                        triggers=("process-fault.*",),
                        actions=(RetryAction(max_retries=5, delay_seconds=2.0),),
                    )
                ],
            )
        )
        call_target = target
    else:
        call_target = target

    endpoint = deployment.network.endpoint(target)
    endpoint.available = False

    def repairer():
        yield deployment.env.timeout(outage_seconds)
        endpoint.available = True

    deployment.env.process(repairer())
    instance = engine.start(purchase(call_target))
    try:
        engine.run_to_completion(instance)
    except Exception:  # noqa: BLE001 - faulted instance is a valid outcome
        pass
    return {
        "status": instance.status.value,
        "duration": deployment.env.now,
        "process_saw_fault": bool(tracking.events_for(instance.id, "activity_faulted")),
        "engine_retries": len(tracking.events_for(instance.id, "activity_retried")),
    }


def test_recovery_layer_ablation(benchmark):
    def run_all():
        return {
            "no recovery": run_mode("none"),
            "messaging layer (wsBus)": run_mode("messaging"),
            "process layer (engine)": run_mode("process"),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table(
        ["Recovery at", "Instance status", "Completed at (s)", "Fault visible to process", "Engine retries"],
        title="Ablation — where recovery happens (6 s outage, retry every 2 s)",
    )
    for label, data in results.items():
        table.add_row(
            [
                label,
                data["status"],
                f"{data['duration']:.2f}",
                data["process_saw_fault"],
                data["engine_retries"],
            ]
        )
    print()
    print(table.render())

    none, messaging, process = (
        results["no recovery"],
        results["messaging layer (wsBus)"],
        results["process layer (engine)"],
    )
    # Without recovery the instance faults; with either layer it completes.
    assert none["status"] == "faulted"
    assert messaging["status"] == "completed"
    assert process["status"] == "completed"
    # The messaging layer shields the orchestration: no fault, no retries
    # visible at the process level. The process layer sees and handles them.
    assert not messaging["process_saw_fault"]
    assert messaging["engine_retries"] == 0
    assert process["engine_retries"] >= 1
    # Both recover in roughly the outage duration.
    assert messaging["duration"] >= 6.0
    assert process["duration"] >= 6.0
