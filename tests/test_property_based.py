"""Property-based tests (hypothesis) on core data structures and invariants."""

import string

from hypothesis import given, settings, strategies as st

from repro.metrics import availability_from_records, failures_per_1000
from repro.orchestration import Expression
from repro.policy import (
    AdaptationPolicy,
    BusinessValue,
    InvokeSpec,
    MessageCondition,
    MonitoringPolicy,
    PolicyDocument,
    PolicyScope,
    RetryAction,
    AddActivityAction,
    SubstituteAction,
    parse_policy_document,
    serialize_policy_document,
)
from repro.services import InvocationOutcome, InvocationRecord
from repro.soap import SoapEnvelope
from repro.simulation import Environment
from repro.xmlutils import Element, QName, parse_xml, serialize_xml

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

names = st.text(alphabet=string.ascii_letters, min_size=1, max_size=12)
texts = st.text(
    alphabet=string.ascii_letters + string.digits + " -_.", min_size=0, max_size=30
).map(str.strip)


@st.composite
def elements(draw, depth=0):
    element = Element(draw(names))
    for key in draw(st.lists(names, max_size=3, unique=True)):
        element.attributes[key] = draw(texts)
    text = draw(texts)
    if text:
        element.text = text
    if depth < 3:
        for child in draw(st.lists(elements(depth=depth + 1), max_size=3)):
            element.append(child)
    return element


@st.composite
def invocation_records(draw):
    start = draw(st.floats(min_value=0, max_value=1000, allow_nan=False))
    duration = draw(st.floats(min_value=0.001, max_value=10, allow_nan=False))
    ok = draw(st.booleans())
    return InvocationRecord(
        caller="c",
        target="http://a",
        operation="op",
        started_at=start,
        finished_at=start + duration,
        outcome=InvocationOutcome.SUCCESS if ok else InvocationOutcome.FAULT,
    )


@st.composite
def policy_documents(draw):
    document = PolicyDocument(draw(names))
    for index in range(draw(st.integers(0, 3))):
        document.monitoring_policies.append(
            MonitoringPolicy(
                name=f"m{index}-{draw(names)}",
                events=tuple(draw(st.lists(names, min_size=1, max_size=3))),
                scope=PolicyScope(service_type=draw(st.none() | names)),
                conditions=tuple(
                    MessageCondition(draw(names), "eq", draw(texts))
                    for _ in range(draw(st.integers(0, 2)))
                ),
                extract={draw(names): draw(names) for _ in range(draw(st.integers(0, 2)))},
                emits=tuple(draw(st.lists(names, max_size=2))),
                priority=draw(st.integers(0, 999)),
            )
        )
    for index in range(draw(st.integers(1, 3))):
        actions = [
            draw(
                st.sampled_from(
                    [
                        RetryAction(
                            max_retries=draw(st.integers(0, 9)),
                            delay_seconds=draw(
                                st.floats(min_value=0, max_value=60, allow_nan=False)
                            ),
                        ),
                        SubstituteAction("round_robin"),
                        AddActivityAction(
                            anchor=draw(names),
                            invokes=(
                                InvokeSpec(
                                    name=draw(names),
                                    operation=draw(names),
                                    address=f"http://{draw(names)}",
                                ),
                            ),
                        ),
                    ]
                )
            )
        ]
        document.adaptation_policies.append(
            AdaptationPolicy(
                name=f"a{index}-{draw(names)}",
                triggers=tuple(draw(st.lists(names, min_size=1, max_size=2))),
                actions=tuple(actions),
                priority=draw(st.integers(0, 999)),
                business_value=draw(
                    st.none()
                    | st.builds(
                        BusinessValue,
                        amount=st.floats(
                            min_value=-1e6, max_value=1e6, allow_nan=False
                        ),
                        currency=st.sampled_from(["AUD", "USD"]),
                        reason=texts,
                    )
                ),
            )
        )
    return document


# ---------------------------------------------------------------------------
# XML round-trip properties
# ---------------------------------------------------------------------------


@given(elements())
@settings(max_examples=50)
def test_element_xml_round_trip(element):
    parsed = parse_xml(serialize_xml(element))
    assert parsed.structurally_equal(element)


@given(elements())
@settings(max_examples=30)
def test_element_copy_is_structurally_equal_but_distinct(element):
    duplicate = element.copy()
    assert duplicate.structurally_equal(element)
    assert all(a is not b for a, b in zip(duplicate.iter(), element.iter()))


@given(policy_documents())
@settings(max_examples=30)
def test_policy_document_round_trip_fixed_point(document):
    """serialize(parse(serialize(d))) == serialize(d): one round trip is a
    fixed point of the XML mapping."""
    once = serialize_policy_document(document)
    twice = serialize_policy_document(parse_policy_document(once))
    assert once == twice


@given(policy_documents())
@settings(max_examples=30)
def test_policy_document_parse_preserves_counts_and_priorities(document):
    reparsed = parse_policy_document(serialize_policy_document(document))
    assert len(reparsed) == len(document)
    assert [p.priority for p in reparsed.adaptation_policies] == [
        p.priority for p in document.adaptation_policies
    ]


# ---------------------------------------------------------------------------
# Envelope properties
# ---------------------------------------------------------------------------


@given(elements(), st.integers(0, 10_000))
@settings(max_examples=30)
def test_envelope_round_trip_preserves_body(body, padding):
    envelope = SoapEnvelope.request("http://svc", "urn:op:x", body, padding=padding)
    parsed = SoapEnvelope.from_xml(envelope.to_xml())
    assert parsed.body.structurally_equal(body)
    assert envelope.size_bytes >= padding


@given(elements())
@settings(max_examples=30)
def test_reply_always_correlates(body):
    request = SoapEnvelope.request("http://svc", "urn:op:x", body)
    reply = request.reply(Element("ok"))
    assert reply.addressing.relates_to == request.addressing.message_id


# ---------------------------------------------------------------------------
# Expression safety property
# ---------------------------------------------------------------------------


@given(
    st.integers(-1000, 1000),
    st.integers(-1000, 1000),
    st.sampled_from(["+", "-", "*", "<", "<=", ">", ">=", "==", "!="]),
)
def test_expression_agrees_with_python(a, b, op):
    expected = eval(f"a {op} b", {"a": a, "b": b})  # noqa: S307 - test oracle
    assert Expression(f"a {op} b").evaluate({"a": a, "b": b}) == expected


# ---------------------------------------------------------------------------
# Metrics invariants
# ---------------------------------------------------------------------------


@given(st.lists(invocation_records(), max_size=60))
@settings(max_examples=50)
def test_metrics_bounds(records):
    assert 0.0 <= failures_per_1000(records) <= 1000.0
    assert 0.0 <= availability_from_records(records) <= 1.0


@given(st.lists(invocation_records(), min_size=1, max_size=60))
@settings(max_examples=50)
def test_all_success_means_perfect_metrics(records):
    successes = [
        InvocationRecord(
            caller=r.caller,
            target=r.target,
            operation=r.operation,
            started_at=r.started_at,
            finished_at=r.finished_at,
            outcome=InvocationOutcome.SUCCESS,
        )
        for r in records
    ]
    assert failures_per_1000(successes) == 0.0
    assert availability_from_records(successes) == 1.0


# ---------------------------------------------------------------------------
# Simulation kernel invariant
# ---------------------------------------------------------------------------


@given(st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), min_size=1, max_size=20))
@settings(max_examples=50)
def test_simulation_time_is_monotone(delays):
    env = Environment()
    observed = []

    def waiter(delay):
        yield env.timeout(delay)
        observed.append(env.now)

    for delay in delays:
        env.process(waiter(delay))
    env.run()
    assert observed == sorted(observed)
    assert env.now == max(delays)
