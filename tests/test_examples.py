"""Every shipped example must run clean — examples are executable docs."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda path: path.name)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n--- stdout ---\n{result.stdout}\n"
        f"--- stderr ---\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{script.name} produced no output"


def test_examples_exist():
    assert len(EXAMPLES) >= 5


def test_policy_files_are_valid_documents():
    from repro.policy import parse_policy_document, validate_document

    policy_files = sorted((EXAMPLES_DIR / "policies").glob("*.xml"))
    assert len(policy_files) >= 7
    for path in policy_files:
        document = parse_policy_document(path.read_text())
        issues = validate_document(document, raise_on_error=True)
        assert not [issue for issue in issues if issue.severity == "error"], path.name
