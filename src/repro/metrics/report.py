"""Plain-text tables for benchmark output (the shape of the paper's
tables and figure series, printed by the harnesses)."""

from __future__ import annotations

__all__ = ["Table"]


class Table:
    """A simple column-aligned text table."""

    def __init__(self, headers: list[str], title: str | None = None) -> None:
        self.title = title
        self.headers = list(headers)
        self.rows: list[list[str]] = []

    def add_row(self, values: list) -> None:
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append([str(value) for value in values])

    def render(self) -> str:
        widths = [len(header) for header in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def line(cells: list[str]) -> str:
            return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

        separator = "-+-".join("-" * width for width in widths)
        parts = []
        if self.title:
            parts.append(self.title)
            parts.append("=" * len(self.title))
        parts.append(line(self.headers))
        parts.append(separator)
        parts.extend(line(row) for row in self.rows)
        return "\n".join(parts)

    def __str__(self) -> str:
        return self.render()
