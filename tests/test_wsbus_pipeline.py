"""Unit tests for the message pipeline, inspectors and transformations."""

import pytest

from repro.simulation import Environment
from repro.soap import SoapEnvelope
from repro.wsbus import (
    AggregatorModule,
    ApplicabilityRule,
    BusinessEventTracer,
    ContractValidationInspector,
    EnrichmentModule,
    MessageLogger,
    MessagePipeline,
    MessageProcessingModule,
    PayloadTransformModule,
    PipelineContext,
    SplitterModule,
)
from repro.wsdl import ContractViolation, MessageSchema, Operation, PartSchema, ServiceContract
from repro.xmlutils import Element


def envelope(root="orderRequest", **parts):
    body = Element(root)
    for key, value in parts.items():
        body.add(key, text=str(value))
    return SoapEnvelope(body=body, addressing=SoapEnvelope.request("http://x", "urn:op:o", Element("t")).addressing)


def context(operation="submitOrder"):
    return PipelineContext(env=Environment(), vep=None, operation=operation)


class StampModule(MessageProcessingModule):
    def __init__(self, name, rule=None):
        super().__init__(name, rule)
        self.seen = []

    def process_request(self, env_, ctx):
        self.seen.append("request")
        env_.body.add("stamp", text=self.name)
        return env_

    def process_response(self, env_, ctx):
        self.seen.append("response")
        return env_


class TestApplicabilityRule:
    def test_operation_glob(self):
        rule = ApplicabilityRule(operation="get*")
        assert rule.matches(envelope(), context("getCatalog"))
        assert not rule.matches(envelope(), context("submitOrder"))

    def test_xpath_against_body(self):
        rule = ApplicabilityRule(xpath="amount[. > 1000]")
        assert rule.matches(envelope(amount=5000), context())
        assert not rule.matches(envelope(amount=10), context())

    def test_regex_against_serialized_message(self):
        rule = ApplicabilityRule(regex="customer-4[0-9]")
        assert rule.matches(envelope(customer="customer-42"), context())
        assert not rule.matches(envelope(customer="customer-99"), context())

    def test_combined_criteria_all_must_hold(self):
        rule = ApplicabilityRule(operation="submit*", xpath="amount")
        assert rule.matches(envelope(amount=1), context("submitOrder"))
        assert not rule.matches(envelope(amount=1), context("getCatalog"))
        assert not rule.matches(envelope(), context("submitOrder"))


class TestPipeline:
    def test_request_order_and_response_reversed(self):
        first, second = StampModule("first"), StampModule("second")
        pipeline = MessagePipeline([first, second])
        ctx = context()
        out = pipeline.run_request(envelope(), ctx)
        assert [e.text for e in out.body.find_all("stamp")] == ["first", "second"]
        pipeline.run_response(envelope(), ctx)
        assert first.seen == ["request", "response"]

    def test_module_scoping_by_rule(self):
        scoped = StampModule("scoped", rule=ApplicabilityRule(operation="getCatalog"))
        pipeline = MessagePipeline([scoped])
        out = pipeline.run_request(envelope(), context("submitOrder"))
        assert out.body.find("stamp") is None

    def test_add_insert_remove(self):
        pipeline = MessagePipeline()
        a = pipeline.add(StampModule("a"))
        pipeline.insert(0, StampModule("b"))
        assert [m.name for m in pipeline.modules] == ["b", "a"]
        assert pipeline.remove("b") is True
        assert pipeline.remove("missing") is False


class TestMessageLogger:
    def test_logs_and_meters(self):
        logger = MessageLogger()
        pipeline = MessagePipeline([logger])
        ctx = context("getCatalog")
        pipeline.run_request(envelope(amount=1), ctx)
        pipeline.run_response(envelope(amount=2), ctx)
        assert len(logger.entries) == 2
        assert logger.entries[0].direction == "request"
        assert logger.metered_usage()["getCatalog"] > 0


class TestContractValidation:
    CONTRACT = ServiceContract(
        service_type="Orders",
        operations=(
            Operation(
                "submitOrder",
                MessageSchema("orderRequest", (PartSchema("amount", "int"),)),
                MessageSchema("orderResponse", (PartSchema("status"),)),
            ),
        ),
    )

    def test_valid_request_passes(self):
        inspector = ContractValidationInspector(self.CONTRACT)
        MessagePipeline([inspector]).run_request(envelope(amount=5), context())
        assert inspector.violations == []

    def test_invalid_request_raises(self):
        inspector = ContractValidationInspector(self.CONTRACT)
        with pytest.raises(ContractViolation):
            MessagePipeline([inspector]).run_request(envelope(), context())
        assert inspector.violations

    def test_lenient_mode_records_only(self):
        inspector = ContractValidationInspector(self.CONTRACT, strict=False)
        MessagePipeline([inspector]).run_request(envelope(), context())
        assert inspector.violations

    def test_unknown_operation_ignored(self):
        inspector = ContractValidationInspector(self.CONTRACT)
        MessagePipeline([inspector]).run_request(envelope(), context("mystery"))
        assert inspector.violations == []


class TestBusinessEventTracer:
    def test_traces_large_transactions(self):
        tracer = BusinessEventTracer("large-order", "amount[. >= 10000]")
        pipeline = MessagePipeline([tracer])
        pipeline.run_request(envelope(amount=50000), context())
        pipeline.run_request(envelope(amount=10), context())
        assert len(tracer.events) == 1
        assert tracer.events[0].value == "50000"


class TestPayloadTransform:
    def test_rename_and_convert(self):
        module = PayloadTransformModule(
            rename_root="newOrder",
            rename_parts={"amount": "total"},
            convert_values={"amount": lambda v: str(float(v) * 2)},
            drop_parts=("secret",),
        )
        out = module.process_request(envelope(amount=10, keep="x", secret="s"), context())
        assert out.body.name.local == "newOrder"
        assert out.body.child_text("total") == "20.0"
        assert out.body.child_text("keep") == "x"
        assert out.body.find("secret") is None

    def test_direction_response_only(self):
        module = PayloadTransformModule(rename_root="changed", direction="response")
        unchanged = module.process_request(envelope(), context())
        assert unchanged.body.name.local == "orderRequest"
        changed = module.process_response(envelope(), context())
        assert changed.body.name.local == "changed"

    def test_original_envelope_untouched(self):
        module = PayloadTransformModule(rename_root="changed")
        original = envelope(amount=1)
        module.process_request(original, context())
        assert original.body.name.local == "orderRequest"


class TestEnrichment:
    def test_appends_external_data(self):
        module = EnrichmentModule(lambda env_, ctx: {"region": "APAC", "tier": "gold"})
        out = module.process_request(envelope(amount=1), context())
        assert out.body.child_text("region") == "APAC"
        assert out.body.child_text("tier") == "gold"

    def test_empty_source_is_noop(self):
        module = EnrichmentModule(lambda env_, ctx: {})
        original = envelope(amount=1)
        assert module.process_request(original, context()) is original


class TestSplitterAggregator:
    def test_split_per_item(self):
        body = Element("orderRequest")
        body.add("customer", text="c1")
        body.add("Item", text="TV")
        body.add("Item", text="DVD")
        message = SoapEnvelope(body=body)
        parts = SplitterModule("Item").split(message)
        assert len(parts) == 2
        assert [p.body.find("Item").text for p in parts] == ["TV", "DVD"]
        assert all(p.body.child_text("customer") == "c1" for p in parts)

    def test_split_without_items_passthrough(self):
        message = envelope(amount=1)
        assert SplitterModule("Item").split(message) == [message]

    def test_aggregate_batches(self):
        aggregator = AggregatorModule(batch_size=2, root_element="Batch")
        assert aggregator.offer(envelope(amount=1)) is None
        merged = aggregator.offer(envelope(amount=2))
        assert merged is not None
        assert len(merged.body.children) == 2
        assert aggregator.pending == 0

    def test_flush_partial_batch(self):
        aggregator = AggregatorModule(batch_size=10)
        aggregator.offer(envelope(amount=1))
        merged = aggregator.flush()
        assert merged is not None and len(merged.body.children) == 1

    def test_flush_empty_returns_none(self):
        assert AggregatorModule(batch_size=2).flush() is None

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            AggregatorModule(batch_size=0)
