"""Lightweight namespace-aware XML infrastructure.

The policy language (WS-Policy4MASC), the SOAP envelope model and the wsBus
message-routing rules all operate on XML. This package supplies a small
element tree with first-class qualified names, parse/serialize round-tripping
(bridged through the standard library parser) and an XPath-lite evaluator
covering the subset the paper's monitoring policies use: absolute and
relative location paths, ``//`` descendant steps, wildcards, attribute
selection and simple equality/comparison predicates.
"""

from repro.xmlutils.element import (
    Element,
    XmlError,
    escaped_text_size,
    parse_xml,
    serialize_xml,
    serialize_xml_reference,
)
from repro.xmlutils.qname import QName
from repro.xmlutils.xpath import XPath, XPathError, xpath_evaluate, xpath_value

__all__ = [
    "Element",
    "QName",
    "XPath",
    "XPathError",
    "XmlError",
    "escaped_text_size",
    "parse_xml",
    "serialize_xml",
    "serialize_xml_reference",
    "xpath_evaluate",
    "xpath_value",
]
