"""Stock trading testbed assembly on the MASC facade.

Deploys every Figure 2 service — including multiple equivalent instances of
the variation services (CC_1..CC_n, PS_1..PS_n, CR_1..CR_n, "there can be
multiple different services of the same type in the composition") — wires
the notification feed, registers the base trading process, and exposes a
``place_order`` helper used by examples, tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.casestudies.stocktrading.process import build_trading_process
from repro.casestudies.stocktrading.services import (
    CreditRatingService,
    CurrencyConversionService,
    FinancialAnalysisService,
    FundManagerService,
    MarketComplianceService,
    PaymentService,
    PESTAnalysisService,
    StockMarketService,
    StockNotificationService,
    StockRegistryService,
)
from repro.core import MASC
from repro.orchestration import ProcessInstance
from repro.services import ProcessingModel

__all__ = ["TradingDeployment", "build_trading_deployment"]


@dataclass
class TradingDeployment:
    """The assembled trading testbed."""

    masc: MASC
    fund_manager: FundManagerService
    analysis_services: list[FinancialAnalysisService]
    notification: StockNotificationService
    market: StockMarketService
    registry_service: StockRegistryService
    payment: PaymentService
    compliance: MarketComplianceService
    conversion_services: list[CurrencyConversionService] = field(default_factory=list)
    pest_services: list[PESTAnalysisService] = field(default_factory=list)
    credit_services: list[CreditRatingService] = field(default_factory=list)

    @property
    def env(self):
        return self.masc.env

    @property
    def engine(self):
        return self.masc.engine

    def register_base_process(self, name: str = "trading-process"):
        """Register the base national-trading process definition."""
        definition = build_trading_process(
            fund_manager_address=self.fund_manager.address,
            analysis_address=self.analysis_services[0].address,
            compliance_address=self.compliance.address,
            market_address=self.market.address,
            name=name,
        )
        return self.engine.register_definition(definition)

    def place_order(
        self,
        definition: str = "trading-process",
        investor_id: str = "investor-1",
        order_type: str = "invest",
        amount: float = 5000.0,
        country: str = "AU",
        currency: str = "AUD",
        profile: str = "personal",
    ) -> ProcessInstance:
        """Start one trading-process instance (does not advance time)."""
        return self.engine.start(
            definition,
            variables={
                "investor_id": investor_id,
                "order_type": order_type,
                "amount": float(amount),
                "country": country,
                "currency": currency,
                "profile": profile,
            },
        )

    def run_order(self, **kwargs) -> ProcessInstance:
        """Start an order and drive the simulation to its completion."""
        instance = self.place_order(**kwargs)
        self.engine.run_to_completion(instance)
        return instance


def build_trading_deployment(
    seed: int = 0,
    equivalent_variants: int = 2,
    start_notifications: bool = True,
) -> TradingDeployment:
    """Deploy the full stock-trading application on a fresh MASC stack."""
    masc = MASC(seed=seed)
    env = masc.env

    registry_service = StockRegistryService(
        env, "StockRegistry", "http://trading/registry",
        processing=ProcessingModel(base_seconds=0.004),
    )
    masc.deploy(registry_service)
    payment = PaymentService(
        env, "Payment", "http://trading/payment",
        processing=ProcessingModel(base_seconds=0.004),
    )
    masc.deploy(payment)
    market = StockMarketService(
        env, "StockMarket", "http://trading/market",
        processing=ProcessingModel(base_seconds=0.006),
        registry_address=registry_service.address,
        payment_address=payment.address,
    )
    masc.deploy(market)
    notification = StockNotificationService(
        env, "StockNotification", "http://trading/notification",
        processing=ProcessingModel(base_seconds=0.002),
    )
    masc.deploy(notification)

    analysis_services = []
    for index in range(1, max(1, equivalent_variants) + 1):
        analysis = FinancialAnalysisService(
            env, f"FinancialAnalysis{index}", f"http://trading/analysis{index}",
            processing=ProcessingModel(base_seconds=0.005 + 0.002 * index),
        )
        masc.deploy(analysis)
        notification.subscribers.append(analysis.address)
        analysis_services.append(analysis)

    fund_manager = FundManagerService(
        env, "FundManager", "http://trading/fundmanager",
        processing=ProcessingModel(base_seconds=0.005),
    )
    masc.deploy(fund_manager)
    compliance = MarketComplianceService(
        env, "MarketCompliance", "http://trading/compliance",
        processing=ProcessingModel(base_seconds=0.008),
    )
    masc.deploy(compliance)

    deployment = TradingDeployment(
        masc=masc,
        fund_manager=fund_manager,
        analysis_services=analysis_services,
        notification=notification,
        market=market,
        registry_service=registry_service,
        payment=payment,
        compliance=compliance,
    )
    for index in range(1, max(1, equivalent_variants) + 1):
        conversion = CurrencyConversionService(
            env, f"CurrencyConversion{index}", f"http://trading/cc{index}",
            processing=ProcessingModel(base_seconds=0.003),
        )
        masc.deploy(conversion)
        deployment.conversion_services.append(conversion)
        pest = PESTAnalysisService(
            env, f"PESTAnalysis{index}", f"http://trading/pest{index}",
            processing=ProcessingModel(base_seconds=0.01),
        )
        masc.deploy(pest)
        deployment.pest_services.append(pest)
        credit = CreditRatingService(
            env, f"CreditRating{index}", f"http://trading/cr{index}",
            processing=ProcessingModel(base_seconds=0.007),
        )
        masc.deploy(credit)
        deployment.credit_services.append(credit)

    if start_notifications:
        notification.start_publishing()
    deployment.register_base_process()
    return deployment
