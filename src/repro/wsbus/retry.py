"""Invocation Retry Handler: retry queue and dead-letter queue.

"The Invocation Retry Handler places the messages that fail to be delivered
in a retry queue and the queue reader tries redelivery using the pattern
specified by the used recovery policy. Messages for which processing
repeatedly fails are placed in a 'dead letter' queue after exhausting the
maximum number of allowed retries and no further delivery will be
attempted."
"""

from __future__ import annotations

from collections import deque
from collections.abc import Generator
from dataclasses import dataclass
from typing import Any

from repro.observability import NULL_METRICS, NULL_TRACER, correlation_id_for
from repro.observability.trace_context import (
    context_of_span,
    stamp_trace_context,
    trace_context_of,
)
from repro.policy.actions import RetryAction
from repro.soap import FaultCode, SoapEnvelope, SoapFault, SoapFaultError

__all__ = ["DeadLetterEntry", "DeadLetterQueue", "RetryQueue"]


@dataclass
class _RetryEntry:
    envelope: SoapEnvelope
    operation: str
    target: str
    policy: RetryAction
    completion: Any  # simulation Event delivering the outcome to the caller
    attempts_made: int = 0
    last_fault: SoapFault | None = None
    dead_letter_on_exhaust: bool = True
    parent_span: Any = None


@dataclass(frozen=True)
class DeadLetterEntry:
    """A message whose redelivery was abandoned."""

    time: float
    envelope: SoapEnvelope
    operation: str
    target: str
    attempts_made: int
    reason: str


class DeadLetterQueue:
    """Terminal parking lot for undeliverable messages."""

    def __init__(self) -> None:
        self.entries: list[DeadLetterEntry] = []
        #: How many entries have ever been revived via :meth:`replay`.
        self.replayed = 0

    def add(self, entry: DeadLetterEntry) -> None:
        self.entries.append(entry)

    def __len__(self) -> int:
        return len(self.entries)

    def for_target(self, target: str) -> list[DeadLetterEntry]:
        return [entry for entry in self.entries if entry.target == target]

    def replay(
        self,
        retry_queue: "RetryQueue",
        entries: list[DeadLetterEntry] | None = None,
        policy: RetryAction | None = None,
        parent_span=None,
    ) -> list:
        """Give selected dead letters a fresh redelivery budget.

        Each selected entry is removed from this queue and re-enqueued on
        ``retry_queue`` with ``attempts_made`` reset to zero. The original
        envelope is reused, so the correlation ID (ProcessInstanceID /
        message ID) is preserved across the replay. Entries exhausting the
        fresh budget are dead-lettered again as new entries.

        Returns the completion events (one per entry, in queue order);
        callers may yield on them or fire-and-forget — failures are
        pre-defused so an ignored exhausted replay cannot crash the run.

        Each *queued* entry is replayed at most once: requesting the same
        entry twice (or two value-equal entries — :class:`DeadLetterEntry`
        is a frozen dataclass, so distinct objects can compare equal) maps
        each request onto a distinct queued entry, instead of crashing on
        the second removal of an already-removed entry.
        """
        if policy is None:
            policy = RetryAction()
        if entries is None:
            selected = list(self.entries)
        else:
            # Match every requested entry to a distinct queued entry by
            # identity, falling back to value equality; duplicates beyond
            # the queue's supply are ignored.
            remaining = list(self.entries)
            selected = []
            for entry in entries:
                match = next((e for e in remaining if e is entry), None)
                if match is None:
                    match = next((e for e in remaining if e == entry), None)
                if match is not None:
                    remaining[:] = [e for e in remaining if e is not match]
                    selected.append(match)
        selected_ids = {id(entry) for entry in selected}
        self.entries = [e for e in self.entries if id(e) not in selected_ids]
        completions = []
        for entry in selected:
            self.replayed += 1
            completion = retry_queue.enqueue(
                entry.envelope,
                entry.operation,
                entry.target,
                policy,
                parent_span=parent_span,
            )
            completion.callbacks.append(_defuse_failure)
            completions.append(completion)
        return completions


def _defuse_failure(event) -> None:
    event.defused = True


class RetryQueue:
    """Queue + reader redelivering failed messages per recovery policy.

    ``sender(envelope, operation, target)`` must be a generator performing
    one delivery attempt and returning the response envelope (raising
    :class:`~repro.soap.SoapFaultError` on failure) — the bus wires its own
    invoker here. Each enqueued message gets an independent redelivery
    process, so retrying one message never delays another.
    """

    def __init__(
        self,
        env,
        sender,
        dead_letter_queue: DeadLetterQueue,
        tracer=None,
        metrics=None,
        random_source=None,
    ) -> None:
        self.env = env
        self.sender = sender
        self.dead_letters = dead_letter_queue
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        from repro.simulation import RandomSource

        #: Named stream for retry-delay jitter: deterministic per seed, and
        #: independent of every other stochastic choice in the simulation.
        self._jitter_rng = (random_source or RandomSource()).stream("wsbus.retry.jitter")
        self._pending: deque[_RetryEntry] = deque()
        self.redeliveries_attempted = 0
        self.redeliveries_succeeded = 0

    @property
    def depth(self) -> int:
        return len(self._pending)

    def enqueue(
        self,
        envelope: SoapEnvelope,
        operation: str,
        target: str,
        policy: RetryAction,
        first_fault: SoapFault | None = None,
        dead_letter_on_exhaust: bool = True,
        parent_span=None,
    ):
        """Queue a failed message for redelivery.

        Returns a simulation event that succeeds with the response envelope
        if any retry succeeds, or fails with the last
        :class:`~repro.soap.SoapFaultError` after the policy is exhausted.

        ``dead_letter_on_exhaust=False`` lets the adaptation manager keep
        the message alive while later policy actions (substitution,
        broadcast) still have a chance to deliver it.
        """
        entry = _RetryEntry(
            envelope=envelope,
            operation=operation,
            target=target,
            policy=policy,
            completion=self.env.event(),
            last_fault=first_fault,
            dead_letter_on_exhaust=dead_letter_on_exhaust,
            parent_span=parent_span,
        )
        self._pending.append(entry)
        self.env.process(self._redeliver(entry), name=("retry", target))
        return entry.completion

    def _redeliver(self, entry: _RetryEntry) -> Generator:
        span = None
        if self.tracer.enabled:
            # A live parent span (adaptation manager) wins; otherwise join
            # the wire context stamped on the envelope — this is what keeps
            # a dead-letter *replay* inside the original request's trace.
            parent = entry.parent_span
            if parent is None:
                parent = trace_context_of(entry.envelope)
            span = self.tracer.start_span(
                "wsbus.retry",
                correlation_id=correlation_id_for(entry.envelope),
                parent=parent,
                attributes={
                    "target": entry.target,
                    "operation": entry.operation,
                    "max_retries": entry.policy.max_retries,
                },
            )
        try:
            while entry.attempts_made < entry.policy.max_retries:
                entry.attempts_made += 1
                delay = entry.policy.delay_for_attempt(entry.attempts_made, rng=self._jitter_rng)
                if delay > 0:
                    yield self.env.timeout(delay)
                self.redeliveries_attempted += 1
                self.metrics.counter("wsbus.retry.attempts").inc()
                attempt_envelope = entry.envelope.copy()
                if span is not None:
                    stamp_trace_context(attempt_envelope, context_of_span(span))
                try:
                    response = yield self.env.process(
                        self.sender(attempt_envelope, entry.operation, entry.target),
                        name=("redeliver", entry.target),
                    )
                except SoapFaultError as error:
                    entry.last_fault = error.fault
                    if span is not None:
                        span.add_event(
                            "attempt_failed",
                            attempt=entry.attempts_made,
                            fault=error.fault.code.value,
                        )
                    continue
                self.redeliveries_succeeded += 1
                self.metrics.counter("wsbus.retry.successes").inc()
                if span is not None:
                    span.set_attribute("attempts_made", entry.attempts_made)
                    span.end(status="recovered")
                entry.completion.succeed(response)
                return
        finally:
            if entry in self._pending:
                self._pending.remove(entry)
        # Exhausted: dead-letter and report failure to the caller.
        fault = entry.last_fault or SoapFault(
            code=FaultCode.SERVICE_UNAVAILABLE, reason="redelivery exhausted"
        )
        if span is not None:
            span.set_attribute("attempts_made", entry.attempts_made)
            span.end(status="exhausted")
        if not entry.dead_letter_on_exhaust:
            entry.completion.fail(SoapFaultError(fault))
            return
        self.metrics.counter("wsbus.retry.dead_letters").inc()
        self.dead_letters.add(
            DeadLetterEntry(
                time=self.env.now,
                envelope=entry.envelope,
                operation=entry.operation,
                target=entry.target,
                attempts_made=entry.attempts_made,
                reason=str(fault),
            )
        )
        entry.completion.fail(SoapFaultError(fault))
