"""MASCPolicyParser: imports WS-Policy4MASC documents into the repository.

"When the MASCAdaptationService starts, our MASCPolicyParser imports
WS-Policy4MASC files, creates instances of corresponding policy classes,
and stores these instances in the policy repository."

In the paper the policy classes are generated from the XML schema by the
.NET XSD tool; here they are the dataclasses in :mod:`repro.policy.model`
and the parser is :func:`repro.policy.xml.parse_policy_document`. The
parser optionally validates documents before loading and keeps per-file
modification stamps so re-imports only re-parse changed files (the paper's
planned .NET optimization: "working with object representation of
policies, which is updated only when policies change").
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.policy import PolicyDocument, PolicyRepository, parse_policy_document, validate_document

__all__ = ["MASCPolicyParser"]


class MASCPolicyParser:
    """Loads policy XML from strings or files into a repository."""

    def __init__(self, repository: PolicyRepository, validate: bool = True) -> None:
        self.repository = repository
        self.validate = validate
        self._file_stamps: dict[str, float] = {}
        self.parse_count = 0

    def import_xml(self, text: str) -> PolicyDocument:
        """Parse, optionally validate, and load one XML document."""
        document = parse_policy_document(text)
        if self.validate:
            validate_document(document, raise_on_error=True)
        self.parse_count += 1
        return self.repository.load(document)

    def import_file(self, path: str | Path) -> PolicyDocument | None:
        """Import a policy file; skips re-parsing if unchanged on disk.

        Returns the loaded document, or None if the file was unchanged.
        """
        path = Path(path)
        stamp = os.stat(path).st_mtime
        if self._file_stamps.get(str(path)) == stamp:
            return None
        document = self.import_xml(path.read_text())
        self._file_stamps[str(path)] = stamp
        return document

    def import_directory(self, directory: str | Path) -> list[PolicyDocument]:
        """Import every ``*.xml`` policy file under ``directory``."""
        loaded = []
        for path in sorted(Path(directory).glob("*.xml")):
            document = self.import_file(path)
            if document is not None:
                loaded.append(document)
        return loaded
