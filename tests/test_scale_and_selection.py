"""Scale/soak checks and direct selection-service unit tests."""

from collections import Counter

import pytest

from conftest import ECHO_CONTRACT, EchoService
from repro.casestudies.scm import (
    RETAILER_CONTRACT,
    build_scm_deployment,
    retailer_recovery_policy_document,
)
from repro.policy import PolicyRepository
from repro.simulation import RandomSource
from repro.workload import RequestPlan, WorkloadRunner
from repro.wsbus import QoSMeasurementService, SelectionService, WsBus


class TestSelectionServiceUnit:
    @pytest.fixture
    def selection(self):
        return SelectionService(QoSMeasurementService(), RandomSource(4))

    MEMBERS = ["http://a", "http://b", "http://c"]

    def test_round_robin_cycles(self, selection):
        picks = [
            selection.select("vep", "round_robin", self.MEMBERS) for _ in range(6)
        ]
        assert picks == self.MEMBERS + self.MEMBERS

    def test_round_robin_counters_are_per_vep(self, selection):
        first = selection.select("vep1", "round_robin", self.MEMBERS)
        other = selection.select("vep2", "round_robin", self.MEMBERS)
        assert first == other == "http://a"

    def test_round_robin_exclusion_keeps_rotation_position(self, selection):
        # Regression: indexing the *filtered* candidate list with the
        # rotation counter warped the cycle whenever a member was excluded
        # mid-rotation (counter=1 over candidates [b, c] picked c,
        # starving b). Positions must anchor to the full member list.
        assert selection.select("vep", "round_robin", self.MEMBERS) == "http://a"
        pick = selection.select(
            "vep", "round_robin", self.MEMBERS, exclude={"http://a"}
        )
        assert pick == "http://b"
        assert selection.select("vep", "round_robin", self.MEMBERS) == "http://c"

    def test_round_robin_fair_under_persistent_exclusion(self, selection):
        picks = [
            selection.select("vep", "round_robin", self.MEMBERS, exclude={"http://c"})
            for _ in range(4)
        ]
        assert picks == ["http://a", "http://b", "http://a", "http://b"]

    def test_exclusions_respected(self, selection):
        pick = selection.select(
            "vep", "primary", self.MEMBERS, exclude={"http://a", "http://b"}
        )
        assert pick == "http://c"

    def test_all_excluded_returns_none(self, selection):
        assert (
            selection.select("vep", "primary", self.MEMBERS, exclude=set(self.MEMBERS))
            is None
        )

    def test_empty_members_returns_none(self, selection):
        assert selection.select("vep", "round_robin", []) is None

    def test_unknown_strategy_raises(self, selection):
        with pytest.raises(ValueError):
            selection.select("vep", "tarot", self.MEMBERS)

    def test_broadcast_targets_cap(self, selection):
        assert selection.broadcast_targets(self.MEMBERS, max_targets=2) == [
            "http://a",
            "http://b",
        ]
        assert selection.broadcast_targets(self.MEMBERS, exclude={"http://a"}) == [
            "http://b",
            "http://c",
        ]

    def test_broadcast_window_rotates_over_all_members(self, selection):
        """Regression: ``candidates[:max_targets]`` truncation meant the
        tail members never received a single broadcast."""
        counts = Counter()
        for _ in range(6):
            targets = selection.broadcast_targets(
                self.MEMBERS, max_targets=2, vep_name="vep"
            )
            assert len(targets) == 2
            counts.update(targets)
        assert counts == Counter(
            {"http://a": 4, "http://b": 4, "http://c": 4}
        )

    def test_broadcast_rotation_is_per_vep_and_skips_exclusions(self, selection):
        first = selection.broadcast_targets(self.MEMBERS, max_targets=1, vep_name="v1")
        assert first == ["http://a"]
        # A different VEP keeps its own rotation counter.
        assert selection.broadcast_targets(
            self.MEMBERS, max_targets=1, vep_name="v2"
        ) == ["http://a"]
        # Exclusions are skipped without warping the sweep off course.
        assert selection.broadcast_targets(
            self.MEMBERS, max_targets=1, exclude={"http://b"}, vep_name="v1"
        ) == ["http://c"]
        assert selection.broadcast_targets(
            self.MEMBERS, max_targets=1, vep_name="v1"
        ) == ["http://a"]

    def test_random_is_seed_deterministic(self):
        a = SelectionService(QoSMeasurementService(), RandomSource(4))
        b = SelectionService(QoSMeasurementService(), RandomSource(4))
        picks_a = [a.select("v", "random", self.MEMBERS) for _ in range(10)]
        picks_b = [b.select("v", "random", self.MEMBERS) for _ in range(10)]
        assert picks_a == picks_b


class TestSoak:
    def test_sustained_load_through_bus_with_faults(self):
        """A soak run: 8 clients x 300 requests through a VEP under the
        full Table 1 fault mix — no leaked exceptions, no stuck events,
        virtually everything recovered."""
        deployment = build_scm_deployment(seed=101, log_events=False)
        deployment.inject_table1_mix()
        repository = PolicyRepository()
        repository.load(retailer_recovery_policy_document())
        bus = WsBus(
            deployment.env,
            deployment.network,
            repository=repository,
            registry=deployment.registry,
            member_timeout=5.0,
        )
        vep = bus.create_vep(
            "retailers",
            RETAILER_CONTRACT,
            members=deployment.retailer_addresses,
            selection_strategy="round_robin",
        )
        plan = RequestPlan(
            target=vep.address,
            operation="getCatalog",
            payload_factory=lambda c, i: RETAILER_CONTRACT.operation(
                "getCatalog"
            ).input.build(),
            timeout=60.0,
            think_time_seconds=0.5,
        )
        result = WorkloadRunner(deployment.env, deployment.network).run(
            plan, clients=8, requests_per_client=300
        )
        assert len(result.records) == 2400
        failure_rate = len(result.failures) / len(result.records)
        assert failure_rate < 0.01
        # The simulation drains cleanly (no stuck processes beyond the
        # injectors' infinite cycles, which are timer-driven).
        assert deployment.env.peek() > deployment.env.now

    def test_hundred_concurrent_trading_instances(self):
        from repro.casestudies.stocktrading import (
            build_trading_deployment,
            currency_conversion_policy_document,
        )
        from repro.orchestration.instance import InstanceStatus
        from repro.policy import serialize_policy_document

        deployment = build_trading_deployment(seed=103)
        deployment.masc.load_policies(
            serialize_policy_document(currency_conversion_policy_document())
        )
        instances = [
            deployment.place_order(
                investor_id=f"inv-{index}",
                amount=1000.0 + index,
                country="US" if index % 2 else "AU",
                currency="USD" if index % 2 else "AUD",
            )
            for index in range(100)
        ]
        gate = deployment.env.all_of([instance.process for instance in instances])
        deployment.env.run(gate)
        assert all(i.status is InstanceStatus.COMPLETED for i in instances)
        international = [i for i in instances if i.variables["country"] == "US"]
        assert all("convert-currency" in i.executed_activities for i in international)
        national = [i for i in instances if i.variables["country"] == "AU"]
        assert all("convert-currency" not in i.executed_activities for i in national)
