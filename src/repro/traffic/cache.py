"""Cache-aside response cache for VEP mediation.

Successful response bodies are kept per (service type, operation, request
body) for the policy's TTL, bounded by an LRU of ``max_entries``. The VEP
consults the cache before admission control — a hit costs neither a
shedder slot nor a member invocation — and fills it on the way back
(cache-aside, not write-through: only responses that actually flowed are
stored).

Invalidation is policy-driven: :class:`~repro.traffic.service.TrafficService`
subscribes to the bus's MASC event stream and flushes caches whose
``invalidate_on`` patterns match the event name, so an SLO burn-rate
alert or a domain event like ``catalogChanged`` empties the cache through
the same event fabric that drives every other adaptation.

Returned bodies are shared by reference (the same copy-on-write
discipline as envelope replies); consumers must not mutate reply bodies.
"""

from __future__ import annotations

from collections import OrderedDict
from fnmatch import fnmatchcase
from weakref import WeakKeyDictionary

from repro.policy.actions import ResponseCacheAction
from repro.xmlutils import Element, serialize_xml

__all__ = ["ResponseCache"]


class ResponseCache:
    """TTL + LRU response cache configured by one :class:`ResponseCacheAction`."""

    def __init__(self, config: ResponseCacheAction, clock) -> None:
        self.config = config
        self._clock = clock
        #: key -> (expires_at, body); insertion/access order is LRU order.
        self._entries: OrderedDict[str, tuple[float, Element]] = OrderedDict()
        #: Request-body tree -> serialized signature. Interned payloads
        #: recur across requests, so memoizing by body identity makes the
        #: common key computation a dict hit instead of a serialization.
        self._signatures: WeakKeyDictionary = WeakKeyDictionary()
        self.hits = 0
        self.misses = 0
        self.expired = 0
        self.evicted = 0
        self.flushes = 0
        self.invalidated = 0

    def _signature(self, body: Element | None) -> str:
        if body is None:
            return ""
        signature = self._signatures.get(body)
        if signature is None:
            signature = serialize_xml(body)
            self._signatures[body] = signature
        return signature

    def key_for(self, service_type: str, operation: str, request) -> str:
        return f"{service_type}|{operation}|{self._signature(request.body)}"

    def get(self, key: str) -> Element | None:
        """The cached body for ``key``, or None (counts hit/miss/expiry)."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        expires_at, body = entry
        if self._clock() >= expires_at:
            del self._entries[key]
            self.expired += 1
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return body

    def put(self, key: str, body: Element) -> None:
        self._entries[key] = (self._clock() + self.config.ttl_seconds, body)
        self._entries.move_to_end(key)
        while len(self._entries) > self.config.max_entries:
            self._entries.popitem(last=False)
            self.evicted += 1

    def matches_event(self, event_name: str) -> bool:
        return any(
            fnmatchcase(event_name, pattern) for pattern in self.config.invalidate_on
        )

    def invalidate(self) -> int:
        """Flush every entry; returns how many were dropped."""
        dropped = len(self._entries)
        self._entries.clear()
        self.flushes += 1
        self.invalidated += dropped
        return dropped

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "expired": self.expired,
            "evicted": self.evicted,
            "flushes": self.flushes,
            "invalidated": self.invalidated,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ResponseCache entries={len(self._entries)} hits={self.hits}>"
