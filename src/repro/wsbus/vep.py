"""Virtual End Point (VEP).

"wsBus key architectural abstraction is the concept of a Virtual End Point
(VEP). A VEP allows virtualization by grouping a set of functionally
equivalent services and exposes an abstract WSDL for accessing the
configured services... The VEP acts as a recovery block and various runtime
policies can be associat[ed] with it. ... The VEP takes care of the dynamic
Find, Select, Bind and Invoke on behalf of the BPEL engine."
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass

from repro.observability import NULL_METRICS, NULL_TRACER, correlation_id_for
from repro.observability.trace_context import (
    context_of_span,
    stamp_trace_context,
    trace_context_of,
)
from repro.soap import FaultCode, SoapEnvelope, SoapFault, SoapFaultError
from repro.traffic.idempotency import stamp_idempotency_key
from repro.wsbus.adaptation import AdaptationManager, broadcast_first_response
from repro.wsbus.monitoring import BusMonitoringService, MonitoringPoint
from repro.wsbus.pipeline import MessagePipeline, PipelineContext
from repro.wsbus.selection import SelectionService
from repro.wsdl import ContractViolation, ServiceContract

__all__ = ["VepStats", "VirtualEndpoint"]


@dataclass
class VepStats:
    """Per-VEP counters for experiment reporting."""

    requests: int = 0
    successes: int = 0
    recovered: int = 0
    failures: int = 0
    violations: int = 0
    #: Requests rejected at admission (load shedding / bulkhead saturation).
    shed: int = 0
    #: Requests answered from the traffic tier's response cache.
    cache_hits: int = 0
    #: Requests delayed by queue-based load leveling.
    leveled: int = 0
    #: Requests rejected by the load leveler (queue full / wait too long).
    throttled: int = 0


class VirtualEndpoint:
    """A group of equivalent services behind one abstract endpoint."""

    def __init__(
        self,
        name: str,
        contract: ServiceContract,
        env,
        sender,
        selection: SelectionService,
        monitoring: BusMonitoringService,
        adaptation: AdaptationManager,
        members: list[str] | None = None,
        selection_strategy: str = "round_robin",
        invocation_timeout: float | None = 10.0,
        broadcast: bool = False,
        registry=None,
        pipeline: MessagePipeline | None = None,
        validate_messages: bool = False,
        mediation_overhead=None,
        overhead_rng=None,
        tracer=None,
        metrics=None,
        resilience=None,
        traffic=None,
    ) -> None:
        self.name = name
        self.contract = contract
        self.env = env
        self.sender = sender
        self.selection = selection
        self.monitoring = monitoring
        self.adaptation = adaptation
        from repro.wsbus.selection import STRATEGIES

        if selection_strategy not in STRATEGIES:
            raise ValueError(
                f"unknown selection strategy {selection_strategy!r}; "
                f"expected one of {STRATEGIES}"
            )
        self.members: list[str] = list(members or ())
        self.selection_strategy = selection_strategy
        self.invocation_timeout = invocation_timeout
        #: When True every request is broadcast to all members, first
        #: response wins (the paper's concurrent invocation configuration).
        self.broadcast = broadcast
        self.registry = registry
        self.pipeline = pipeline if pipeline is not None else MessagePipeline()
        self.validate_messages = validate_messages
        if validate_messages:
            from repro.wsbus.inspectors import ContractValidationInspector

            self.pipeline.insert(0, ContractValidationInspector(contract))
        #: Simulated per-message mediation cost (request dispatch, policy
        #: handling, inspector execution): the source of the ~10% latency
        #: overhead the paper measures and attributes to "the high number
        #: of threads created to serve the requests" and "the need to
        #: import, parse, and process policies".
        self.mediation_overhead = mediation_overhead
        self.overhead_rng = overhead_rng
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        #: Optional :class:`~repro.resilience.ResilienceService` providing
        #: admission control (load shedding + per-VEP bulkhead).
        self.resilience = resilience
        #: Optional :class:`~repro.traffic.TrafficService` providing the
        #: shaping tier (response cache, idempotency keys, load leveling).
        self.traffic = traffic
        self.address: str | None = None  # set by the bus on deployment
        self.stats = VepStats()

    def _mediation_delay(self, size_bytes: int):
        """A timeout event for one mediation pass, or None if free."""
        if self.mediation_overhead is None:
            return None
        rng = self.overhead_rng
        return self.env.timeout(self.mediation_overhead.sample(size_bytes, rng))

    # -- membership ---------------------------------------------------------------

    def add_member(self, address: str) -> None:
        if address not in self.members:
            self.members.append(address)

    def remove_member(self, address: str) -> None:
        if address in self.members:
            self.members.remove(address)

    def refresh_members_from_registry(self) -> None:
        """Dynamic Find: refresh membership from the UDDI-style registry."""
        if self.registry is None:
            return
        for record in self.registry.find(self.contract.service_type):
            self.add_member(record.address)

    # -- the message path -------------------------------------------------------------

    def handle(self, request: SoapEnvelope) -> Generator:
        """Network handler: traffic shaping, admission control, mediation.

        The traffic-shaping tier (response cache, idempotency stamping,
        queue-based load leveling) runs first — a cache hit never touches
        admission control at all, and a leveled request waits its turn
        *before* occupying a shedder or bulkhead slot. With no traffic
        policies loaded the tier is inert and the path is unchanged.
        """
        traffic = self.traffic
        if traffic is not None and traffic.active:
            return (yield from self._shaped_handle(request))
        return (yield from self._admitted_handle(request))

    def _shaped_handle(self, request: SoapEnvelope) -> Generator:
        """The mediation path behind the policy-driven traffic tier."""
        traffic = self.traffic
        service_type = self.contract.service_type
        operation = self._resolve_operation(request)
        cache = cache_key = None
        if operation is not None:
            cache = traffic.cache_for(service_type, operation)
            if cache is not None:
                cache_key = cache.key_for(service_type, operation, request)
                cached_body = cache.get(cache_key)
                if cached_body is not None:
                    self.stats.requests += 1
                    self.stats.successes += 1
                    self.stats.cache_hits += 1
                    if self.metrics.enabled:
                        self.metrics.counter("wsbus.traffic.cache.hits").inc()
                    if self.tracer.enabled:
                        span = self.tracer.start_span(
                            "traffic.cache_hit",
                            correlation_id=correlation_id_for(request),
                            attributes={"vep": self.name, "operation": operation},
                        )
                        span.end()
                    return request.reply(cached_body)
                if self.metrics.enabled:
                    self.metrics.counter("wsbus.traffic.cache.misses").inc()
            if traffic.stamps(service_type, operation):
                # Stamp the key onto a header-shallow copy (never mutate
                # the client's own envelope). copy()/retargeted() preserve
                # headers, so every redelivery path downstream — retry,
                # dead-letter replay, broadcast, substitution — carries
                # the same key to the service container's dedupe store.
                stamped = request.copy()
                if stamp_idempotency_key(stamped) is not None:
                    request = stamped
                    if self.metrics.enabled:
                        self.metrics.counter(
                            "wsbus.traffic.idempotency.stamped"
                        ).inc()
        leveler = traffic.leveler_for(self.name, service_type)
        if leveler is not None:
            try:
                wait = leveler.admit()
            except SoapFaultError as error:
                self.stats.throttled += 1
                if self.metrics.enabled:
                    self.metrics.counter("wsbus.traffic.throttled").inc()
                return request.reply_fault(error.fault)
            if wait is not None:
                self.stats.leveled += 1
                if self.metrics.enabled:
                    self.metrics.counter("wsbus.traffic.leveled").inc()
                try:
                    yield wait
                finally:
                    leveler.release()
        reply = yield from self._admitted_handle(request)
        if (
            cache is not None
            and cache_key is not None
            and not reply.is_fault
            and reply.body is not None
        ):
            cache.put(cache_key, reply.body)
        return reply

    def _admitted_handle(self, request: SoapEnvelope) -> Generator:
        """Admission control + the mediation path.

        Under overload the bus sheds this request with a retryable fault
        (or parks it briefly in the VEP bulkhead queue) *before* spending
        any mediation effort on it.
        """
        if self.resilience is None or not self.resilience.active:
            return (yield from self._observed_handle(request))
        try:
            admission = self.resilience.admit_vep_request(
                self.name, self.contract.service_type
            )
        except SoapFaultError as error:
            self.stats.shed += 1
            if self.metrics.enabled:
                self.metrics.counter("wsbus.vep.shed").inc()
            return request.reply_fault(error.fault)
        try:
            # The bulkhead wait lives inside the try so a failed wait
            # event still releases the admission holds.
            if admission.wait is not None:
                yield admission.wait
            return (yield from self._observed_handle(request))
        finally:
            admission.release()

    def _observed_handle(self, request: SoapEnvelope) -> Generator:
        """The mediation path under its observability wrapper.

        When tracing is enabled the whole pass runs under a ``vep.handle``
        span correlated on the request (ProcessInstanceID if the engine is
        calling, message ID otherwise); child spans cover selection,
        pipeline stages, recovery and retries. Disabled: one branch.

        The span joins the request's wire trace context (the
        ``masc:TraceContext`` header) when one is stamped — a request
        mediated by another bus, a dead-letter replay, a gated mediation
        pass — and re-stamps its own context onto a header-shallow copy so
        every downstream copy (retry, replay, broadcast, substitution,
        cross-bus failover) carries this hop in its ancestry.
        """
        if not self.tracer.enabled and not self.metrics.enabled:
            return (yield from self._handle(request, None))
        span = None
        if self.tracer.enabled:
            attributes = {"vep": self.name, "strategy": self.selection_strategy}
            if self.adaptation is not None and self.adaptation.owner_label is not None:
                attributes["bus"] = self.adaptation.owner_label
            span = self.tracer.start_span(
                "vep.handle",
                correlation_id=correlation_id_for(request),
                parent=trace_context_of(request),
                attributes=attributes,
            )
            request = request.copy()
            stamp_trace_context(request, context_of_span(span))
        started = self.env.now
        try:
            reply = yield from self._handle(request, span)
        except BaseException as error:
            if span is not None:
                span.end(status=f"error:{type(error).__name__}")
            raise
        if self.metrics.enabled:
            self.metrics.histogram("wsbus.vep.handle.seconds").observe(
                self.env.now - started
            )
            self.metrics.counter("wsbus.vep.requests").inc()
            if reply.is_fault:
                self.metrics.counter("wsbus.vep.faults").inc()
        if span is not None:
            span.end(status=f"fault:{reply.fault.code.value}" if reply.is_fault else None)
        return reply

    def _handle(self, request: SoapEnvelope, span) -> Generator:
        """The mediation path proper (``span`` is None when tracing is off)."""
        self.stats.requests += 1
        operation = self._resolve_operation(request)
        if operation is None:
            self.stats.failures += 1
            return request.reply_fault(
                SoapFault(
                    FaultCode.CLIENT,
                    f"VEP {self.name!r} cannot map the request to an operation",
                    source=self.name,
                )
            )
        if span is not None:
            span.set_attribute("operation", operation)
        context = PipelineContext(env=self.env, vep=self, operation=operation, span=span)
        point = MonitoringPoint(
            service_type=self.contract.service_type, endpoint=None, operation=operation
        )
        request_cost = self._mediation_delay(request.size_bytes)
        if request_cost is not None:
            yield request_cost

        # Request-side pipeline + monitoring.
        try:
            request = self.pipeline.run_request(request, context)
        except ContractViolation as violation:
            self.stats.violations += 1
            return request.reply_fault(
                SoapFault(FaultCode.CLIENT, str(violation), source=self.name)
            )
        violation_fault = self.monitoring.check_message("request", request, point)
        if violation_fault is not None:
            self.stats.violations += 1
            return request.reply_fault(violation_fault)

        try:
            if self.broadcast:
                response, target = yield from self._invoke_broadcast(request, operation)
            else:
                response, target = yield from self._invoke_with_recovery(
                    request, operation, span
                )
        except SoapFaultError as error:
            self.stats.failures += 1
            self.monitoring.notify_fault(error.fault, request, point)
            return request.reply_fault(error.fault)

        # Response-side monitoring + pipeline.
        context.target = target
        response_point = MonitoringPoint(
            service_type=self.contract.service_type, endpoint=target, operation=operation
        )
        violation_fault = self.monitoring.check_message("response", response, response_point)
        if violation_fault is not None:
            self.stats.violations += 1
            recovered = yield from self._recover_or_fail(
                request, operation, violation_fault, target or "", span
            )
            if isinstance(recovered, SoapFault):
                self.stats.failures += 1
                return request.reply_fault(recovered)
            response, target = recovered
        response = self.pipeline.run_response(response, context)
        response_cost = self._mediation_delay(response.size_bytes)
        if response_cost is not None:
            yield response_cost
        self.stats.successes += 1
        body = response.body if response.body is not None else None
        reply = request.reply(body) if body is not None else request.reply_fault(
            SoapFault(FaultCode.SERVER, "member returned an empty response", source=self.name)
        )
        return reply

    def _invoke_with_recovery(
        self, request: SoapEnvelope, operation: str, span=None
    ) -> Generator:
        """Select, bind, invoke; recover through adaptation policies."""
        target = self.selection.select(
            self.name,
            self.selection_strategy,
            self.members,
            envelope=request,
            context=PipelineContext(env=self.env, vep=self, operation=operation),
        )
        if span is not None:
            span.add_event("member_selected", target=target)
        if target is None:
            raise SoapFaultError(
                SoapFault(
                    FaultCode.SERVICE_UNAVAILABLE,
                    f"VEP {self.name!r} has no registered members",
                    source=self.name,
                )
            )
        outbound = request.copy()
        outbound.addressing = request.addressing.retargeted(target)
        try:
            response = yield from self.sender(
                outbound, operation, target, timeout=self.invocation_timeout
            )
            return response, target
        except SoapFaultError as error:
            point = MonitoringPoint(
                service_type=self.contract.service_type, endpoint=target, operation=operation
            )
            fault = self.monitoring.classify(error.fault, point)
            self.monitoring.notify_fault(fault, request, point)
            result = yield from self._recover_or_fail(
                request, operation, fault, target, span
            )
            if isinstance(result, SoapFault):
                raise SoapFaultError(result) from error
            return result

    def _recover_or_fail(
        self,
        request: SoapEnvelope,
        operation: str,
        fault: SoapFault,
        failed_target: str,
        span=None,
    ) -> Generator:
        """Run the adaptation manager; returns (response, target) or a fault."""
        try:
            response = yield from self.adaptation.recover(
                self, request, operation, fault, failed_target, parent_span=span
            )
        except SoapFaultError as error:
            return error.fault
        self.stats.recovered += 1
        self.metrics.counter("wsbus.vep.recovered").inc()
        final_target = None
        if self.adaptation.outcomes:
            final_target = self.adaptation.outcomes[-1].final_target
        return response, final_target

    def _invoke_broadcast(self, request: SoapEnvelope, operation: str) -> Generator:
        """Concurrent invocation of all members; first response wins."""
        if not self.members:
            raise SoapFaultError(
                SoapFault(
                    FaultCode.SERVICE_UNAVAILABLE,
                    f"VEP {self.name!r} has no registered members",
                    source=self.name,
                )
            )
        targets = self.selection.broadcast_targets(self.members, vep_name=self.name)
        if not targets:
            raise SoapFaultError(
                SoapFault(
                    FaultCode.SERVICE_UNAVAILABLE,
                    f"all members of VEP {self.name!r} are quarantined",
                    source=self.name,
                )
            )
        try:
            response, winner = yield from broadcast_first_response(
                self.env, self.sender, request, operation, targets
            )
        except SoapFaultError:
            # Every member faulted: the message is undeliverable by this
            # recovery block. Park it so operators can replay it once the
            # fleet recovers (addressed to the VEP, so a replay re-runs the
            # whole selection/recovery path).
            from repro.wsbus.retry import DeadLetterEntry

            self.adaptation.dead_letters.add(
                DeadLetterEntry(
                    time=self.env.now,
                    envelope=request,
                    operation=operation,
                    target=self.address or self.name,
                    attempts_made=len(targets),
                    reason=f"broadcast to all {len(targets)} members of "
                    f"VEP {self.name!r} failed",
                )
            )
            raise
        return response, winner

    # -- utilities -----------------------------------------------------------------------

    def _resolve_operation(self, request: SoapEnvelope) -> str | None:
        action = request.addressing.action or ""
        operation = self.contract.operation_for_action(action)
        if operation is not None:
            return operation.name
        if action.startswith("urn:op:"):
            candidate = action.split(":", 2)[2]
            if self.contract.has_operation(candidate):
                return candidate
        if request.body is not None:
            for candidate_op in self.contract.operations:
                if candidate_op.input.element_name == request.body.name.local:
                    return candidate_op.name
        return None

    def abstract_wsdl(self, indent: bool = True) -> str:
        """The abstract WSDL this VEP exposes for its contract.

        "A VEP... exposes an abstract WSDL for accessing the configured
        services" — the document advertises the VEP's own address, hiding
        the concrete members entirely.
        """
        from repro.wsdl.wsdl_xml import contract_to_wsdl

        return contract_to_wsdl(self.contract, endpoint_address=self.address, indent=indent)

    def synthetic_reply(
        self, request: SoapEnvelope, operation: str, reason: str
    ) -> SoapEnvelope:
        """A synthetic success used by skip policies."""
        from repro.xmlutils import Element

        body = Element(f"{operation}Response")
        body.add("skipped", text="true")
        body.add("reason", text=reason)
        return request.reply(body)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<VirtualEndpoint {self.name} members={len(self.members)}>"
