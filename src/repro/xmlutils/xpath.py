"""XPath-lite: the location-path subset used by monitoring policies.

The paper's monitoring policies "use XPath to reference variables defined in
the header or the body" of messages, and wsBus VEPs route messages with
"simple rules expressed as a regular expression or XPath query against the
header or the payload". This module implements the subset those rules need:

- absolute (``/a/b``), relative (``a/b``) and descendant (``//a``) paths
- name tests by local name, prefixed Clark notation (``{uri}local``), ``*``
- ``.`` and ``..`` steps, ``@attr`` attribute selection, ``text()``
- predicates: positional (``[2]``), existence (``[child]``, ``[@attr]``),
  and comparisons (``=``, ``!=``, ``<``, ``<=``, ``>``, ``>=``) between a
  relative path / attribute / ``text()`` and a string or numeric literal
- the functions ``contains()``, ``starts-with()``, ``count()``,
  ``number()`` and ``string()`` inside predicates

Selection results are :class:`~repro.xmlutils.element.Element` nodes or, for
``@attr`` and ``text()`` terminal steps, strings.
"""

from __future__ import annotations

import re
from collections.abc import Sequence
from typing import Any

from repro.xmlutils.element import Element
from repro.xmlutils.qname import QName

__all__ = ["XPath", "XPathError", "xpath_evaluate", "xpath_value"]


class XPathError(Exception):
    """Raised for expressions outside the supported subset."""


_TOKEN_RE = re.compile(
    r"""
    (?P<dslash>//)
  | (?P<slash>/)
  | (?P<lbracket>\[)
  | (?P<rbracket>\])
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<comma>,)
  | (?P<op><=|>=|!=|=|<|>)
  | (?P<number>\d+(?:\.\d+)?)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<at>@)
  | (?P<dotdot>\.\.)
  | (?P<dot>\.)
  | (?P<star>\*)
  | (?P<name>\{[^}]*\}[\w.-]+|[\w.-]+(?::[\w.-]+)?)
  | (?P<ws>\s+)
    """,
    re.VERBOSE,
)


def _tokenize(expression: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    position = 0
    while position < len(expression):
        match = _TOKEN_RE.match(expression, position)
        if match is None:
            raise XPathError(f"cannot tokenize {expression!r} at offset {position}")
        kind = match.lastgroup or ""
        if kind != "ws":
            tokens.append((kind, match.group()))
        position = match.end()
    return tokens


class _Step:
    """One location step: axis + node test + predicates."""

    def __init__(self, axis: str, test: str, predicates: list["_Predicate"]) -> None:
        self.axis = axis  # "child", "descendant", "self", "parent", "attribute", "text"
        self.test = test
        self.predicates = predicates


class _Predicate:
    """A predicate: position index, existence test, or comparison."""

    def __init__(
        self,
        position: int | None = None,
        operand: Any = None,
        op: str | None = None,
        right: Any = None,
    ) -> None:
        self.position = position
        self.operand = operand
        self.op = op
        self.right = right


class _Function:
    def __init__(self, name: str, args: list[Any]) -> None:
        self.name = name
        self.args = args


class _Parser:
    def __init__(self, expression: str) -> None:
        self.expression = expression
        self.tokens = _tokenize(expression)
        self.index = 0

    def _peek(self) -> tuple[str, str] | None:
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def _next(self) -> tuple[str, str]:
        token = self._peek()
        if token is None:
            raise XPathError(f"unexpected end of expression {self.expression!r}")
        self.index += 1
        return token

    def _expect(self, kind: str) -> str:
        token_kind, value = self._next()
        if token_kind != kind:
            raise XPathError(f"expected {kind} but got {value!r} in {self.expression!r}")
        return value

    def parse(self) -> tuple[bool, list[_Step]]:
        absolute = False
        token = self._peek()
        if token and token[0] in ("slash", "dslash"):
            absolute = True
        steps = self._parse_relative(allow_leading_slash=True)
        if self._peek() is not None:
            raise XPathError(f"trailing tokens in {self.expression!r}")
        return absolute, steps

    _STEP_TOKENS = ("name", "star", "dot", "dotdot", "at")

    def _parse_relative(self, allow_leading_slash: bool = False) -> list[_Step]:
        steps: list[_Step] = []
        descendant = False
        token = self._peek()
        if token is not None and token[0] in ("slash", "dslash"):
            if not allow_leading_slash:
                raise XPathError(f"unexpected '/' in {self.expression!r}")
            self._next()
            descendant = token[0] == "dslash"
        while True:
            token = self._peek()
            if token is None or token[0] not in self._STEP_TOKENS:
                if descendant or not steps:
                    raise XPathError(f"expected a step in {self.expression!r}")
                break
            steps.append(self._parse_step(descendant))
            follow = self._peek()
            if follow is None or follow[0] not in ("slash", "dslash"):
                break
            self._next()
            descendant = follow[0] == "dslash"
        return steps

    def _parse_step(self, descendant: bool) -> _Step:
        kind, value = self._next()
        axis = "descendant" if descendant else "child"
        if kind == "dot":
            return _Step("self", "*", [])
        if kind == "dotdot":
            return _Step("parent", "*", [])
        if kind == "at":
            name = self._expect("name")
            return _Step("attribute", name, self._parse_predicates())
        if kind == "star":
            return _Step(axis, "*", self._parse_predicates())
        if kind == "name":
            if value == "text" and self._peek() and self._peek()[0] == "lparen":
                self._next()
                self._expect("rparen")
                return _Step("text", "*", [])
            return _Step(axis, value, self._parse_predicates())
        raise XPathError(f"unexpected token {value!r} in {self.expression!r}")

    def _parse_predicates(self) -> list[_Predicate]:
        predicates: list[_Predicate] = []
        while True:
            token = self._peek()
            if token is None or token[0] != "lbracket":
                return predicates
            self._next()
            predicates.append(self._parse_predicate())
            self._expect("rbracket")

    def _parse_predicate(self) -> _Predicate:
        token = self._peek()
        if token is None:
            raise XPathError(f"empty predicate in {self.expression!r}")
        if token[0] == "number":
            nxt = self.tokens[self.index + 1] if self.index + 1 < len(self.tokens) else None
            if nxt is not None and nxt[0] == "rbracket":
                self._next()
                return _Predicate(position=int(float(token[1])))
        operand = self._parse_operand()
        token = self._peek()
        if token is not None and token[0] == "op":
            op = self._next()[1]
            right = self._parse_operand()
            return _Predicate(operand=operand, op=op, right=right)
        return _Predicate(operand=operand)

    def _parse_operand(self) -> Any:
        token = self._peek()
        if token is None:
            raise XPathError(f"missing operand in {self.expression!r}")
        kind, value = token
        if kind == "string":
            self._next()
            return value[1:-1]
        if kind == "number":
            self._next()
            return float(value)
        if kind == "name":
            nxt = self.tokens[self.index + 1] if self.index + 1 < len(self.tokens) else None
            if nxt is not None and nxt[0] == "lparen" and value != "text":
                return self._parse_function()
        return self._parse_relative()

    _FUNCTIONS = ("contains", "starts-with", "count", "number", "string")

    def _parse_function(self) -> _Function:
        name = self._expect("name")
        if name not in self._FUNCTIONS:
            raise XPathError(
                f"unsupported function {name!r} in {self.expression!r}; "
                f"supported: {', '.join(self._FUNCTIONS)}"
            )
        self._expect("lparen")
        args: list[Any] = []
        if self._peek() and self._peek()[0] != "rparen":
            args.append(self._parse_operand())
            while self._peek() and self._peek()[0] == "comma":
                self._next()
                args.append(self._parse_operand())
        self._expect("rparen")
        return _Function(name, args)


def _name_matches(element: Element, test: str) -> bool:
    if test == "*":
        return True
    if test.startswith("{"):
        return element.name == QName.parse(test)
    if ":" in test:
        test = test.split(":", 1)[1]
    return element.name.local == test


class XPath:
    """A compiled XPath-lite expression."""

    def __init__(self, expression: str) -> None:
        self.expression = expression
        self.absolute, self.steps = _Parser(expression).parse()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"XPath({self.expression!r})"

    # -- evaluation ----------------------------------------------------------

    def select(self, context: Element) -> list[Any]:
        """Nodes (or attribute/text strings) matching from ``context``."""
        if self.absolute:
            root = context
            while root.parent is not None:
                root = root.parent
            # An absolute path's first step tests the document element itself.
            nodes: list[Any] = [_Root(root)]
        else:
            nodes = [context]
        return _apply_steps(nodes, self.steps)

    def value(self, context: Element) -> str | None:
        """String value of the first match, or ``None`` if nothing matches."""
        selected = self.select(context)
        if not selected:
            return None
        first = selected[0]
        if isinstance(first, Element):
            return first.string_value
        return str(first)

    def matches(self, context: Element) -> bool:
        """True if the expression selects anything from ``context``."""
        return bool(self.select(context))


class _Root:
    """Synthetic parent of the document element, for absolute paths."""

    def __init__(self, document_element: Element) -> None:
        self.document_element = document_element


def _children_of(node: Any) -> Sequence[Element]:
    if isinstance(node, _Root):
        return (node.document_element,)
    if isinstance(node, Element):
        return node.children
    return ()


def _descendants_of(node: Any) -> list[Element]:
    result: list[Element] = []
    for child in _children_of(node):
        result.extend(child.iter())
    return result


def _apply_steps(nodes: list[Any], steps: list[_Step]) -> list[Any]:
    current = nodes
    for step in steps:
        matched: list[Any] = []
        for node in current:
            matched.extend(_apply_step(node, step))
        # De-duplicate while preserving document order.
        seen: set[int] = set()
        unique: list[Any] = []
        for node in matched:
            key = id(node)
            if key not in seen:
                seen.add(key)
                unique.append(node)
        current = unique
    return current


def _apply_step(node: Any, step: _Step) -> list[Any]:
    if step.axis == "self":
        return [node]
    if step.axis == "parent":
        if isinstance(node, Element) and node.parent is not None:
            return [node.parent]
        return []
    if step.axis == "attribute":
        if isinstance(node, Element) and step.test in node.attributes:
            return [node.attributes[step.test]]
        return []
    if step.axis == "text":
        if isinstance(node, Element) and node.text is not None:
            return [node.text]
        return []
    if step.axis == "descendant":
        candidates: Sequence[Element] = _descendants_of(node)
    else:
        candidates = _children_of(node)
    matched = [el for el in candidates if _name_matches(el, step.test)]
    for predicate in step.predicates:
        matched = [
            el for index, el in enumerate(matched, start=1) if _predicate_holds(el, index, predicate)
        ]
    return matched


def _predicate_holds(element: Element, position: int, predicate: _Predicate) -> bool:
    if predicate.position is not None:
        return position == predicate.position
    left = _operand_value(element, predicate.operand)
    if predicate.op is None:
        if isinstance(left, bool):
            return left
        if isinstance(left, (list, float, int)):
            return bool(left)
        return left is not None and left != ""
    right = _operand_value(element, predicate.right)
    return _compare(left, predicate.op, right)


def _operand_value(element: Element, operand: Any) -> Any:
    if isinstance(operand, (str, float, int)):
        return operand
    if isinstance(operand, _Function):
        return _call_function(element, operand)
    if isinstance(operand, list):  # a relative path
        selected = _apply_steps([element], operand)
        if not selected:
            return None
        first = selected[0]
        if isinstance(first, Element):
            return first.string_value
        return first
    raise XPathError(f"unsupported operand {operand!r}")


def _call_function(element: Element, function: _Function) -> Any:
    args = [_operand_value(element, arg) for arg in function.args]
    if function.name == "contains":
        return args[1] is not None and args[0] is not None and str(args[1]) in str(args[0])
    if function.name == "starts-with":
        return args[0] is not None and str(args[0]).startswith(str(args[1]))
    if function.name == "count":
        selected = _apply_steps([element], function.args[0])
        return float(len(selected))
    if function.name == "number":
        try:
            return float(args[0])
        except (TypeError, ValueError):
            return float("nan")
    if function.name == "string":
        return "" if args[0] is None else str(args[0])
    raise XPathError(f"unsupported function {function.name!r}")


def _compare(left: Any, op: str, right: Any) -> bool:
    if left is None or right is None:
        # XPath: comparisons against an empty node-set are false (even '!=').
        return False
    if isinstance(left, bool) or isinstance(right, bool):
        left, right = bool(left), bool(right)
    elif isinstance(left, (int, float)) or isinstance(right, (int, float)):
        try:
            left, right = float(left), float(right)
        except (TypeError, ValueError):
            return False
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if not isinstance(left, (int, float)):
        try:
            left, right = float(left), float(right)
        except (TypeError, ValueError):
            return False
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise XPathError(f"unsupported operator {op!r}")


def xpath_evaluate(element: Element, expression: str) -> list[Any]:
    """One-shot select: compile and evaluate ``expression`` at ``element``."""
    return XPath(expression).select(element)


def xpath_value(element: Element, expression: str) -> str | None:
    """One-shot string value of the first match."""
    return XPath(expression).value(element)
