"""Load shedding at bus admission.

Graceful degradation under overload: once the bus is mediating more than
``max_inflight`` requests at once (or its retry queue has grown past
``max_retry_queue_depth`` — a deep retry backlog means the fleet is
already drowning), new requests are rejected *immediately* with a
retryable ``ServiceUnavailable`` fault instead of being queued into a
collapse. Shedding a request early costs the client one cheap round
trip; accepting it would cost everyone a slot in a system past its knee.
"""

from __future__ import annotations

from repro.policy.actions import LoadSheddingAction
from repro.soap import FaultCode, SoapFault

__all__ = ["LoadShedder"]


class LoadShedder:
    """Bus-wide admission control driven by a :class:`LoadSheddingAction`."""

    def __init__(self, config: LoadSheddingAction, retry_queue=None) -> None:
        self.config = config
        #: The bus retry queue, consulted for its depth (optional).
        self.retry_queue = retry_queue
        self.in_flight = 0
        self.admitted_total = 0
        self.shed_total = 0
        #: Releases that arrived without a matching admission. Always a
        #: bug upstream; counted (and floored) so the gate keeps its real
        #: capacity instead of silently admitting extra traffic.
        self.unbalanced_releases = 0

    def try_admit(self) -> SoapFault | None:
        """Admit one mediation (returns None) or the rejection fault."""
        reason = None
        if self.in_flight >= self.config.max_inflight:
            reason = f"{self.in_flight} mediations in flight"
        elif (
            self.config.max_retry_queue_depth is not None
            and self.retry_queue is not None
            and self.retry_queue.depth > self.config.max_retry_queue_depth
        ):
            reason = f"retry queue depth {self.retry_queue.depth}"
        if reason is not None:
            self.shed_total += 1
            return SoapFault(
                FaultCode.SERVICE_UNAVAILABLE,
                f"wsbus shedding load ({reason}); retry later",
                source="wsbus-resilience",
            )
        self.in_flight += 1
        self.admitted_total += 1
        return None

    def release(self) -> None:
        if self.in_flight <= 0:
            self.unbalanced_releases += 1
            self.in_flight = 0
            return
        self.in_flight -= 1

    def stats(self) -> dict[str, int]:
        return {
            "in_flight": self.in_flight,
            "admitted": self.admitted_total,
            "shed": self.shed_total,
            "unbalanced_releases": self.unbalanced_releases,
        }
