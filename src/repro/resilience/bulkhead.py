"""Bulkheads: bounded concurrency partitions.

A bulkhead caps the number of simultaneously in-flight requests for one
partition (a member endpoint, or a whole VEP) so a single slow service
cannot absorb every mediation thread the bus has — the failure stays in
its compartment. Requests beyond the cap wait in a bounded FIFO queue;
beyond *that* they are rejected immediately with a retryable
``ServiceUnavailable`` fault.
"""

from __future__ import annotations

from collections import deque

from repro.soap import FaultCode, SoapFault, SoapFaultError

__all__ = ["Bulkhead"]


class Bulkhead:
    """A concurrency cap with a bounded wait queue for one partition.

    Usage inside a simulation process::

        waiter = bulkhead.try_acquire()   # may raise SoapFaultError
        if waiter is not None:
            yield waiter                  # queued: wait for a slot
        try:
            ...protected work...
        finally:
            bulkhead.release()

    ``release`` hands the slot directly to the oldest waiter, so the
    in-flight count never dips below the cap while a queue exists.
    """

    def __init__(self, key: str, env, max_concurrent: int, max_queue: int) -> None:
        self.key = key
        self.env = env
        self.max_concurrent = max_concurrent
        self.max_queue = max_queue
        self.in_flight = 0
        self._waiters: deque = deque()
        self.rejected = 0
        self.queued_total = 0
        self.admitted_total = 0

    @property
    def queue_depth(self) -> int:
        return len(self._waiters)

    def try_acquire(self):
        """Claim a slot: None when admitted now, an Event to wait on when
        queued; raises :class:`~repro.soap.SoapFaultError` when saturated."""
        if self.in_flight < self.max_concurrent:
            self.in_flight += 1
            self.admitted_total += 1
            return None
        if len(self._waiters) >= self.max_queue:
            self.rejected += 1
            raise SoapFaultError(
                SoapFault(
                    FaultCode.SERVICE_UNAVAILABLE,
                    f"bulkhead {self.key!r} at capacity "
                    f"({self.max_concurrent} in flight, {self.max_queue} queued); retry later",
                    source="wsbus-resilience",
                )
            )
        waiter = self.env.event()
        self._waiters.append(waiter)
        self.queued_total += 1
        self.admitted_total += 1
        return waiter

    def release(self) -> None:
        """Free a slot; the oldest waiter (if any) inherits it."""
        if self._waiters:
            self._waiters.popleft().succeed()
            return
        self.in_flight -= 1

    def stats(self) -> dict[str, int]:
        return {
            "in_flight": self.in_flight,
            "queue_depth": self.queue_depth,
            "admitted": self.admitted_total,
            "queued": self.queued_total,
            "rejected": self.rejected,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Bulkhead {self.key} {self.in_flight}/{self.max_concurrent}"
            f" +{self.queue_depth}q>"
        )
