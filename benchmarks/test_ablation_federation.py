"""Ablation: one bus vs a four-shard federated fleet, same workload.

Both arms run the identical partitioned Retailer storm — six partition
VEPs, each fronting all four Retailers with ``best_response_time``
selection, driven by four clients per partition. Mediation capacity is
bounded *per bus* (the paper's wsBus is a single mediation host), so the
single-bus arm funnels all six partitions through one bus's slots while
the fleet arm spreads them across four buses via consistent hashing.
Gossip anti-entropy keeps QoS-driven selection converging on fleet-wide
observations even though each bus only mediates its own partitions, and
the lease-based leader election keeps exactly one Adaptation Manager in
charge of fleet-wide reactions.

RTT statistics cover *all* requests, failures included. The run is
deterministic: the same seed produces byte-identical results whether the
arms run inline or across worker processes.
"""

from __future__ import annotations

import json
from dataclasses import asdict

from repro.experiments import fleet_cells, run_cells
from repro.metrics import Table

FLEET_SEED = 23
SHARDS = 4


def sweep_fleet(jobs: int):
    cells = fleet_cells(
        seed=FLEET_SEED,
        shards=SHARDS,
        partitions=6,
        clients_per_partition=4,
        requests=30,
    )
    results = run_cells(cells, jobs=jobs)
    return {result.shards: result for result in results.values()}


def _fingerprint(arms) -> str:
    return json.dumps(
        {shards: asdict(result) for shards, result in sorted(arms.items())},
        sort_keys=True,
        default=str,
    )


def test_federation_ablation(benchmark):
    arms = benchmark.pedantic(sweep_fleet, args=(1,), rounds=1, iterations=1)
    single, fleet = arms[1], arms[SHARDS]

    table = Table(
        [
            "Arm",
            "Delivered",
            "Reliability",
            "Throughput (req/s)",
            "p50 RTT (s)",
            "p99 RTT (s)",
            "Gossip merges",
            "Leader",
        ],
        title="Ablation — partitioned storm: one bus vs federated fleet",
    )
    for result in (single, fleet):
        table.add_row(
            [
                f"{result.shards} bus{'es' if result.shards > 1 else ''}",
                f"{result.delivered}/{result.total_requests}",
                f"{result.reliability:.4f}",
                f"{result.throughput:.1f}",
                f"{result.rtt_stats['p50']:.4f}",
                f"{result.p99_rtt:.4f}",
                result.gossip_records,
                f"{result.leader} (epoch {result.epoch})",
            ]
        )
    print()
    print(table.render())

    # The acceptance bar: sharding the mediation capacity must buy
    # sustained throughput without giving back tail latency.
    assert fleet.throughput > single.throughput
    assert fleet.p99_rtt <= single.p99_rtt
    assert fleet.reliability >= single.reliability

    # The win comes from the federation plane, visibly: partitions spread
    # over multiple buses, gossip carrying QoS evidence between them, and
    # exactly one elected leader per arm.
    assert len(set(fleet.placement.values())) > 1
    assert set(single.placement.values()) == {"bus-0"}
    assert fleet.gossip_records > 0
    assert fleet.leader == "bus-0" and fleet.leader_changes == 1
    assert single.leader == "bus-0" and single.leader_changes == 1

    # Deterministic across the process pool: running the same cells on
    # worker processes reproduces the inline results byte-for-byte.
    assert _fingerprint(arms) == _fingerprint(sweep_fleet(jobs=2))
