"""Policy repository: storage, lookup, subject states, business ledger.

"Monitoring and adaptation policy assertions are stored in a policy
repository, which is a collection of instances of policy classes." The
repository also owns the two pieces of shared adaptation state the policy
model references:

- **subject states** ("a state in which the adapted system should be before
  the adaptation... a state in which the system will be after");
- the **business-value ledger** accumulating the monetary deltas of applied
  adaptations.

Reloading a document with the same name replaces it atomically — the
paper's hot-reload property: "When a WS-Policy4MASC document changes, these
changes are automatically enforced the next time adaptation is needed with
no need to restart any software component."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.policy.model import (
    AdaptationPolicy,
    BusinessValue,
    GoalPolicy,
    MonitoringPolicy,
    PolicyDocument,
)
from repro.policy.xml import parse_policy_document

__all__ = ["BusinessLedgerEntry", "PolicyRepository"]

DEFAULT_STATE = "normal"


@dataclass(frozen=True)
class BusinessLedgerEntry:
    """One accounted adaptation."""

    time: float
    policy_name: str
    value: BusinessValue
    subject: str = ""


class PolicyRepository:
    """In-memory store of policy class instances with prioritized lookup."""

    def __init__(self) -> None:
        self._documents: dict[str, PolicyDocument] = {}
        self._states: dict[str, str] = {}
        self.ledger: list[BusinessLedgerEntry] = []

    # -- loading -----------------------------------------------------------------

    def load(self, document: PolicyDocument) -> PolicyDocument:
        """Add or hot-replace a document (keyed by document name)."""
        self._documents[document.name] = document
        return document

    def load_xml(self, text: str) -> PolicyDocument:
        """Parse and load a WS-Policy4MASC XML document."""
        return self.load(parse_policy_document(text))

    def unload(self, document_name: str) -> None:
        self._documents.pop(document_name, None)

    @property
    def documents(self) -> list[PolicyDocument]:
        return list(self._documents.values())

    # -- lookup ------------------------------------------------------------------

    def monitoring_policies(self) -> list[MonitoringPolicy]:
        policies = [
            policy
            for document in self._documents.values()
            for policy in document.monitoring_policies
        ]
        return sorted(policies, key=lambda p: (p.priority, p.name))

    def adaptation_policies(self) -> list[AdaptationPolicy]:
        policies = [
            policy
            for document in self._documents.values()
            for policy in document.adaptation_policies
        ]
        return sorted(policies, key=lambda p: (p.priority, p.name))

    def monitoring_policies_for(self, event: str, **subject) -> list[MonitoringPolicy]:
        """Monitoring policies triggered by ``event`` in the given scope,
        in priority order (lower priority number runs first)."""
        return [
            policy
            for policy in self.monitoring_policies()
            if policy.triggered_by(event) and policy.scope.matches(**subject)
        ]

    def adaptation_policies_for(self, event: str, **subject) -> list[AdaptationPolicy]:
        """Adaptation policies triggered by ``event`` in the given scope,
        in priority order."""
        return [
            policy
            for policy in self.adaptation_policies()
            if policy.triggered_by(event) and policy.scope.matches(**subject)
        ]

    def goal_policies(self) -> list[GoalPolicy]:
        policies = [
            policy
            for document in self._documents.values()
            for policy in document.goal_policies
        ]
        return sorted(policies, key=lambda p: (p.priority, p.name))

    def goal_policy_for(self, **subject) -> GoalPolicy | None:
        """The highest-priority goal policy whose scope covers the subject."""
        for policy in self.goal_policies():
            if policy.scope.matches(**subject):
                return policy
        return None

    def find_policy(self, name: str) -> MonitoringPolicy | AdaptationPolicy | GoalPolicy | None:
        for document in self._documents.values():
            for policy in document.monitoring_policies:
                if policy.name == name:
                    return policy
            for policy in document.adaptation_policies:
                if policy.name == name:
                    return policy
            for policy in document.goal_policies:
                if policy.name == name:
                    return policy
        return None

    # -- subject states -------------------------------------------------------------

    def state_of(self, subject_key: str) -> str:
        return self._states.get(subject_key, DEFAULT_STATE)

    def set_state(self, subject_key: str, state: str) -> None:
        self._states[subject_key] = state

    def check_state(self, policy: AdaptationPolicy, subject_key: str) -> bool:
        """True if the subject is in the policy's required pre-state."""
        if policy.state_before is None:
            return True
        return self.state_of(subject_key) == policy.state_before

    def transition(self, policy: AdaptationPolicy, subject_key: str) -> None:
        """Apply the policy's post-state, if it declares one."""
        if policy.state_after is not None:
            self._states[subject_key] = policy.state_after

    # -- business ledger -------------------------------------------------------------

    def record_business_value(
        self, time: float, policy: AdaptationPolicy, subject: str = ""
    ) -> None:
        if policy.business_value is not None:
            self.ledger.append(
                BusinessLedgerEntry(time, policy.name, policy.business_value, subject)
            )

    def business_totals(self) -> dict[str, float]:
        """Accumulated business value per currency."""
        totals: dict[str, float] = {}
        for entry in self.ledger:
            totals[entry.value.currency] = (
                totals.get(entry.value.currency, 0.0) + entry.value.amount
            )
        return totals
