"""Process-level corrective adaptation (the paper's ongoing work, built).

Policies triggered by ``process-fault.<Code>`` events let MASC correct a
fault *at the orchestration layer*: retry the failed activity, skip it, or
replace it with a variation activity — all without any Scope/fault-handler
constructs in the process definition.
"""

import pytest

from conftest import ECHO_CONTRACT, EchoService
from repro.core import MASC
from repro.orchestration import (
    Invoke,
    ProcessDefinition,
    ProcessFault,
    Reply,
    Sequence,
)
from repro.orchestration.instance import InstanceStatus
from repro.policy import (
    AdaptationPolicy,
    BusinessValue,
    InvokeSpec,
    PolicyDocument,
    PolicyScope,
    ReplaceActivityAction,
    RetryAction,
    SkipAction,
    serialize_policy_document,
)
from repro.services import SimulatedService
from repro.soap import FaultCode, SoapFault, SoapFaultError


class FlakyService(SimulatedService):
    """Fails the first N calls, then succeeds."""

    contract = ECHO_CONTRACT

    def __init__(self, *args, fail_times: int = 2, **kwargs):
        super().__init__(*args, **kwargs)
        self.fail_times = fail_times
        self.calls = 0

    def op_echo(self, payload, ctx):
        self.calls += 1
        yield ctx.work()
        if self.calls <= self.fail_times:
            raise SoapFaultError(
                SoapFault(FaultCode.SERVICE_FAILURE, f"flaky failure {self.calls}")
            )
        return ECHO_CONTRACT.operation("echo").output.build(text="recovered")


@pytest.fixture
def masc():
    stack = MASC(seed=13)
    stack.deploy(EchoService(stack.env, "backup", "http://svc/backup"))
    return stack


def definition(to="http://svc/flaky"):
    return ProcessDefinition(
        "correctable",
        Sequence(
            "main",
            [
                Invoke(
                    "fragile-call",
                    operation="echo",
                    to=to,
                    inputs={"text": "hello"},
                    extract={"echoed": "text"},
                    timeout_seconds=30.0,
                ),
                Reply("r", variable="echoed"),
            ],
        ),
    )


def load(masc, *policies, name="correction"):
    document = PolicyDocument(name)
    document.adaptation_policies.extend(policies)
    masc.load_policies(serialize_policy_document(document))


class TestProcessLevelRetry:
    def test_retry_heals_transient_fault(self, masc):
        flaky = FlakyService(masc.env, "flaky", "http://svc/flaky", fail_times=2)
        masc.deploy(flaky)
        load(
            masc,
            AdaptationPolicy(
                name="retry-activity",
                triggers=("process-fault.ServiceFailure",),
                scope=PolicyScope(process="correctable"),
                actions=(RetryAction(max_retries=3, delay_seconds=1.0),),
            ),
        )
        instance = masc.engine.start(definition())
        assert masc.engine.run_to_completion(instance) == "recovered"
        assert flaky.calls == 3
        retried = masc.tracking.events_for(instance.id, "activity_retried")
        assert len(retried) == 2
        assert masc.tracking.events_for(instance.id, "activity_faulted") == []

    def test_retry_budget_exhaustion_propagates(self, masc):
        flaky = FlakyService(masc.env, "flaky", "http://svc/flaky", fail_times=99)
        masc.deploy(flaky)
        load(
            masc,
            AdaptationPolicy(
                name="retry-activity",
                triggers=("process-fault.ServiceFailure",),
                actions=(RetryAction(max_retries=2, delay_seconds=0.5),),
            ),
        )
        instance = masc.engine.start(definition())
        with pytest.raises(ProcessFault):
            masc.engine.run_to_completion(instance)
        assert instance.status is InstanceStatus.FAULTED
        assert flaky.calls == 3  # 1 original + 2 retries

    def test_retry_delay_pattern_applied(self, masc):
        flaky = FlakyService(masc.env, "flaky", "http://svc/flaky", fail_times=2)
        masc.deploy(flaky)
        load(
            masc,
            AdaptationPolicy(
                name="retry-activity",
                triggers=("process-fault.*",),
                actions=(RetryAction(max_retries=3, delay_seconds=5.0),),
            ),
        )
        instance = masc.engine.start(definition())
        masc.engine.run_to_completion(instance)
        assert masc.env.now >= 10.0  # two retry delays of 5 s


class TestProcessLevelSkip:
    def test_skip_treats_activity_as_completed(self, masc):
        masc.deploy(FlakyService(masc.env, "flaky", "http://svc/flaky", fail_times=99))
        load(
            masc,
            AdaptationPolicy(
                name="skip-activity",
                triggers=("process-fault.ServiceFailure",),
                scope=PolicyScope(activity="fragile-call"),
                actions=(SkipAction(reason="not critical"),),
            ),
        )
        instance = masc.engine.start(definition())
        masc.engine.run_to_completion(instance)
        assert instance.status is InstanceStatus.COMPLETED
        assert instance.result is None  # extraction never happened
        assert masc.tracking.events_for(instance.id, "activity_skipped")


class TestProcessLevelReplace:
    def test_failed_activity_replaced_with_backup(self, masc):
        masc.deploy(FlakyService(masc.env, "flaky", "http://svc/flaky", fail_times=99))
        load(
            masc,
            AdaptationPolicy(
                name="replace-with-backup",
                triggers=("process-fault.ServiceFailure",),
                actions=(
                    ReplaceActivityAction(
                        target="fragile-call",
                        invokes=(
                            InvokeSpec(
                                name="backup-call",
                                operation="echo",
                                address="http://svc/backup",
                                inputs={"text": "from-backup"},
                                outputs={"echoed": "text"},
                            ),
                        ),
                    ),
                ),
                business_value=BusinessValue(-2.0, "AUD", "backup provider fee"),
            ),
        )
        instance = masc.engine.start(definition())
        assert masc.engine.run_to_completion(instance) == "from-backup@backup"
        assert instance.status is InstanceStatus.COMPLETED
        assert masc.tracking.events_for(instance.id, "activity_replaced")
        assert masc.repository.business_totals() == {"AUD": -2.0}

    def test_replace_only_targets_named_activity(self, masc):
        masc.deploy(FlakyService(masc.env, "flaky", "http://svc/flaky", fail_times=99))
        load(
            masc,
            AdaptationPolicy(
                name="replace-other",
                triggers=("process-fault.*",),
                actions=(
                    ReplaceActivityAction(
                        target="some-other-activity",
                        invokes=(
                            InvokeSpec(
                                name="never", operation="echo", address="http://svc/backup"
                            ),
                        ),
                    ),
                ),
            ),
        )
        instance = masc.engine.start(definition())
        with pytest.raises(ProcessFault):
            masc.engine.run_to_completion(instance)


class TestOrderingAndGuards:
    def test_retry_then_replace_composition(self, masc):
        """One policy: bounded retry, then fail over to the backup."""
        flaky = FlakyService(masc.env, "flaky", "http://svc/flaky", fail_times=99)
        masc.deploy(flaky)
        load(
            masc,
            AdaptationPolicy(
                name="retry-then-replace",
                triggers=("process-fault.ServiceFailure",),
                actions=(
                    RetryAction(max_retries=2, delay_seconds=0.5),
                    ReplaceActivityAction(
                        target="fragile-call",
                        invokes=(
                            InvokeSpec(
                                name="backup-call",
                                operation="echo",
                                address="http://svc/backup",
                                inputs={"text": "fallback"},
                                outputs={"echoed": "text"},
                            ),
                        ),
                    ),
                ),
            ),
        )
        instance = masc.engine.start(definition())
        assert masc.engine.run_to_completion(instance) == "fallback@backup"
        assert flaky.calls == 3  # original + 2 retries, then replaced

    def test_no_policy_means_normal_propagation(self, masc):
        masc.deploy(FlakyService(masc.env, "flaky", "http://svc/flaky", fail_times=99))
        instance = masc.engine.start(definition())
        with pytest.raises(ProcessFault):
            masc.engine.run_to_completion(instance)

    def test_condition_can_inspect_variables_and_attempts(self, masc):
        masc.deploy(FlakyService(masc.env, "flaky", "http://svc/flaky", fail_times=99))
        load(
            masc,
            AdaptationPolicy(
                name="skip-only-for-vips",
                triggers=("process-fault.*",),
                condition="customer_tier == 'gold'",
                actions=(SkipAction(),),
            ),
        )
        gold = masc.engine.start(
            definition(), variables={"customer_tier": "gold"}
        )
        masc.engine.run_to_completion(gold)
        assert gold.status is InstanceStatus.COMPLETED
        plain = masc.engine.start(
            definition(), variables={"customer_tier": "basic"}
        )
        with pytest.raises(ProcessFault):
            masc.engine.run_to_completion(plain)
