"""Ablation: traffic shaping vs shed-only under a flash crowd.

Both arms run the identical overload — 32 concurrent ``getCatalog``
clients hammering a VEP over four Retailers that were all slowed to
~250 ms of processing, far past the fleet's knee. Both arms load the
same unscoped load-shedding gate (max 16 in-flight mediations); the
traffic arm additionally loads the SCM traffic policy document —
response cache on ``getCatalog``, queue-based load leveling with a
token bucket at the VEP, and idempotency keys.

The shed-only arm answers overload the blunt way: reject everything
past the gate with ``ServiceUnavailable``. That holds the fleet up but
torches the error budget. The shaped arm absorbs the same burst by
serving repeats from cache and smoothing the cold misses through the
leveler's bounded queue — same seed, same arrival pattern, near-zero
failures.

RTT statistics cover *all* requests, failures included.
"""

from __future__ import annotations

from conftest import run_overload_storm
from repro.metrics import Table

OVERLOAD_SEED = 11


def sweep_overload():
    return {
        "shed": run_overload_storm(seed=OVERLOAD_SEED, traffic=False),
        "traffic": run_overload_storm(seed=OVERLOAD_SEED, traffic=True),
    }


def test_traffic_ablation(benchmark):
    results = benchmark.pedantic(sweep_overload, rounds=1, iterations=1)
    shed, shaped = results["shed"], results["traffic"]

    table = Table(
        [
            "Arm",
            "Delivered",
            "Reliability",
            "p99 RTT (s)",
            "Budget burn",
            "Shed",
            "Cache hits",
            "Leveled",
        ],
        title="Ablation — flash crowd: shed-only vs cache + load leveling",
    )
    for result in (shed, shaped):
        table.add_row(
            [
                result.mode,
                f"{result.delivered}/{result.total_requests}",
                f"{result.reliability:.4f}",
                f"{result.p99_rtt:.4f}",
                f"{result.error_budget_burn:.1f}x",
                result.shed,
                result.cache_hits,
                result.leveled,
            ]
        )
    print()
    print(table.render())

    # The acceptance bar: the shaped arm holds p99 AND the error budget
    # where shed-only burns it — same seed, same flash crowd.
    assert shaped.p99_rtt < shed.p99_rtt
    assert shaped.error_budget_burn < shed.error_budget_burn
    assert shed.error_budget_burn > 1.0, "shed-only must blow the 99% budget"
    assert shaped.error_budget_burn <= 1.0, "shaping must hold the 99% budget"

    # The win comes from the shaping tier, visibly: repeats served from
    # cache, cold misses smoothed by the leveler, and the shedding gate
    # barely touched.
    assert shaped.cache_hits > 0
    assert shaped.leveled > 0
    assert shaped.shed < shed.shed

    # Idempotency keys were stamped and recorded at the service container.
    assert shaped.idempotency["recorded"] > 0

    # The shed arm never touches the traffic tier: no traffic counters,
    # no idempotency activity, no traffic summary — the pre-traffic
    # mediation path byte-for-byte.
    assert shed.traffic is None
    assert not any(name.startswith("wsbus.traffic") for name in shed.metrics["counters"])
    assert shed.idempotency["recorded"] == 0
    assert shed.idempotency["entries"] == 0


def test_overload_storm_is_deterministic(benchmark):
    """Same seed → identical outcomes for the shaped arm, run twice."""

    def run_twice():
        return (
            run_overload_storm(seed=OVERLOAD_SEED, traffic=True),
            run_overload_storm(seed=OVERLOAD_SEED, traffic=True),
        )

    first, second = benchmark.pedantic(run_twice, rounds=1, iterations=1)
    assert first.delivered == second.delivered
    assert first.rtt_stats == second.rtt_stats
    assert first.cache_hits == second.cache_hits
    assert first.leveled == second.leveled
    assert first.idempotency == second.idempotency
    assert first.metrics["counters"] == second.metrics["counters"]
