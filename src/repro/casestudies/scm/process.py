"""The SCM composition as an orchestrated process (Figure 4).

A client-side composition of the SCM use case: fetch the catalog, submit
the order, and read back the tracked events — the flow the WS-I sample
application drives through its Web client. Running it on the workflow
engine exercises the full stack: orchestration → (optionally wsBus) →
services.
"""

from __future__ import annotations

from repro.orchestration import Invoke, ProcessDefinition, Reply, Sequence

__all__ = ["build_scm_process"]


def build_scm_process(
    retailer_address: str,
    logging_address: str,
    order_items: str = "TVx1,DVDx2",
    customer_id: str = "customer-1",
    name: str = "scm-purchase",
) -> ProcessDefinition:
    """The purchase composition against a concrete (or VEP) retailer."""
    root = Sequence(
        "scm-main",
        [
            Invoke(
                "get-catalog",
                operation="getCatalog",
                to=retailer_address,
                inputs={},
                output_variable="catalog_response",
                extract={"catalog": "catalog", "item_count": "itemCount"},
                timeout_seconds=15.0,
            ),
            Invoke(
                "submit-order",
                operation="submitOrder",
                to=retailer_address,
                inputs={
                    "orderId": "$order_id",
                    "items": "$order_items",
                    "customerId": "$customer_id",
                },
                output_variable="order_response",
                extract={"order_status": "status", "shipped_from": "shippedFrom"},
                timeout_seconds=20.0,
            ),
            Invoke(
                "track-order",
                operation="getEvents",
                to=logging_address,
                inputs={},
                output_variable="events_response",
                extract={"event_count": "count"},
                timeout_seconds=10.0,
            ),
            Reply("order-result", variable="order_status"),
        ],
    )
    return ProcessDefinition(
        name,
        root,
        initial_variables={
            "order_id": "order-0001",
            "order_items": order_items,
            "customer_id": customer_id,
        },
    )
