"""Shared fixtures: a minimal echo/calc service world."""

from __future__ import annotations

import pytest

from repro.services import ProcessingModel, ServiceContainer, SimulatedService
from repro.simulation import Environment, RandomSource
from repro.transport import Network
from repro.wsdl import MessageSchema, Operation, PartSchema, ServiceContract

ECHO_CONTRACT = ServiceContract(
    service_type="Echo",
    operations=(
        Operation(
            name="echo",
            input=MessageSchema("echoRequest", (PartSchema("text"),)),
            output=MessageSchema("echoResponse", (PartSchema("text"),)),
        ),
        Operation(
            name="add",
            input=MessageSchema(
                "addRequest", (PartSchema("a", "int"), PartSchema("b", "int"))
            ),
            output=MessageSchema("addResponse", (PartSchema("sum", "int"),)),
        ),
    ),
)


class EchoService(SimulatedService):
    """Echoes text back; adds numbers."""

    contract = ECHO_CONTRACT

    def op_echo(self, payload, ctx):
        yield ctx.work()
        return ECHO_CONTRACT.operation("echo").output.build(
            text=f"{payload.child_text('text')}@{self.name}"
        )

    def op_add(self, payload, ctx):
        yield ctx.work()
        total = int(payload.child_text("a")) + int(payload.child_text("b"))
        return ECHO_CONTRACT.operation("add").output.build(sum=total)


class SlowEchoService(EchoService):
    """Takes a configurable long time to answer."""

    def __init__(self, *args, delay: float = 100.0, **kwargs):
        super().__init__(*args, **kwargs)
        self.delay = delay

    def op_echo(self, payload, ctx):
        yield ctx.env.timeout(self.delay)
        return ECHO_CONTRACT.operation("echo").output.build(text="late")


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def random_source():
    return RandomSource(42)


@pytest.fixture
def network(env, random_source):
    return Network(env, random_source)


@pytest.fixture
def container(env, network, random_source):
    return ServiceContainer(env, network, random_source)


@pytest.fixture
def echo_service(env, container):
    service = EchoService(
        env, "echo1", "http://test/echo", processing=ProcessingModel(base_seconds=0.005)
    )
    container.deploy(service)
    return service


def run_process(env, generator):
    """Drive a generator to completion on the simulation."""
    return env.run(env.process(generator))
