"""WS-Policy4MASC documents for the four §2.2 customization experiments.

1. dynamic **addition** of a CurrencyConversion service for international
   trades;
2. dynamic **addition** of a PESTAnalysis service depending on the country
   of the foreign stock;
3. dynamic **addition** of a CreditRating service for large transactions
   and/or corporate investors;
4. dynamic **removal** of the MarketCompliance invocation for trades below
   a threshold.

Every builder round-trips its document through the XML form, so the
experiments exercise the full MASCPolicyParser path.
"""

from __future__ import annotations

from repro.casestudies.stocktrading.process import TRADING_ANCHORS
from repro.policy import (
    AdaptationPolicy,
    AddActivityAction,
    BusinessValue,
    InvokeSpec,
    MessageCondition,
    MonitoringPolicy,
    PolicyDocument,
    PolicyScope,
    RemoveActivityAction,
    parse_policy_document,
    serialize_policy_document,
)

__all__ = [
    "compliance_removal_policy_document",
    "credit_rating_policy_document",
    "currency_conversion_policy_document",
    "pest_analysis_policy_document",
]


def _round_trip(document: PolicyDocument) -> PolicyDocument:
    return parse_policy_document(serialize_policy_document(document))


def currency_conversion_policy_document() -> PolicyDocument:
    """Experiment 1: add CurrencyConversion for international trades.

    A monitoring policy watches the recommendation requests flowing out of
    the process; a non-AU country marks the instance as an international
    trade, and the adaptation policy splices a CurrencyConversion call in
    front of the trade placement.
    """
    document = PolicyDocument("trading-currency-conversion")
    document.monitoring_policies.append(
        MonitoringPolicy(
            name="detect-international-trade",
            events=("message.request",),
            scope=PolicyScope(operation="getRecommendation"),
            conditions=(MessageCondition(xpath="country", operator="ne", value="AU"),),
            extract={"trade_country": "country", "trade_amount": "amount"},
            emits=("trade.international",),
            priority=10,
        )
    )
    document.adaptation_policies.append(
        AdaptationPolicy(
            name="add-currency-conversion",
            triggers=("trade.international",),
            adaptation_type="customization",
            actions=(
                AddActivityAction(
                    anchor=TRADING_ANCHORS["trade"],
                    position="before",
                    invokes=(
                        InvokeSpec(
                            name="convert-currency",
                            operation="convert",
                            service_type="CurrencyConversion",
                            inputs={
                                "amount": "$amount",
                                "fromCurrency": "$currency",
                                "toCurrency": "AUD",
                            },
                            outputs={"local_amount": "converted", "fx_rate": "rate"},
                        ),
                    ),
                ),
            ),
            business_value=BusinessValue(3.5, "AUD", "FX conversion fee"),
            priority=10,
        )
    )
    return _round_trip(document)


def pest_analysis_policy_document() -> PolicyDocument:
    """Experiment 2: add PESTAnalysis depending on the stock's country.

    Two adaptation policies share the trigger: high-risk countries get the
    premium analysis service (PS1), other foreign countries the standard
    one (PS2) — "depending on the country of foreign stock, a PESTAnalysis
    Web service (PS1, PS2...PSn) was added".
    """
    document = PolicyDocument("trading-pest-analysis")
    document.monitoring_policies.append(
        MonitoringPolicy(
            name="detect-foreign-stock",
            events=("message.request",),
            scope=PolicyScope(operation="getRecommendation"),
            conditions=(MessageCondition(xpath="country", operator="ne", value="AU"),),
            extract={"trade_country": "country"},
            emits=("trade.foreign-stock",),
            priority=10,
        )
    )
    high_risk = ("BR", "RU")
    document.adaptation_policies.append(
        AdaptationPolicy(
            name="add-pest-analysis-high-risk",
            triggers=("trade.foreign-stock",),
            condition=f"trade_country in {list(high_risk)!r}",
            adaptation_type="customization",
            actions=(
                AddActivityAction(
                    anchor=TRADING_ANCHORS["trade"],
                    position="before",
                    invokes=(
                        InvokeSpec(
                            name="pest-analysis",
                            operation="assess",
                            address="http://trading/pest1",
                            inputs={"country": "$country"},
                            outputs={"pest_risk": "overallRisk"},
                        ),
                    ),
                ),
            ),
            business_value=BusinessValue(-12.0, "AUD", "premium PEST analysis fee"),
            priority=10,
        )
    )
    document.adaptation_policies.append(
        AdaptationPolicy(
            name="add-pest-analysis-standard",
            triggers=("trade.foreign-stock",),
            condition=f"trade_country not in {list(high_risk)!r}",
            adaptation_type="customization",
            actions=(
                AddActivityAction(
                    anchor=TRADING_ANCHORS["trade"],
                    position="before",
                    invokes=(
                        InvokeSpec(
                            name="pest-analysis",
                            operation="assess",
                            address="http://trading/pest2",
                            inputs={"country": "$country"},
                            outputs={"pest_risk": "overallRisk"},
                        ),
                    ),
                ),
            ),
            business_value=BusinessValue(-4.0, "AUD", "standard PEST analysis fee"),
            priority=20,
        )
    )
    return _round_trip(document)


def credit_rating_policy_document(
    amount_threshold: float = 100_000.0,
) -> PolicyDocument:
    """Experiment 3: add CreditRating for large and/or corporate trades.

    "Monitoring policies were used to define constraints over the trade
    transaction amount and/or the customer's profile (e.g., personal
    investor vs. corporate investor) to dynamically add a CreditRating Web
    service before processing the trade."
    """
    document = PolicyDocument("trading-credit-rating")
    document.monitoring_policies.append(
        MonitoringPolicy(
            name="detect-credit-check-needed",
            events=("message.request",),
            scope=PolicyScope(operation="placeOrder"),
            condition=f"order_amount >= {amount_threshold} or investor_profile == 'corporate'",
            extract={
                "order_amount": "amount",
                "investor_profile": "profile",
                "order_investor": "investorId",
            },
            emits=("trade.credit-check-needed",),
            priority=10,
        )
    )
    document.adaptation_policies.append(
        AdaptationPolicy(
            name="add-credit-rating",
            triggers=("trade.credit-check-needed",),
            adaptation_type="customization",
            actions=(
                AddActivityAction(
                    anchor=TRADING_ANCHORS["trade"],
                    position="before",
                    invokes=(
                        InvokeSpec(
                            name="credit-rating",
                            operation="check",
                            service_type="CreditRating",
                            inputs={"investorId": "$investor_id", "amount": "$amount"},
                            outputs={
                                "credit_rating": "rating",
                                "credit_approved": "approved",
                            },
                        ),
                    ),
                ),
            ),
            business_value=BusinessValue(-8.0, "AUD", "credit bureau fee"),
            priority=10,
        )
    )
    return _round_trip(document)


def compliance_removal_policy_document(
    amount_threshold: float = 10_000.0,
) -> PolicyDocument:
    """Experiment 4: remove MarketCompliance below the amount threshold.

    Static customization: evaluated when the instance is created, against
    its initial variables — "dynamic removal of the invocation of
    Market-ComplianceService when the trade amount is less than a
    particular threshold".
    """
    document = PolicyDocument("trading-compliance-removal")
    document.adaptation_policies.append(
        AdaptationPolicy(
            name="remove-compliance-small-trades",
            triggers=("process.instance_created",),
            scope=PolicyScope(process="trading-process"),
            condition=f"amount < {amount_threshold}",
            adaptation_type="customization",
            actions=(RemoveActivityAction(target=TRADING_ANCHORS["compliance"]),),
            business_value=BusinessValue(1.5, "AUD", "saved compliance processing"),
            priority=10,
        )
    )
    return _round_trip(document)
