"""Property-based tests for the XML process form and WSDL mapping."""

import string

from hypothesis import given, settings, strategies as st

from repro.orchestration import (
    Assign,
    Delay,
    Empty,
    Flow,
    IfElse,
    Invoke,
    ProcessDefinition,
    Reply,
    Scope,
    Sequence,
    Throw,
    parse_process_definition,
    serialize_process_definition,
)
from repro.soap import FaultCode
from repro.wsdl import (
    MessageSchema,
    Operation,
    PartSchema,
    ServiceContract,
    contract_to_wsdl,
    wsdl_to_contract,
)

names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)


class _Namer:
    """Produces unique activity names within one generated tree."""

    def __init__(self):
        self.counter = 0

    def fresh(self, base: str) -> str:
        self.counter += 1
        return f"{base}{self.counter}"


@st.composite
def leaf_activity(draw, namer):
    choice = draw(st.integers(0, 4))
    if choice == 0:
        return Empty(namer.fresh("empty"))
    if choice == 1:
        return Assign(namer.fresh("assign"), draw(names), expression="1 + 2")
    if choice == 2:
        return Delay(namer.fresh("delay"), draw(st.floats(0, 10, allow_nan=False)))
    if choice == 3:
        return Throw(
            namer.fresh("throw"), draw(st.sampled_from(list(FaultCode))), draw(names)
        )
    return Invoke(
        namer.fresh("invoke"),
        operation=draw(names),
        to=f"http://{draw(names)}",
        inputs={draw(names): f"${draw(names)}"},
        extract={draw(names): draw(names)},
        timeout_seconds=draw(st.floats(1, 60, allow_nan=False)),
    )


@st.composite
def activity_tree(draw, namer, depth=0):
    if depth >= 2:
        return draw(leaf_activity(namer))
    choice = draw(st.integers(0, 3))
    if choice == 0:
        children = draw(st.lists(activity_tree(namer, depth + 1), min_size=1, max_size=3))
        return Sequence(namer.fresh("seq"), children)
    if choice == 1:
        children = draw(st.lists(activity_tree(namer, depth + 1), min_size=1, max_size=3))
        return Flow(namer.fresh("flow"), children)
    if choice == 2:
        return IfElse(
            namer.fresh("if"),
            "x > 0",
            then=draw(activity_tree(namer, depth + 1)),
            orelse=draw(st.none() | activity_tree(namer, depth + 1)),
        )
    return Scope(
        namer.fresh("scope"),
        body=draw(activity_tree(namer, depth + 1)),
        fault_handlers={None: draw(leaf_activity(namer))},
        timeout_seconds=draw(st.none() | st.floats(1, 100, allow_nan=False)),
    )


@st.composite
def process_definitions(draw):
    namer = _Namer()
    root = Sequence(
        "root", draw(st.lists(activity_tree(namer), min_size=1, max_size=3))
    )
    root.activities.append(Reply(namer.fresh("reply"), variable=draw(names)))
    return ProcessDefinition(draw(names), root)


@given(process_definitions())
@settings(max_examples=40, deadline=None)
def test_process_xml_round_trip_fixed_point(definition):
    once = serialize_process_definition(definition)
    reparsed = parse_process_definition(once)
    assert serialize_process_definition(reparsed) == once
    assert reparsed.activity_names() == definition.activity_names()


@st.composite
def service_contracts(draw):
    counter = iter(range(10_000))

    def unique_name(base: str) -> str:
        return f"{base}{next(counter)}"

    operations = []
    for _ in range(draw(st.integers(1, 3))):
        parts = tuple(
            PartSchema(
                unique_name("part"),
                draw(st.sampled_from(["string", "int", "float", "bool"])),
                draw(st.booleans()),
            )
            for _ in range(draw(st.integers(0, 3)))
        )
        operations.append(
            Operation(
                unique_name("op"),
                MessageSchema(unique_name("in"), parts),
                MessageSchema(unique_name("out"), (PartSchema(unique_name("part")),)),
            )
        )
    return ServiceContract(
        service_type=unique_name("Service"), operations=tuple(operations)
    )


@given(service_contracts())
@settings(max_examples=40, deadline=None)
def test_wsdl_round_trip_preserves_contract(contract):
    reparsed, address = wsdl_to_contract(contract_to_wsdl(contract))
    assert address is None
    assert reparsed.service_type == contract.service_type
    assert len(reparsed.operations) == len(contract.operations)
    for original in contract.operations:
        parsed = reparsed.operation(original.name)
        assert parsed.input == original.input
        assert parsed.output == original.output
