"""VEP virtualization features: selection strategies and message adaptation.

Shows the wsBus capabilities beyond fault recovery:

1. **selection strategies** — the same three search providers exposed as
   one virtual "Web search" service (the paper's own example), selected by
   round-robin, best-QoS and broadcast-first-wins;
2. **message adaptation** — a member whose interface differs from the
   VEP's abstract contract, reconciled by a PayloadTransform module in the
   pipeline ("handles data transformation and enrichment to resolve
   incompatibilities between services registered with a particular VEP").

Run:  python examples/vep_selection_and_transformation.py
"""

from repro.policy import PolicyRepository
from repro.services import Invoker, ProcessingModel, ServiceContainer, SimulatedService
from repro.simulation import Environment, RandomSource
from repro.transport import Network
from repro.wsbus import EnrichmentModule, PayloadTransformModule, WsBus
from repro.wsdl import MessageSchema, Operation, PartSchema, ServiceContract

SEARCH_CONTRACT = ServiceContract(
    service_type="WebSearch",
    operations=(
        Operation(
            name="search",
            input=MessageSchema("searchRequest", (PartSchema("query"),)),
            output=MessageSchema(
                "searchResponse", (PartSchema("results"), PartSchema("engine"))
            ),
        ),
    ),
)


class SearchEngine(SimulatedService):
    contract = SEARCH_CONTRACT

    def op_search(self, payload, ctx):
        yield ctx.work()
        query = payload.child_text("query")
        return SEARCH_CONTRACT.operation("search").output.build(
            results=f"results for {query!r}", engine=self.name
        )


class LegacySearchEngine(SimulatedService):
    """A member with a *different* contract: part named 'q', root 'findRequest'."""

    contract = ServiceContract(
        service_type="LegacySearch",
        operations=(
            Operation(
                name="search",
                input=MessageSchema("findRequest", (PartSchema("q"),)),
                output=MessageSchema(
                    "searchResponse", (PartSchema("results"), PartSchema("engine"))
                ),
            ),
        ),
    )

    def op_search(self, payload, ctx):
        yield ctx.work()
        return self.contract.operation("search").output.build(
            results=f"legacy results for {payload.child_text('q')!r}", engine=self.name
        )


def main() -> None:
    env = Environment()
    random_source = RandomSource(seed=3)
    network = Network(env, random_source)
    container = ServiceContainer(env, network, random_source)

    # Three engines with very different speeds.
    container.deploy(
        SearchEngine(env, "giggle", "http://search/giggle", ProcessingModel(0.004))
    )
    container.deploy(
        SearchEngine(env, "yawhoo", "http://search/yawhoo", ProcessingModel(0.030))
    )
    container.deploy(
        SearchEngine(env, "bung", "http://search/bung", ProcessingModel(0.015))
    )

    bus = WsBus(env, network, repository=PolicyRepository(), member_timeout=10.0)
    members = ["http://search/giggle", "http://search/yawhoo", "http://search/bung"]
    client = Invoker(env, network, caller="browser")

    def search(address, query):
        payload = SEARCH_CONTRACT.operation("search").input.build(query=query)
        response = yield from client.invoke(address, "search", payload, timeout=30.0)
        return response.body.child_text("engine"), env.now

    def demo():
        print("== round-robin: requests rotate across all engines ==")
        vep = bus.create_vep("search-rr", SEARCH_CONTRACT, members=list(members),
                             selection_strategy="round_robin")
        for index in range(4):
            engine, _ = yield from search(vep.address, f"query-{index}")
            print(f"  request {index} answered by {engine}")

        print("\n== best_response_time: after warmup, the fastest engine wins ==")
        vep2 = bus.create_vep("search-best", SEARCH_CONTRACT, members=list(members),
                              selection_strategy="best_response_time")
        for index in range(3):  # warmup happened during round-robin phase
            engine, _ = yield from search(vep2.address, f"fast-{index}")
            print(f"  request {index} answered by {engine}")

        print("\n== broadcast: all engines invoked, first response wins ==")
        vep3 = bus.create_vep("search-bcast", SEARCH_CONTRACT, members=list(members),
                              broadcast=True)
        started = env.now
        engine, finished = yield from search(vep3.address, "race")
        print(f"  winner: {engine} in {(finished - started) * 1000:.1f} ms")

        print("\n== message adaptation: legacy member behind the same contract ==")
        container.deploy(LegacySearchEngine(env, "antique", "http://search/antique"))
        vep4 = bus.create_vep("search-legacy", SEARCH_CONTRACT,
                              members=["http://search/antique"])
        vep4.pipeline.add(
            PayloadTransformModule(
                name="to-legacy-schema",
                rename_root="findRequest",
                rename_parts={"query": "q"},
                direction="request",
            )
        )
        vep4.pipeline.add(
            EnrichmentModule(
                lambda envelope, ctx: {"safeSearch": "on"}, name="add-defaults"
            )
        )
        engine, _ = yield from search(vep4.address, "modern query, legacy service")
        print(f"  transparently answered by {engine} (schema translated in the pipeline)")

    env.run(env.process(demo()))


if __name__ == "__main__":
    main()
