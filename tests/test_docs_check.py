"""Keep the documentation true.

Two enforcement mechanisms:

1. every fenced ```python block in ``docs/*.md`` is extracted and
   executed here, so documented examples stay runnable as the code
   evolves (the README advertises this);
2. the API references the prose makes — dotted ``repro.*`` paths,
   class/method names, action element ↔ class mappings, the expression
   language's builtin whitelist — are resolved against the live code.
"""

from __future__ import annotations

import importlib
import inspect
import re
from pathlib import Path

import pytest

DOCS_DIR = Path(__file__).resolve().parent.parent / "docs"

FENCE = re.compile(r"^```python\s*$(.*?)^```\s*$", re.MULTILINE | re.DOTALL)


def python_blocks() -> list[tuple[str, int, str]]:
    """Every fenced python block in docs/*.md as (doc, index, source)."""
    blocks = []
    for doc in sorted(DOCS_DIR.glob("*.md")):
        for index, match in enumerate(FENCE.finditer(doc.read_text(encoding="utf-8"))):
            blocks.append((doc.name, index, match.group(1)))
    return blocks


_BLOCKS = python_blocks()


def test_docs_exist_and_contain_python_examples():
    names = {doc for doc, _, _ in _BLOCKS}
    assert {"observability.md", "simulation.md"} <= names
    # Diagram-only pages are allowed no python, but must exist.
    assert (DOCS_DIR / "architecture.md").is_file()
    assert (DOCS_DIR / "policy-language.md").is_file()


@pytest.mark.parametrize(
    "doc,index,source",
    _BLOCKS,
    ids=[f"{doc}#{index}" for doc, index, _ in _BLOCKS],
)
def test_fenced_python_blocks_execute(doc, index, source):
    """The documented examples run exactly as printed."""
    namespace = {"__name__": f"docscheck_{doc.replace('.', '_')}_{index}"}
    exec(compile(source, f"{doc}[block {index}]", "exec"), namespace)


# --- API audit: the names the prose mentions must exist -----------------------

DOTTED = re.compile(r"\brepro(?:\.\w+)+")


def resolve(path: str):
    """Import the longest module prefix of ``path``, getattr the rest."""
    parts = path.split(".")
    for split in range(len(parts), 0, -1):
        try:
            obj = importlib.import_module(".".join(parts[:split]))
        except ImportError:
            continue
        for attr in parts[split:]:
            obj = getattr(obj, attr)
        return obj
    raise ImportError(path)


@pytest.mark.parametrize("doc", ["simulation.md", "observability.md"])
def test_every_dotted_reference_resolves(doc):
    text = (DOCS_DIR / doc).read_text(encoding="utf-8")
    references = sorted(set(DOTTED.findall(text)))
    assert references, f"{doc} mentions no repro.* paths?"
    for reference in references:
        resolve(reference)


class TestSimulationDocAudit:
    def test_kernel_names(self):
        from repro import simulation

        for name in ("Environment", "Event", "Timeout", "Process", "AnyOf", "AllOf"):
            assert hasattr(simulation, name), name
        assert hasattr(simulation.Process, "interrupt")

    def test_random_source_streams(self):
        from repro.simulation import RandomSource

        source = RandomSource(42)
        assert source.stream("service.RetailerA") is source.stream("service.RetailerA")
        assert source.fork("availability") is not None

    def test_cost_model_names(self):
        from repro.policy import PolicyRepository
        from repro.services import ProcessingModel  # noqa: F401
        from repro.simulation import Environment, RandomSource
        from repro.transport import LatencyModel, Network
        from repro.wsbus import WsBus

        env = Environment()
        bus = WsBus(env, Network(env, RandomSource(1)), repository=PolicyRepository())
        assert isinstance(bus.mediation_overhead, LatencyModel)

    def test_referenced_tests_exist(self):
        tests_dir = Path(__file__).resolve().parent
        assert (tests_dir / "test_determinism.py").is_file()
        # The "one subtle bug" anecdote names a real regression test.
        corpus = "".join(
            p.read_text(encoding="utf-8") for p in tests_dir.glob("test_*.py")
        )
        assert "def test_any_of_pending_timeout_does_not_count_as_fired" in corpus


class TestPolicyLanguageDocAudit:
    def test_loading_entry_points(self):
        from repro.core import MASC
        from repro.core.parser import MASCPolicyParser
        from repro.policy import PolicyRepository

        assert callable(PolicyRepository.load_xml)
        assert callable(MASCPolicyParser.import_file)
        assert callable(MASCPolicyParser.import_directory)
        assert callable(MASC.load_policies)

    def test_validate_document_signature(self):
        from repro.policy import validate_document

        parameters = inspect.signature(validate_document).parameters
        assert {"document", "process", "known_service_types"} <= set(parameters)

    def test_action_elements_map_to_classes(self):
        """Each documented action element has its implementation class."""
        from repro.policy import actions

        documented = {
            "AddActivity": "AddActivityAction",
            "RemoveActivity": "RemoveActivityAction",
            "ReplaceActivity": "ReplaceActivityAction",
            "Suspend": "SuspendProcessAction",
            "Resume": "ResumeProcessAction",
            "DelayProcess": "DelayProcessAction",
            "Terminate": "TerminateProcessAction",
            "ExtendTimeout": "ExtendTimeoutAction",
            "Retry": "RetryAction",
            "Substitute": "SubstituteAction",
            "ConcurrentInvoke": "ConcurrentInvokeAction",
            "Skip": "SkipAction",
            "Quarantine": "QuarantineAction",
            "PreferBest": "PreferBestAction",
        }
        for element, class_name in documented.items():
            assert hasattr(actions, class_name), f"{element} -> {class_name}"

    def test_goal_policy_machinery(self):
        from repro.core.optimization import UtilityDrivenDecisionMaker  # noqa: F401

    def test_expression_builtin_whitelist_matches_doc(self):
        """The doc enumerates the safe builtins; the code must agree."""
        from repro.orchestration.expressions import _SAFE_FUNCTIONS

        documented = {"len", "min", "max", "abs", "round", "str", "int", "float", "bool", "sum"}
        assert set(_SAFE_FUNCTIONS) == documented

    def test_documented_xml_policies_parse(self):
        """The three XML fences in the doc are valid WS-Policy4MASC."""
        from repro.policy import PolicyRepository

        text = (DOCS_DIR / "policy-language.md").read_text(encoding="utf-8")
        fences = re.findall(r"^```xml\s*$(.*?)^```\s*$", text, re.MULTILINE | re.DOTALL)
        assert len(fences) >= 3
        wrapped = (
            '<wsp:Policy Name="doc-fences"'
            ' xmlns:wsp="http://schemas.xmlsoap.org/ws/2004/09/policy"'
            ' xmlns:masc="http://masc.web.cse.unsw.edu.au/ns/ws-policy4masc">'
            + "".join(re.sub(r"<!--.*?-->", "", fence, flags=re.DOTALL) for fence in fences)
            + "</wsp:Policy>"
        )
        repository = PolicyRepository()
        document = repository.load_xml(wrapped)
        names = {p.name for p in document.monitoring_policies} | {
            p.name for p in document.adaptation_policies
        } | {p.name for p in document.goal_policies}
        assert {
            "detect-international-trade",
            "retailer-retry-then-failover",
            "maximize-trading-value",
        } <= names
