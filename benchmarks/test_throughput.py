"""Throughput, direct vs channeling through wsBus.

Section 3.2 defines throughput ("the average number of successful requests
processed in a sampling period") as the second key performance metric of
the experiment, alongside the RTT plotted in Figure 5.

Shape assertions: throughput scales with concurrent clients for both
modes; mediation costs a modest slice of throughput (consistent with the
~10% RTT overhead); and under the fault mix the VEP *delivers more
successful requests* than a direct client pointed at a flaky retailer.
"""

from __future__ import annotations

from conftest import catalog_plan, run_vep_configuration
from repro.casestudies.scm import RETAILER_CONTRACT, build_scm_deployment
from repro.metrics import Table
from repro.policy import PolicyRepository
from repro.workload import WorkloadRunner
from repro.wsbus import WsBus

CLIENT_COUNTS = (1, 2, 4, 8)


def measure_throughput(through_bus: bool, clients: int, seed: int = 31) -> float:
    deployment = build_scm_deployment(seed=seed, log_events=False)
    target = deployment.retailers["C"].address
    if through_bus:
        bus = WsBus(
            deployment.env,
            deployment.network,
            repository=PolicyRepository(),
            registry=deployment.registry,
            member_timeout=30.0,
            colocated_with_clients=True,
        )
        vep = bus.create_vep(
            "retailers", RETAILER_CONTRACT, members=[target], selection_strategy="primary"
        )
        target = vep.address
    runner = WorkloadRunner(deployment.env, deployment.network)
    result = runner.run(
        catalog_plan(target, timeout=30.0, think=0.0),
        clients=clients,
        requests_per_client=150,
    )
    return result.throughput()


def regenerate_throughput():
    series = {"direct": [], "wsbus": []}
    for clients in CLIENT_COUNTS:
        series["direct"].append(measure_throughput(False, clients))
        series["wsbus"].append(measure_throughput(True, clients))
    return series


def test_throughput_direct_vs_wsbus(benchmark):
    series = benchmark.pedantic(regenerate_throughput, rounds=1, iterations=1)

    table = Table(
        ["Concurrent clients", "Direct (req/s)", "wsBus (req/s)", "Mediation cost"],
        title="Throughput — direct vs channeling through wsBus (no faults)",
    )
    for clients, direct, mediated in zip(CLIENT_COUNTS, series["direct"], series["wsbus"]):
        table.add_row(
            [
                clients,
                f"{direct:.1f}",
                f"{mediated:.1f}",
                f"{(direct - mediated) / direct * 100:+.1f}%",
            ]
        )
    print()
    print(table.render())

    # Throughput grows with client concurrency in both modes.
    assert series["direct"][-1] > series["direct"][0] * 2
    assert series["wsbus"][-1] > series["wsbus"][0] * 2
    # Mediation costs some throughput, but less than half.
    for direct, mediated in zip(series["direct"], series["wsbus"]):
        assert mediated < direct
        assert mediated > direct * 0.5


def test_goodput_under_faults_favors_wsbus(benchmark):
    """Under the Table 1 fault mix, the VEP's recovery converts failures
    into (slower) successes: goodput beats the flaky direct retailer."""

    def run_both():
        deployment = build_scm_deployment(seed=37, log_events=False)
        deployment.inject_table1_mix()
        runner = WorkloadRunner(deployment.env, deployment.network)
        direct_result = runner.run(
            catalog_plan(deployment.retailers["A"].address, timeout=5.0, think=2.0),
            clients=4,
            requests_per_client=200,
        )
        _, _, vep_result = run_vep_configuration(seed=37, clients=4, requests=200)
        return direct_result, vep_result

    direct_result, vep_result = benchmark.pedantic(run_both, rounds=1, iterations=1)
    direct_successes = len(direct_result.successes)
    vep_successes = len(vep_result.successes)
    print(
        f"\nGoodput under faults: direct A {direct_successes}/800 succeeded, "
        f"wsBus VEP {vep_successes}/800 succeeded"
    )
    assert vep_successes > direct_successes
    assert vep_successes >= 0.99 * len(vep_result.records)
