"""Small statistics helpers used by benchmarks and QoS computations."""

from __future__ import annotations

import math
from collections.abc import Sequence

__all__ = ["describe", "mean", "percentile", "stdev"]


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def stdev(values: Sequence[float]) -> float:
    """Sample standard deviation (0.0 for fewer than two values)."""
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (len(values) - 1))


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile, q in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"q out of range: {q}")
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, int(round(q / 100.0 * (len(ordered) - 1)))))
    return ordered[index]


def describe(values: Sequence[float]) -> dict[str, float]:
    """Summary statistics of a sample."""
    if not values:
        return {"count": 0}
    return {
        "count": float(len(values)),
        "mean": mean(values),
        "stdev": stdev(values),
        "min": min(values),
        "p50": percentile(values, 50),
        "p95": percentile(values, 95),
        "p99": percentile(values, 99),
        "max": max(values),
    }
