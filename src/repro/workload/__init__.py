"""Workload generation (the JMeter role in the paper's experiments).

"We simulated multiple concurrent Web service clients, each of which
invoked deployed services multiple times. We used Apache's JMeter... to
generate the workload and to measure the observed performance."
"""

from repro.workload.generator import RequestPlan, WorkloadResult, WorkloadRunner

__all__ = ["RequestPlan", "WorkloadResult", "WorkloadRunner"]
