"""Ablation: VEP selection strategies, including concurrent invocation.

Section 3.1 describes three selection configurations — round-robin,
best-performing by QoS history, and broadcast ("'broadcast' the request
message to multiple targets service providers concurrently and consider
the first one that respond[s]") — and Section 3.2 mentions experiments
with "concurrent invocation of the four Retailer services".

Shape assertions: broadcast buys the lowest effective latency and top
reliability at the price of invoking every member per request; best-QoS
selection concentrates traffic on the fastest member; round-robin spreads
load evenly.
"""

from __future__ import annotations

from conftest import catalog_plan
from repro.casestudies.scm import (
    RETAILER_CONTRACT,
    build_scm_deployment,
    retailer_recovery_policy_document,
)
from repro.metrics import Table, failures_per_1000
from repro.policy import PolicyRepository
from repro.workload import WorkloadRunner
from repro.wsbus import WsBus


def run_strategy(strategy: str, broadcast: bool, seed: int = 67):
    deployment = build_scm_deployment(seed=seed, log_events=False)
    deployment.inject_table1_mix()
    repository = PolicyRepository()
    repository.load(retailer_recovery_policy_document())
    bus = WsBus(
        deployment.env,
        deployment.network,
        repository=repository,
        registry=deployment.registry,
        member_timeout=5.0,
        colocated_with_clients=True,
    )
    vep = bus.create_vep(
        "retailers",
        RETAILER_CONTRACT,
        members=deployment.retailer_addresses,
        selection_strategy=strategy,
        broadcast=broadcast,
    )
    runner = WorkloadRunner(deployment.env, deployment.network)
    result = runner.run(
        catalog_plan(vep.address, timeout=60.0, think=2.0), clients=4, requests_per_client=150
    )
    member_load = {
        address: (deployment.network.endpoint(address).requests_handled if
                  deployment.network.endpoint(address) else 0)
        for address in deployment.retailer_addresses
    }
    return {
        "failures_per_1000": failures_per_1000(result.records),
        "mean_rtt": result.rtt_stats()["mean"],
        "member_load": member_load,
        "total_member_requests": sum(member_load.values()),
        "client_requests": len(result.records),
    }


def test_selection_strategy_ablation(benchmark):
    def sweep():
        return {
            "round_robin": run_strategy("round_robin", broadcast=False),
            "best_response_time": run_strategy("best_response_time", broadcast=False),
            "broadcast": run_strategy("round_robin", broadcast=True),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = Table(
        ["Strategy", "Failures/1000", "Mean RTT (ms)", "Backend requests / client request"],
        title="Ablation — VEP selection strategies under the Table 1 fault mix",
    )
    for strategy, data in results.items():
        amplification = data["total_member_requests"] / data["client_requests"]
        table.add_row(
            [
                strategy,
                f"{data['failures_per_1000']:.0f}",
                f"{data['mean_rtt'] * 1000:.1f}",
                f"{amplification:.2f}x",
            ]
        )
    print()
    print(table.render())

    round_robin = results["round_robin"]
    best = results["best_response_time"]
    broadcast = results["broadcast"]

    # All strategies keep failures low thanks to recovery policies.
    for data in results.values():
        assert data["failures_per_1000"] <= 25

    # Broadcast trades bandwidth for latency: it amplifies backend traffic
    # (~4 members per request) but achieves the lowest mean RTT.
    assert broadcast["total_member_requests"] > 3 * broadcast["client_requests"]
    assert broadcast["mean_rtt"] <= round_robin["mean_rtt"]

    # Round-robin spreads load across all four retailers.
    loads = list(round_robin["member_load"].values())
    assert min(loads) > 0.5 * max(loads)

    # Best-QoS concentrates traffic: its load spread is more skewed than
    # round-robin's.
    best_loads = sorted(best["member_load"].values())
    assert best_loads[-1] > 2 * best_loads[0]
