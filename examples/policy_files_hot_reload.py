"""File-based policies and hot reload.

MASC's configuration story: "When the MASCAdaptationService starts, our
MASCPolicyParser imports WS-Policy4MASC files" and "when a WS-Policy4MASC
document changes, these changes are automatically enforced the next time
adaptation is needed with no need to restart any software component."

This example loads the shipped policy files from ``examples/policies/``,
runs a trade, edits one policy file on disk (changing the compliance
threshold), re-imports, and shows the behaviour change — same process
definition, same services, nothing restarted.

Run:  python examples/policy_files_hot_reload.py
"""

import shutil
import tempfile
from pathlib import Path

from repro.casestudies.stocktrading import build_trading_deployment

POLICY_DIR = Path(__file__).parent / "policies"
TRADING_POLICIES = [
    "trading_currency_conversion.xml",
    "trading_pest_analysis.xml",
    "trading_credit_rating.xml",
    "trading_compliance_removal.xml",
]


def main() -> None:
    deployment = build_trading_deployment(seed=21)
    parser = deployment.masc.parser

    # Work on a scratch copy so the shipped examples stay pristine.
    workdir = Path(tempfile.mkdtemp(prefix="masc-policies-"))
    for filename in TRADING_POLICIES:
        shutil.copy(POLICY_DIR / filename, workdir / filename)

    loaded = parser.import_directory(workdir)
    print(f"Imported {len(loaded)} policy documents from {workdir}:")
    for document in loaded:
        print(f"  {document.name}: {document.policy_names()}")

    print("\nUnchanged files are not re-parsed on re-import:")
    again = parser.import_directory(workdir)
    print(f"  second import parsed {len(again)} documents (parse_count={parser.parse_count})")

    instance = deployment.run_order(amount=500.0)
    print(
        "\nTrade of 500 AUD with threshold 10000: compliance executed ->",
        "market-compliance" in instance.executed_activities,
    )

    # Edit the policy *file*: drop the removal threshold to 100.
    compliance_path = workdir / "trading_compliance_removal.xml"
    text = compliance_path.read_text().replace("amount &lt; 10000.0", "amount &lt; 100.0")
    compliance_path.write_text(text)
    reloaded = parser.import_directory(workdir)
    print(f"\nEdited {compliance_path.name}; re-import picked up {len(reloaded)} changed file(s).")

    instance = deployment.run_order(amount=500.0)
    print(
        "Same trade after hot reload (threshold now 100): compliance executed ->",
        "market-compliance" in instance.executed_activities,
    )
    shutil.rmtree(workdir)


if __name__ == "__main__":
    main()
