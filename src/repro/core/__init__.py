"""MASC core: the paper's primary contribution.

The components of Figure 1, wired around the orchestration engine:

- :class:`MASCPolicyParser` — imports WS-Policy4MASC files into the policy
  repository when the adaptation service starts;
- :class:`MASCMonitoringService` — evaluates monitoring policies against
  exchanged SOAP messages, QoS measurements and process lifecycle events,
  raising MASC events;
- :class:`MonitoringStore` — the database of observed messages, used "in
  situations when adaptation pre-conditions refer to several different SOAP
  messages";
- :class:`MASCPolicyDecisionMaker` — determines which adaptation policy
  assertions apply per event (by trigger, scope, condition, state and
  priority) and dispatches their actions to enforcement points;
- :class:`MASCAdaptationService` — the WF-style runtime service enacting
  process-layer actions: static and dynamic customization via suspend →
  transient copy → edit → apply → resume, plus suspend/resume/terminate and
  timeout extension for cross-layer coordination.

:class:`MASC` is the facade that assembles a complete middleware stack.
"""

from repro.core.adaptation_service import AdaptationReport, MASCAdaptationService
from repro.core.decision_maker import EnforcementPoint, MASCPolicyDecisionMaker, PolicyDecision
from repro.core.events import MASCEvent
from repro.core.masc import MASC
from repro.core.monitoring_service import MASCMonitoringService
from repro.core.monitoring_store import CorrelationRule, MonitoringStore, StoredMessage
from repro.core.optimization import UtilityDrivenDecisionMaker, UtilityEstimate, estimate_utility
from repro.core.parser import MASCPolicyParser
from repro.core.prevention import QoSTrendDetector, TrendReport

__all__ = [
    "AdaptationReport",
    "CorrelationRule",
    "EnforcementPoint",
    "MASC",
    "MASCAdaptationService",
    "MASCEvent",
    "MASCMonitoringService",
    "MASCPolicyDecisionMaker",
    "MASCPolicyParser",
    "MonitoringStore",
    "PolicyDecision",
    "QoSTrendDetector",
    "StoredMessage",
    "TrendReport",
    "UtilityDrivenDecisionMaker",
    "UtilityEstimate",
    "estimate_utility",
]
