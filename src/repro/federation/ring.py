"""Consistent-hash ring placing VEPs on bus shards.

Placement must be stable under membership change (only the VEPs owned by
a departed bus move) and deterministic across runs and processes —
hashes come from SHA-256, never from Python's randomized ``hash()``.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right

__all__ = ["HashRing"]


def _hash(key: str) -> int:
    return int.from_bytes(hashlib.sha256(key.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """A consistent-hash ring with virtual nodes."""

    def __init__(self, nodes=(), virtual_nodes: int = 32) -> None:
        if virtual_nodes < 1:
            raise ValueError(f"virtual_nodes must be positive: {virtual_nodes}")
        self.virtual_nodes = virtual_nodes
        self._nodes: set[str] = set()
        #: Sorted ``(point, node)`` pairs; rebuilt on membership change.
        self._ring: list[tuple[int, str]] = []
        for node in nodes:
            self.add(node)

    @property
    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def add(self, node: str) -> None:
        if node in self._nodes:
            return
        self._nodes.add(node)
        for replica in range(self.virtual_nodes):
            self._ring.append((_hash(f"{node}#{replica}"), node))
        self._ring.sort()

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._ring = [(point, owner) for point, owner in self._ring if owner != node]

    def route(self, key: str) -> str:
        """The node owning ``key`` (first ring point clockwise of its hash)."""
        if not self._ring:
            raise LookupError("hash ring has no nodes")
        point = _hash(key)
        index = bisect_right(self._ring, (point, "￿"))
        if index == len(self._ring):
            index = 0
        return self._ring[index][1]
