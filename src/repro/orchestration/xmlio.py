"""XML serialization of process definitions.

The paper keeps process definitions in external documents ("WF processes
are defined in Microsoft's Extensible Applications Markup Language (XAML)"
/ "all business processes, including base processes and variation
processes, are defined in appropriate other documents (e.g., BPEL files),
so they are only referenced in WS-Policy4MASC policies"). This module
provides that externalized document format: a BPEL-flavoured XML dialect
that round-trips every declarative activity type.

Activities constructed from Python callables (`input_builder`, callable
conditions) are intentionally **not** serializable — a process document
must be fully declarative — and raise :class:`ProcessSerializationError`.
"""

from __future__ import annotations

from typing import Any

from repro.orchestration.activities import (
    Activity,
    Assign,
    Compensate,
    CompensationScope,
    Delay,
    Empty,
    Flow,
    IfElse,
    Invoke,
    Receive,
    Reply,
    Scope,
    Sequence,
    Terminate,
    Throw,
    While,
)
from repro.orchestration.definition import ProcessDefinition
from repro.orchestration.expressions import Expression
from repro.soap import FaultCode
from repro.xmlutils import Element, QName, parse_xml, serialize_xml

__all__ = [
    "PROCESS_NS",
    "ProcessSerializationError",
    "parse_activity",
    "parse_process_definition",
    "serialize_activity",
    "serialize_process_definition",
]

PROCESS_NS = "http://masc.web.cse.unsw.edu.au/ns/process"


class ProcessSerializationError(Exception):
    """The definition cannot be expressed in (or read from) the XML form."""


def _el(local: str) -> QName:
    return QName(PROCESS_NS, local)


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------


def serialize_process_definition(definition: ProcessDefinition, indent: bool = False) -> str:
    """Render a declarative process definition as an XML document."""
    root = Element(_el("Process"), attributes={"name": definition.name})
    if definition.initial_variables:
        variables = root.add(_el("Variables"))
        for name, value in definition.initial_variables.items():
            variables.append(
                Element(
                    _el("Variable"),
                    attributes={"name": name, "type": _type_name(value)},
                    text=_literal_text(value),
                )
            )
    root.append(_activity_to_element(definition.root))
    return serialize_xml(root, indent=indent)


def serialize_activity(activity: Activity, indent: bool = False) -> str:
    """Render one activity subtree as a standalone XML document.

    The persistence layer dehydrates *instance* trees with this (the live
    tree may differ from its definition after dynamic modification), and the
    modification journal serializes inserted/replacement activities the same
    way. Only fully declarative activities serialize; Python callables raise
    :class:`ProcessSerializationError` exactly as in full-definition form.
    """
    return serialize_xml(_activity_to_element(activity), indent=indent)


def parse_activity(source: str | Element) -> Activity:
    """Parse a standalone activity document back into an activity tree."""
    root = parse_xml(source) if isinstance(source, str) else source
    return _element_to_activity(root)


def _type_name(value: Any) -> str:
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "string"
    raise ProcessSerializationError(
        f"initial variable of type {type(value).__name__} is not serializable"
    )


def _literal_text(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def _parse_literal(text: str | None, type_name: str) -> Any:
    text = text or ""
    if type_name == "bool":
        return text == "true"
    if type_name == "int":
        return int(text)
    if type_name == "float":
        return float(text)
    return text


def _condition_source(activity: Activity, attribute: str = "_condition_source") -> str:
    source = getattr(activity, attribute, None)
    if isinstance(source, Expression):
        return source.source
    if isinstance(source, str):
        return source
    raise ProcessSerializationError(
        f"activity {activity.name!r} uses a Python-callable condition; "
        "only string expressions are serializable"
    )


def _activity_to_element(activity: Activity) -> Element:
    if isinstance(activity, Sequence):
        element = Element(_el("Sequence"), attributes={"name": activity.name})
        for child in activity.activities:
            element.append(_activity_to_element(child))
        return element
    if isinstance(activity, Flow):
        element = Element(_el("Flow"), attributes={"name": activity.name})
        for child in activity.activities:
            element.append(_activity_to_element(child))
        return element
    if isinstance(activity, Empty):
        return Element(_el("Empty"), attributes={"name": activity.name})
    if isinstance(activity, Assign):
        source = getattr(activity, "_assign_source", None)
        if source is None:
            raise ProcessSerializationError(
                f"Assign {activity.name!r} was built from a callable/literal; "
                "construct it with a string expression to serialize"
            )
        return Element(
            _el("Assign"),
            attributes={
                "name": activity.name,
                "variable": activity.variable,
                "expression": source,
            },
        )
    if isinstance(activity, Delay):
        source = getattr(activity, "_delay_source", None)
        if source is None:
            raise ProcessSerializationError(
                f"Delay {activity.name!r} has no serializable duration"
            )
        return Element(
            _el("Delay"), attributes={"name": activity.name, "seconds": source}
        )
    if isinstance(activity, IfElse):
        element = Element(
            _el("If"),
            attributes={"name": activity.name, "condition": _condition_source(activity)},
        )
        then_el = element.add(_el("Then"))
        then_el.append(_activity_to_element(activity.then))
        if activity.orelse is not None:
            else_el = element.add(_el("Else"))
            else_el.append(_activity_to_element(activity.orelse))
        return element
    if isinstance(activity, While):
        source = getattr(activity, "_condition_source_text", None)
        if source is None:
            raise ProcessSerializationError(
                f"While {activity.name!r} uses a non-serializable condition"
            )
        element = Element(
            _el("While"),
            attributes={
                "name": activity.name,
                "condition": source,
                "maxIterations": str(activity.max_iterations),
            },
        )
        element.append(_activity_to_element(activity.body))
        return element
    if isinstance(activity, Invoke):
        if activity.input_builder is not None:
            raise ProcessSerializationError(
                f"Invoke {activity.name!r} uses an input_builder callable"
            )
        attributes = {"name": activity.name, "operation": activity.operation}
        if activity.to is not None:
            attributes["to"] = activity.to
        if activity.service_type is not None:
            attributes["serviceType"] = activity.service_type
        if activity.timeout_seconds is not None:
            attributes["timeoutSeconds"] = str(activity.timeout_seconds)
        if activity.output_variable is not None:
            attributes["outputVariable"] = activity.output_variable
        if activity.padding_variable is not None:
            attributes["paddingVariable"] = activity.padding_variable
        element = Element(_el("Invoke"), attributes=attributes)
        for part, spec in activity.inputs.items():
            if callable(spec) and not isinstance(spec, Expression):
                raise ProcessSerializationError(
                    f"Invoke {activity.name!r} input {part!r} is a Python callable"
                )
            value = spec.source if isinstance(spec, Expression) else _literal_text(spec)
            kind = "expression" if isinstance(spec, Expression) else "literal"
            if isinstance(spec, str) and spec.startswith("$"):
                kind = "variable"
            element.add(_el("Input"), part=part, value=str(value), kind=kind)
        for variable, part in activity.extract.items():
            element.add(_el("Output"), variable=variable, part=part)
        return element
    if isinstance(activity, Receive):
        return Element(
            _el("Receive"), attributes={"name": activity.name, "variable": activity.variable}
        )
    if isinstance(activity, Reply):
        source = getattr(activity, "_reply_source", None)
        if source is None:
            raise ProcessSerializationError(
                f"Reply {activity.name!r} has no serializable source"
            )
        kind, value = source
        return Element(_el("Reply"), attributes={"name": activity.name, kind: value})
    if isinstance(activity, Throw):
        return Element(
            _el("Throw"),
            attributes={
                "name": activity.name,
                "fault": activity.code.value,
                "reason": activity.reason,
            },
        )
    if isinstance(activity, Terminate):
        return Element(
            _el("Terminate"), attributes={"name": activity.name, "reason": activity.reason}
        )
    if isinstance(activity, Compensate):
        attributes = {"name": activity.name}
        if activity.scope is not None:
            attributes["scope"] = activity.scope
        return Element(_el("Compensate"), attributes=attributes)
    if isinstance(activity, CompensationScope):
        attributes = {"name": activity.name}
        if activity.timeout_seconds is not None:
            attributes["timeoutSeconds"] = str(activity.timeout_seconds)
        element = Element(_el("CompensationScope"), attributes=attributes)
        body = element.add(_el("Body"))
        body.append(_activity_to_element(activity.body))
        for step, comp in activity.compensations.items():
            step_el = element.add(_el("CompensationFor"), step=step)
            step_el.append(_activity_to_element(comp))
        for code, handler in activity.fault_handlers.items():
            handler_el = element.add(_el("FaultHandler"))
            if code is not None:
                handler_el.attributes["fault"] = code.value
            handler_el.append(_activity_to_element(handler))
        if activity.compensation is not None:
            compensation = element.add(_el("Compensation"))
            compensation.append(_activity_to_element(activity.compensation))
        return element
    if isinstance(activity, Scope):
        attributes = {"name": activity.name}
        if activity.timeout_seconds is not None:
            attributes["timeoutSeconds"] = str(activity.timeout_seconds)
        if activity.compensate_on_fault:
            attributes["compensateOnFault"] = "true"
        element = Element(_el("Scope"), attributes=attributes)
        body = element.add(_el("Body"))
        body.append(_activity_to_element(activity.body))
        for code, handler in activity.fault_handlers.items():
            handler_el = element.add(_el("FaultHandler"))
            if code is not None:
                handler_el.attributes["fault"] = code.value
            handler_el.append(_activity_to_element(handler))
        if activity.compensation is not None:
            compensation = element.add(_el("Compensation"))
            compensation.append(_activity_to_element(activity.compensation))
        return element
    raise ProcessSerializationError(
        f"activity type {type(activity).__name__} is not serializable"
    )


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------


def parse_process_definition(source: str | Element) -> ProcessDefinition:
    """Parse an XML process document back into a ProcessDefinition."""
    root = parse_xml(source) if isinstance(source, str) else source
    if root.name != _el("Process"):
        raise ProcessSerializationError(f"not a process document: {root.name}")
    name = root.attributes.get("name")
    if not name:
        raise ProcessSerializationError("process document is missing its name")
    initial_variables: dict[str, Any] = {}
    variables_el = root.find(_el("Variables"))
    if variables_el is not None:
        for variable in variables_el.find_all(_el("Variable")):
            initial_variables[variable.attributes["name"]] = _parse_literal(
                variable.text, variable.attributes.get("type", "string")
            )
    activity_elements = [
        child for child in root.children if child.name != _el("Variables")
    ]
    if len(activity_elements) != 1:
        raise ProcessSerializationError("process document must have exactly one root activity")
    return ProcessDefinition(
        name, _element_to_activity(activity_elements[0]), initial_variables=initial_variables
    )


def _required_attr(element: Element, attribute: str) -> str:
    value = element.attributes.get(attribute)
    if value is None:
        raise ProcessSerializationError(
            f"{element.name.local} element is missing attribute {attribute!r}"
        )
    return value


def _element_to_activity(element: Element) -> Activity:
    local = element.name.local
    name = _required_attr(element, "name")
    if local == "Sequence":
        return Sequence(name, [_element_to_activity(child) for child in element.children])
    if local == "Flow":
        return Flow(name, [_element_to_activity(child) for child in element.children])
    if local == "Empty":
        return Empty(name)
    if local == "Assign":
        return Assign(name, _required_attr(element, "variable"),
                      expression=_required_attr(element, "expression"))
    if local == "Delay":
        return Delay(name, _required_attr(element, "seconds"))
    if local == "If":
        then_el = element.find(_el("Then"))
        if then_el is None or not then_el.children:
            raise ProcessSerializationError(f"If {name!r} has no Then branch")
        orelse = None
        else_el = element.find(_el("Else"))
        if else_el is not None and else_el.children:
            orelse = _element_to_activity(else_el.children[0])
        return IfElse(
            name,
            _required_attr(element, "condition"),
            then=_element_to_activity(then_el.children[0]),
            orelse=orelse,
        )
    if local == "While":
        if not element.children:
            raise ProcessSerializationError(f"While {name!r} has no body")
        return While(
            name,
            _required_attr(element, "condition"),
            body=_element_to_activity(element.children[0]),
            max_iterations=int(element.attributes.get("maxIterations", "10000")),
        )
    if local == "Invoke":
        inputs: dict[str, Any] = {}
        for input_el in element.find_all(_el("Input")):
            part = _required_attr(input_el, "part")
            value = _required_attr(input_el, "value")
            kind = input_el.attributes.get("kind", "literal")
            if kind == "expression":
                inputs[part] = Expression(value)
            else:
                inputs[part] = value  # "$var" references keep their prefix
        extract = {
            _required_attr(out, "variable"): _required_attr(out, "part")
            for out in element.find_all(_el("Output"))
        }
        timeout_text = element.attributes.get("timeoutSeconds")
        return Invoke(
            name,
            operation=_required_attr(element, "operation"),
            to=element.attributes.get("to"),
            service_type=element.attributes.get("serviceType"),
            inputs=inputs,
            extract=extract,
            output_variable=element.attributes.get("outputVariable"),
            timeout_seconds=float(timeout_text) if timeout_text is not None else None,
            padding_variable=element.attributes.get("paddingVariable"),
        )
    if local == "Receive":
        return Receive(name, variable=element.attributes.get("variable", "request"))
    if local == "Reply":
        if "variable" in element.attributes:
            return Reply(name, variable=element.attributes["variable"])
        return Reply(name, expression=_required_attr(element, "expression"))
    if local == "Throw":
        return Throw(name, FaultCode(_required_attr(element, "fault")),
                     element.attributes.get("reason", ""))
    if local == "Terminate":
        return Terminate(name, element.attributes.get("reason", "terminated by process"))
    if local == "Compensate":
        return Compensate(name, scope=element.attributes.get("scope"))
    if local == "CompensationScope":
        body_el = element.find(_el("Body"))
        if body_el is None or not body_el.children:
            raise ProcessSerializationError(f"CompensationScope {name!r} has no body")
        compensations: dict[str, Activity] = {}
        for step_el in element.find_all(_el("CompensationFor")):
            if not step_el.children:
                raise ProcessSerializationError(
                    f"CompensationScope {name!r} has an empty CompensationFor"
                )
            compensations[_required_attr(step_el, "step")] = _element_to_activity(
                step_el.children[0]
            )
        fault_handlers: dict[FaultCode | None, Activity] = {}
        for handler_el in element.find_all(_el("FaultHandler")):
            if not handler_el.children:
                raise ProcessSerializationError(
                    f"CompensationScope {name!r} has an empty fault handler"
                )
            code_text = handler_el.attributes.get("fault")
            code = FaultCode(code_text) if code_text else None
            fault_handlers[code] = _element_to_activity(handler_el.children[0])
        compensation = None
        compensation_el = element.find(_el("Compensation"))
        if compensation_el is not None and compensation_el.children:
            compensation = _element_to_activity(compensation_el.children[0])
        timeout_text = element.attributes.get("timeoutSeconds")
        return CompensationScope(
            name,
            body=_element_to_activity(body_el.children[0]),
            compensations=compensations,
            fault_handlers=fault_handlers,
            compensation=compensation,
            timeout_seconds=float(timeout_text) if timeout_text is not None else None,
        )
    if local == "Scope":
        body_el = element.find(_el("Body"))
        if body_el is None or not body_el.children:
            raise ProcessSerializationError(f"Scope {name!r} has no body")
        fault_handlers: dict[FaultCode | None, Activity] = {}
        for handler_el in element.find_all(_el("FaultHandler")):
            if not handler_el.children:
                raise ProcessSerializationError(f"Scope {name!r} has an empty fault handler")
            code_text = handler_el.attributes.get("fault")
            code = FaultCode(code_text) if code_text else None
            fault_handlers[code] = _element_to_activity(handler_el.children[0])
        compensation = None
        compensation_el = element.find(_el("Compensation"))
        if compensation_el is not None and compensation_el.children:
            compensation = _element_to_activity(compensation_el.children[0])
        timeout_text = element.attributes.get("timeoutSeconds")
        return Scope(
            name,
            body=_element_to_activity(body_el.children[0]),
            fault_handlers=fault_handlers,
            compensation=compensation,
            timeout_seconds=float(timeout_text) if timeout_text is not None else None,
            compensate_on_fault=element.attributes.get("compensateOnFault") == "true",
        )
    raise ProcessSerializationError(f"unknown activity element {local!r}")
