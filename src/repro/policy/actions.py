"""Adaptation actions.

The action vocabulary of WS-Policy4MASC, split across the two enforcement
layers exactly as in the paper:

- **process orchestration layer** (enacted by MASCAdaptationService):
  add / remove / replace an activity or activity block, suspend / resume /
  terminate the process instance, extend a pending timeout;
- **SOAP messaging layer** (enacted by the wsBus Adaptation Manager):
  invocation retries, Web services substitution, concurrent invocation of
  multiple equivalent services, skipping of activities.

Actions are declarative data; each knows which layer enforces it and how to
render itself to/from the XML policy dialect.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.orchestration import Activity, Invoke, Sequence

__all__ = [
    "ActionError",
    "AdaptationAction",
    "AdaptiveTimeoutAction",
    "AddActivityAction",
    "BulkheadAction",
    "BurnRateAlertAction",
    "CircuitBreakerAction",
    "CompensateInstanceAction",
    "ConcurrentInvokeAction",
    "DelayProcessAction",
    "ExtendTimeoutAction",
    "FederationAction",
    "IdempotencyAction",
    "InvokeSpec",
    "LoadLevelingAction",
    "LoadSheddingAction",
    "PreferBestAction",
    "QuarantineAction",
    "RemoveActivityAction",
    "ReplaceActivityAction",
    "ResilienceAction",
    "ResponseCacheAction",
    "ResumeProcessAction",
    "RetryAction",
    "SELECTION_STRATEGIES",
    "SelectionStrategyAction",
    "ShardRoutingAction",
    "SkipAction",
    "SloAction",
    "SubstituteAction",
    "SuspendProcessAction",
    "TerminateProcessAction",
    "TracingAction",
    "TrafficAction",
]


class ActionError(Exception):
    """An action specification is invalid or cannot be enacted."""


@dataclass(frozen=True)
class InvokeSpec:
    """Declarative description of a Web service call to insert.

    Either a concrete ``address`` or an abstract ``service_type`` (resolved
    through the registry / VEP binding at runtime — "the policy can specify
    a particular Web service or a set of criteria for dynamically selecting
    the best Web service from a directory").

    ``inputs`` maps message parts to ``$variable`` references or literals;
    ``outputs`` maps process variables to response parts — the "required
    parameters binding and value passing between base processes and their
    variation processes".
    """

    name: str
    operation: str
    service_type: str | None = None
    address: str | None = None
    inputs: dict[str, str] = field(default_factory=dict)
    outputs: dict[str, str] = field(default_factory=dict)
    timeout_seconds: float | None = 30.0

    def __post_init__(self) -> None:
        if self.service_type is None and self.address is None:
            raise ActionError(f"InvokeSpec {self.name!r} needs a serviceType or address")

    def to_activity(self) -> Invoke:
        return Invoke(
            name=self.name,
            operation=self.operation,
            to=self.address,
            service_type=self.service_type,
            inputs=dict(self.inputs),
            extract=dict(self.outputs),
            timeout_seconds=self.timeout_seconds,
        )


class AdaptationAction:
    """Base class: a single step of an adaptation policy."""

    #: Which middleware layer enforces this action.
    layer = "process"

    def describe(self) -> str:
        return type(self).__name__


# ---------------------------------------------------------------------------
# Process orchestration layer actions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AddActivityAction(AdaptationAction):
    """Insert a variation activity (or block) into the base process."""

    anchor: str
    position: str = "after"  # before | after | append
    invokes: tuple[InvokeSpec, ...] = ()
    block_name: str | None = None
    #: Variable seed values passed from the policy into the instance.
    bindings: dict[str, str] = field(default_factory=dict)

    layer = "process"

    def __post_init__(self) -> None:
        if self.position not in ("before", "after", "append"):
            raise ActionError(f"invalid position {self.position!r}")
        if not self.invokes:
            raise ActionError("AddActivityAction needs at least one InvokeSpec")

    def build_activity(self) -> Activity:
        activities = [spec.to_activity() for spec in self.invokes]
        if len(activities) == 1 and self.block_name is None:
            return activities[0]
        return Sequence(self.block_name or f"block:{self.anchor}", activities)

    def describe(self) -> str:
        names = ", ".join(spec.name for spec in self.invokes)
        return f"add [{names}] {self.position} {self.anchor!r}"


@dataclass(frozen=True)
class RemoveActivityAction(AdaptationAction):
    """Delete an activity or a contiguous block from the base process.

    A block "is specified using beginning and ending points": when
    ``block_end`` is given, every sibling from ``target`` through
    ``block_end`` inclusive is removed.
    """

    target: str
    block_end: str | None = None

    layer = "process"

    def describe(self) -> str:
        if self.block_end:
            return f"remove block {self.target!r}..{self.block_end!r}"
        return f"remove {self.target!r}"


@dataclass(frozen=True)
class ReplaceActivityAction(AdaptationAction):
    """Swap an activity for a variation activity/block."""

    target: str
    invokes: tuple[InvokeSpec, ...] = ()
    block_name: str | None = None
    bindings: dict[str, str] = field(default_factory=dict)

    layer = "process"

    def __post_init__(self) -> None:
        if not self.invokes:
            raise ActionError("ReplaceActivityAction needs at least one InvokeSpec")

    def build_activity(self) -> Activity:
        activities = [spec.to_activity() for spec in self.invokes]
        if len(activities) == 1 and self.block_name is None:
            return activities[0]
        return Sequence(self.block_name or f"replacement:{self.target}", activities)

    def describe(self) -> str:
        names = ", ".join(spec.name for spec in self.invokes)
        return f"replace {self.target!r} with [{names}]"


@dataclass(frozen=True)
class SuspendProcessAction(AdaptationAction):
    """Suspend the affected process instance (cross-layer coordination)."""

    layer = "process"

    def describe(self) -> str:
        return "suspend process instance"


@dataclass(frozen=True)
class ResumeProcessAction(AdaptationAction):
    """Resume the affected process instance."""

    layer = "process"

    def describe(self) -> str:
        return "resume process instance"


@dataclass(frozen=True)
class TerminateProcessAction(AdaptationAction):
    """Terminate the affected process instance."""

    reason: str = "terminated by adaptation policy"

    layer = "process"

    def describe(self) -> str:
        return f"terminate process instance ({self.reason})"


@dataclass(frozen=True)
class CompensateInstanceAction(AdaptationAction):
    """Compensate (saga-unwind) affected process instances.

    ``mode`` selects who drives the undo chain:

    - ``orchestration`` — the engine aborts the instance at its next
      activity boundary and the enclosing :class:`CompensationScope` runs
      the registered compensations in LIFO order;
    - ``choreography`` — the middleware sends each registered compensation
      as a wsBus invocation to the owning service directly, then
      terminates the instance (the engine never re-enters the process).

    ``scope`` restricts the unwind to one CompensationScope's steps;
    ``process`` restricts instance fan-out for instance-less events
    (e.g. SLO burn-rate alerts) to one process definition.
    """

    scope: str | None = None
    mode: str = "orchestration"  # orchestration | choreography
    process: str | None = None
    reason: str = "compensated by adaptation policy"

    layer = "process"

    def __post_init__(self) -> None:
        if self.mode not in ("orchestration", "choreography"):
            raise ActionError(f"unknown compensation mode {self.mode!r}")

    def describe(self) -> str:
        target = f" scope {self.scope!r}" if self.scope else ""
        return f"compensate process instance{target} ({self.mode}: {self.reason})"


@dataclass(frozen=True)
class DelayProcessAction(AdaptationAction):
    """Pause the affected process instance for a fixed interval.

    One of the paper's "relatively simple dynamic changes of process
    instances (e.g., ... delay/suspend/resume/terminate process)":
    suspend now, resume automatically after ``delay_seconds``.
    """

    delay_seconds: float = 10.0

    layer = "process"

    def __post_init__(self) -> None:
        if self.delay_seconds <= 0:
            raise ActionError(f"delay must be positive: {self.delay_seconds}")

    def describe(self) -> str:
        return f"delay process instance by {self.delay_seconds}s"


@dataclass(frozen=True)
class ExtendTimeoutAction(AdaptationAction):
    """Push out the calling activity's deadline before messaging-layer
    recovery retries ("increase its timeout interval to avoid the calling
    process timing out")."""

    extra_seconds: float = 10.0

    layer = "process"

    def describe(self) -> str:
        return f"extend pending timeout by {self.extra_seconds}s"


# ---------------------------------------------------------------------------
# SOAP messaging layer actions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryAction(AdaptationAction):
    """Re-deliver the failed request to the same target.

    ``delay_seconds`` is the pause between retry cycles;
    ``backoff_multiplier`` stretches it geometrically.
    """

    max_retries: int = 3
    delay_seconds: float = 2.0
    backoff_multiplier: float = 1.0
    #: Hard ceiling on the backed-off delay; None leaves it unbounded.
    max_delay_seconds: float | None = None
    #: Fraction of the delay randomized symmetrically around it (0.2 means
    #: ±20%) so independent retriers don't synchronize into bursts.
    jitter_fraction: float = 0.0

    layer = "messaging"

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ActionError(f"negative max_retries {self.max_retries}")
        if self.delay_seconds < 0:
            raise ActionError(f"negative delay {self.delay_seconds}")
        if self.max_delay_seconds is not None and self.max_delay_seconds < 0:
            raise ActionError(f"negative max_delay_seconds {self.max_delay_seconds}")
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ActionError(f"jitter_fraction must be in [0, 1): {self.jitter_fraction}")

    def delay_for_attempt(self, attempt: int, rng=None) -> float:
        """Delay before retry ``attempt`` (1-based).

        ``rng`` (a ``random.Random``, normally a named
        :class:`~repro.simulation.RandomSource` stream) supplies the
        jitter; without one the delay is the deterministic midpoint.
        """
        delay = self.delay_seconds * (self.backoff_multiplier ** max(0, attempt - 1))
        if self.max_delay_seconds is not None:
            delay = min(delay, self.max_delay_seconds)
        if rng is not None and self.jitter_fraction > 0.0 and delay > 0.0:
            delay *= 1.0 + self.jitter_fraction * (2.0 * rng.random() - 1.0)
        return max(0.0, delay)

    def describe(self) -> str:
        description = (
            f"retry up to {self.max_retries}x with {self.delay_seconds}s delay"
            + (f" (backoff x{self.backoff_multiplier})" if self.backoff_multiplier != 1.0 else "")
        )
        if self.max_delay_seconds is not None:
            description += f", capped at {self.max_delay_seconds}s"
        if self.jitter_fraction > 0.0:
            description += f", ±{self.jitter_fraction:.0%} jitter"
        return description


@dataclass(frozen=True)
class SubstituteAction(AdaptationAction):
    """Fail over to an equivalent service registered with the VEP.

    ``strategy``: ``backup`` (the explicitly configured backup address),
    ``best_response_time`` (QoS history), ``round_robin``, or ``registry``
    (any implementation of the contract from the UDDI registry).
    """

    strategy: str = "best_response_time"
    backup_address: str | None = None

    layer = "messaging"

    def __post_init__(self) -> None:
        if self.strategy not in ("backup", "best_response_time", "round_robin", "registry"):
            raise ActionError(f"unknown substitute strategy {self.strategy!r}")
        if self.strategy == "backup" and not self.backup_address:
            raise ActionError("substitute strategy 'backup' needs a backup_address")

    def describe(self) -> str:
        target = f" -> {self.backup_address}" if self.backup_address else ""
        return f"substitute ({self.strategy}){target}"


@dataclass(frozen=True)
class ConcurrentInvokeAction(AdaptationAction):
    """Broadcast the request to several equivalent services; first response
    wins and pending invocations are abandoned."""

    max_targets: int = 0  # 0 = all registered targets

    layer = "messaging"

    def describe(self) -> str:
        scope = "all targets" if self.max_targets == 0 else f"{self.max_targets} targets"
        return f"concurrent invocation of {scope}, first response wins"


@dataclass(frozen=True)
class QuarantineAction(AdaptationAction):
    """Temporarily exclude an endpoint from its VEPs' membership.

    The *preventive* counterpart of substitution: when monitoring predicts
    degradation (e.g. a worsening response-time trend), the endpoint is
    taken out of rotation before it starts producing faults, and restored
    after ``duration_seconds``.
    """

    duration_seconds: float = 60.0

    layer = "messaging"

    def __post_init__(self) -> None:
        if self.duration_seconds <= 0:
            raise ActionError(f"quarantine duration must be positive: {self.duration_seconds}")

    def describe(self) -> str:
        return f"quarantine endpoint for {self.duration_seconds}s"


@dataclass(frozen=True)
class PreferBestAction(AdaptationAction):
    """Re-order VEP members so the best-QoS endpoint is preferred.

    An *optimizing* action: no fault has occurred; the VEP's primary
    ordering is adjusted to the measured response times.
    """

    metric: str = "response_time"
    window: int = 50

    layer = "messaging"

    def describe(self) -> str:
        return f"prefer best endpoint by {self.metric}"


@dataclass(frozen=True)
class SkipAction(AdaptationAction):
    """Answer the caller with a synthetic success instead of invoking.

    Used for non-business-critical calls ("for the Logging service we have
    configured a skip policy since the functionality provided by the Logging
    service is not business critical").
    """

    reason: str = "activity skipped by policy"

    layer = "messaging"

    def describe(self) -> str:
        return f"skip invocation ({self.reason})"


# ---------------------------------------------------------------------------
# Resilience configuration assertions (messaging layer)
# ---------------------------------------------------------------------------


class ResilienceAction(AdaptationAction):
    """Base class of the resilience configuration vocabulary.

    These assertions don't repair one failed message; they configure the
    standing protection machinery of the bus (``repro.resilience``). They
    are declared in adaptation policies triggered by the conventional
    ``resilience.configure`` event and scope-matched against endpoints and
    VEPs, so thresholds stay policy-driven like every other MASC behavior.
    They can also appear in fault-triggered policies, in which case the
    Adaptation Manager (re)applies the configuration as a corrective side
    effect.
    """

    layer = "messaging"


@dataclass(frozen=True)
class CircuitBreakerAction(ResilienceAction):
    """Per-endpoint circuit breaker thresholds.

    The breaker opens when either ``consecutive_failures`` invocations fail
    in a row, or the failure rate over the last ``window`` calls (with at
    least ``min_calls`` observed) reaches ``failure_rate_threshold``. After
    ``open_seconds`` it admits up to ``half_open_probes`` probe requests;
    all probes succeeding closes it, any probe failing re-opens it.
    """

    failure_rate_threshold: float = 0.5
    window: int = 20
    min_calls: int = 5
    consecutive_failures: int = 5
    open_seconds: float = 30.0
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if not 0.0 < self.failure_rate_threshold <= 1.0:
            raise ActionError(
                f"failure_rate_threshold must be in (0, 1]: {self.failure_rate_threshold}"
            )
        if self.window < 1:
            raise ActionError(f"window must be positive: {self.window}")
        if self.min_calls < 1:
            raise ActionError(f"min_calls must be positive: {self.min_calls}")
        if self.consecutive_failures < 1:
            raise ActionError(
                f"consecutive_failures must be positive: {self.consecutive_failures}"
            )
        if self.open_seconds <= 0:
            raise ActionError(f"open_seconds must be positive: {self.open_seconds}")
        if self.half_open_probes < 1:
            raise ActionError(f"half_open_probes must be positive: {self.half_open_probes}")

    def describe(self) -> str:
        return (
            f"circuit breaker (rate>={self.failure_rate_threshold:g} over {self.window}, "
            f"{self.consecutive_failures} consecutive, open {self.open_seconds:g}s, "
            f"{self.half_open_probes} probes)"
        )


@dataclass(frozen=True)
class BulkheadAction(ResilienceAction):
    """Concurrency cap (with a bounded wait queue) for an endpoint or VEP.

    ``applies_to`` selects the partition: ``endpoint`` caps in-flight
    invocations of one member service, ``vep`` caps concurrent mediations
    of one virtual endpoint. Requests beyond ``max_concurrent`` wait in a
    queue of at most ``max_queue``; beyond that they are rejected with a
    retryable ``ServiceUnavailable`` fault.
    """

    max_concurrent: int = 16
    max_queue: int = 32
    applies_to: str = "endpoint"

    def __post_init__(self) -> None:
        if self.max_concurrent < 1:
            raise ActionError(f"max_concurrent must be positive: {self.max_concurrent}")
        if self.max_queue < 0:
            raise ActionError(f"negative max_queue {self.max_queue}")
        if self.applies_to not in ("endpoint", "vep"):
            raise ActionError(f"applies_to must be 'endpoint' or 'vep': {self.applies_to!r}")

    def describe(self) -> str:
        return (
            f"bulkhead per {self.applies_to} "
            f"(max {self.max_concurrent} in flight, queue {self.max_queue})"
        )


@dataclass(frozen=True)
class AdaptiveTimeoutAction(ResilienceAction):
    """Derive invocation timeouts from observed latency percentiles.

    The timeout for an endpoint becomes ``multiplier`` × the ``aggregate``
    response time over the QoS Measurement Service's last ``window``
    successful samples, clamped to ``[min_seconds, max_seconds]``. Until
    ``min_samples`` observations exist the configured fixed timeout is
    used unchanged.
    """

    aggregate: str = "p95"
    multiplier: float = 3.0
    min_seconds: float = 0.25
    max_seconds: float = 30.0
    window: int = 50
    min_samples: int = 5

    def __post_init__(self) -> None:
        if self.aggregate not in ("mean", "max", "p95", "p99"):
            raise ActionError(f"unknown aggregate {self.aggregate!r}")
        if self.multiplier <= 0:
            raise ActionError(f"multiplier must be positive: {self.multiplier}")
        if self.min_seconds <= 0 or self.max_seconds < self.min_seconds:
            raise ActionError(
                f"need 0 < min_seconds <= max_seconds: {self.min_seconds}, {self.max_seconds}"
            )
        if self.window < 1:
            raise ActionError(f"window must be positive: {self.window}")
        if self.min_samples < 1:
            raise ActionError(f"min_samples must be positive: {self.min_samples}")

    def describe(self) -> str:
        return (
            f"adaptive timeout = {self.multiplier:g} x {self.aggregate} "
            f"over {self.window} samples, clamped [{self.min_seconds:g}, {self.max_seconds:g}]s"
        )


@dataclass(frozen=True)
class LoadSheddingAction(ResilienceAction):
    """Bus-wide admission control for graceful degradation under overload.

    New mediations are rejected with a retryable ``ServiceUnavailable``
    fault while more than ``max_inflight`` requests are being mediated, or
    while the retry queue is deeper than ``max_retry_queue_depth`` (a
    deep retry backlog means the fleet is already struggling; taking on
    more work would only grow the collapse). Only *unscoped* policies
    configure shedding — it protects the whole bus, not one endpoint.
    """

    max_inflight: int = 64
    max_retry_queue_depth: int | None = None

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ActionError(f"max_inflight must be positive: {self.max_inflight}")
        if self.max_retry_queue_depth is not None and self.max_retry_queue_depth < 0:
            raise ActionError(
                f"negative max_retry_queue_depth {self.max_retry_queue_depth}"
            )

    def describe(self) -> str:
        description = f"shed load beyond {self.max_inflight} in-flight mediations"
        if self.max_retry_queue_depth is not None:
            description += f" or retry depth {self.max_retry_queue_depth}"
        return description


# ---------------------------------------------------------------------------
# Traffic-shaping assertions (messaging layer)
# ---------------------------------------------------------------------------


class TrafficAction(AdaptationAction):
    """Base class of the traffic-shaping vocabulary.

    Like the resilience assertions these configure standing machinery of
    the bus (``repro.traffic``) rather than repair one failed message.
    They are declared in adaptation policies carrying the conventional
    ``traffic.configure`` trigger and scope-matched against service types
    and operations, so caching, idempotency and leveling behavior stays
    policy-driven like every other MASC behavior.
    """

    layer = "messaging"


@dataclass(frozen=True)
class IdempotencyAction(TrafficAction):
    """Stamp scope-matched requests with an idempotency key.

    The VEP derives the key from the envelope's message ID at mediation
    entry; header-preserving copies carry it through every redelivery path
    (retry, dead-letter replay, broadcast, substitution, choreography
    compensation), and the service container's dedupe store then executes
    each key at most once, answering duplicates with the recorded first
    response — recovery "must not blindly re-invoke constituents".
    """

    def describe(self) -> str:
        return "stamp idempotency keys for exactly-once execution"


@dataclass(frozen=True)
class ResponseCacheAction(TrafficAction):
    """Cache-aside response cache for scope-matched operations.

    Successful responses are kept for ``ttl_seconds`` (at most
    ``max_entries``, LRU-evicted) keyed by service type, operation and
    request body, so repeated reads are answered at the VEP without
    touching a member. ``invalidate_on`` lists MASC event names (fnmatch
    patterns, e.g. ``sloBurnRateExceeded`` or ``catalogChanged``) that
    flush the cache — policy-driven invalidation wired to the same event
    fabric that drives adaptation.
    """

    ttl_seconds: float = 30.0
    max_entries: int = 256
    invalidate_on: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.ttl_seconds <= 0:
            raise ActionError(f"ttl_seconds must be positive: {self.ttl_seconds}")
        if self.max_entries < 1:
            raise ActionError(f"max_entries must be positive: {self.max_entries}")
        for pattern in self.invalidate_on:
            if not pattern:
                raise ActionError("invalidate_on patterns must be non-empty")

    def describe(self) -> str:
        description = (
            f"cache responses for {self.ttl_seconds:g}s "
            f"(max {self.max_entries} entries)"
        )
        if self.invalidate_on:
            description += f", invalidated on {', '.join(self.invalidate_on)}"
        return description


@dataclass(frozen=True)
class LoadLevelingAction(TrafficAction):
    """Queue-based load leveling + token-bucket throttling for a VEP.

    The gentler alternative to shed-only admission control: a burst of up
    to ``burst`` requests passes immediately, then arrivals are smoothed
    to ``rate_per_second`` by *delaying* them in a bounded virtual queue
    instead of rejecting them outright. Only past the queue's limits —
    more than ``max_queue`` requests already waiting, or a computed delay
    beyond ``max_wait_seconds`` — is a request rejected with a retryable
    ``ServiceUnavailable`` fault.
    """

    rate_per_second: float = 50.0
    burst: int = 10
    max_queue: int = 64
    max_wait_seconds: float = 5.0

    def __post_init__(self) -> None:
        if self.rate_per_second <= 0:
            raise ActionError(
                f"rate_per_second must be positive: {self.rate_per_second}"
            )
        if self.burst < 1:
            raise ActionError(f"burst must be positive: {self.burst}")
        if self.max_queue < 0:
            raise ActionError(f"negative max_queue {self.max_queue}")
        if self.max_wait_seconds < 0:
            raise ActionError(f"negative max_wait_seconds {self.max_wait_seconds}")

    def describe(self) -> str:
        return (
            f"level load to {self.rate_per_second:g}/s (burst {self.burst}, "
            f"queue {self.max_queue}, wait <= {self.max_wait_seconds:g}s)"
        )


# ---------------------------------------------------------------------------
# Federation assertions (fleet plane)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FederationAction(AdaptationAction):
    """Fleet-plane tuning for a federated multi-bus deployment.

    Declared in adaptation policies carrying the conventional
    ``federation.configure`` trigger (the same load-time-scan convention
    as ``resilience.configure`` and ``traffic.configure``); the
    :class:`~repro.federation.FederationService` materializes it into the
    fleet's membership, gossip and leader-election machinery. With no
    federation policies loaded the fleet runs on its built-in defaults.
    """

    heartbeat_interval_seconds: float = 0.5
    #: A bus is suspected dead after ``heartbeat_interval_seconds`` times
    #: this multiplier without a heartbeat.
    suspicion_multiplier: float = 3.0
    gossip_interval_seconds: float = 2.0
    #: Peers each bus exchanges QoS digests with per gossip round.
    gossip_fanout: int = 1
    #: Leadership lease duration; a dead leader's lease must expire
    #: before a follower may take over.
    lease_seconds: float = 3.0
    #: Virtual nodes per bus on the consistent-hash ring.
    virtual_nodes: int = 32

    layer = "federation"

    def __post_init__(self) -> None:
        if self.heartbeat_interval_seconds <= 0:
            raise ActionError(
                f"heartbeat_interval_seconds must be positive: "
                f"{self.heartbeat_interval_seconds}"
            )
        if self.suspicion_multiplier <= 1.0:
            raise ActionError(
                f"suspicion_multiplier must exceed 1: {self.suspicion_multiplier}"
            )
        if self.gossip_interval_seconds <= 0:
            raise ActionError(
                f"gossip_interval_seconds must be positive: {self.gossip_interval_seconds}"
            )
        if self.gossip_fanout < 1:
            raise ActionError(f"gossip_fanout must be positive: {self.gossip_fanout}")
        if self.lease_seconds <= 0:
            raise ActionError(f"lease_seconds must be positive: {self.lease_seconds}")
        if self.virtual_nodes < 1:
            raise ActionError(f"virtual_nodes must be positive: {self.virtual_nodes}")

    def describe(self) -> str:
        return (
            f"federation (heartbeat {self.heartbeat_interval_seconds:g}s "
            f"x{self.suspicion_multiplier:g}, gossip {self.gossip_interval_seconds:g}s "
            f"fanout {self.gossip_fanout}, lease {self.lease_seconds:g}s)"
        )


@dataclass(frozen=True)
class ShardRoutingAction(AdaptationAction):
    """Pin scope-matched VEPs to a named bus, overriding the hash ring.

    The policy override of consistent-hash placement: VEPs whose name
    matches ``vep_pattern`` (fnmatch) are owned by ``bus`` as long as
    that bus is alive; when it is not, placement falls back to the ring.
    """

    bus: str = ""
    vep_pattern: str = "*"

    layer = "federation"

    def __post_init__(self) -> None:
        if not self.bus:
            raise ActionError("ShardRoutingAction needs a bus name")
        if not self.vep_pattern:
            raise ActionError("vep_pattern must be non-empty")

    def describe(self) -> str:
        return f"route VEPs matching {self.vep_pattern!r} to bus {self.bus!r}"


# ---------------------------------------------------------------------------
# SLO assertions and observability-driven adaptation (messaging layer)
# ---------------------------------------------------------------------------


#: Mirror of :data:`repro.wsbus.selection.STRATEGIES`; duplicated here so
#: the policy vocabulary stays importable without the messaging layer
#: (a consistency test asserts the two tuples stay identical).
SELECTION_STRATEGIES = (
    "round_robin",
    "best_response_time",
    "best_reliability",
    "random",
    "primary",
    "content",
)


@dataclass(frozen=True)
class SloAction(AdaptationAction):
    """A Service Level Objective over a scope of endpoints.

    Declared in adaptation policies carrying the conventional
    ``observability.slo`` trigger (the same load-time-scan convention as
    ``resilience.configure``); the bus's
    :class:`~repro.observability.slo.SloService` materializes one
    objective per scope-matched endpoint and evaluates it continuously
    against the shared :class:`~repro.observability.MetricsRegistry`.

    ``availability_target`` is a percentage (e.g. ``99.0``); the **error
    budget** is its complement (1% of requests may fail). An optional
    latency SLO is expressed as ``latency_percentile`` (``p50``/``p95``/
    ``p99``) ≤ ``latency_target_seconds``. ``window_seconds`` is the SLO
    period over which the budget is accounted.
    """

    name: str = "slo"
    availability_target: float = 99.0
    latency_target_seconds: float | None = None
    latency_percentile: str = "p99"
    window_seconds: float = 3600.0

    layer = "messaging"

    def __post_init__(self) -> None:
        if not 0.0 < self.availability_target < 100.0:
            raise ActionError(
                f"availability_target must be in (0, 100): {self.availability_target}"
            )
        if self.latency_target_seconds is not None and self.latency_target_seconds <= 0:
            raise ActionError(
                f"latency_target_seconds must be positive: {self.latency_target_seconds}"
            )
        if self.latency_percentile not in ("p50", "p95", "p99"):
            raise ActionError(f"unknown latency_percentile {self.latency_percentile!r}")
        if self.window_seconds <= 0:
            raise ActionError(f"window_seconds must be positive: {self.window_seconds}")

    @property
    def error_budget(self) -> float:
        """The tolerable failure fraction (1 - availability)."""
        return 1.0 - self.availability_target / 100.0

    def describe(self) -> str:
        description = (
            f"SLO {self.name!r}: availability >= {self.availability_target:g}% "
            f"over {self.window_seconds:g}s"
        )
        if self.latency_target_seconds is not None:
            description += (
                f", {self.latency_percentile} <= {self.latency_target_seconds:g}s"
            )
        return description


@dataclass(frozen=True)
class BurnRateAlertAction(AdaptationAction):
    """Multi-window burn-rate alerting thresholds for an SLO.

    Attached alongside an :class:`SloAction` in the same
    ``observability.slo`` policy. The burn rate is the observed failure
    rate divided by the error budget (1.0 = budget exactly consumed by
    the end of the SLO window). The evaluator fires
    ``sloBurnRateExceeded`` when **both** the fast and the slow window
    burn exceed their thresholds (the fast window gives reaction speed,
    the slow window suppresses blips), and ``sloRecovered`` once the fast
    window drops back under 1.0.
    """

    fast_window_seconds: float = 60.0
    slow_window_seconds: float = 300.0
    fast_burn_threshold: float = 14.0
    slow_burn_threshold: float = 2.0
    evaluation_interval_seconds: float = 5.0
    min_requests: int = 10

    layer = "messaging"

    def __post_init__(self) -> None:
        if self.fast_window_seconds <= 0 or self.slow_window_seconds <= 0:
            raise ActionError("burn-rate windows must be positive")
        if self.fast_window_seconds > self.slow_window_seconds:
            raise ActionError(
                f"fast window ({self.fast_window_seconds:g}s) must not exceed "
                f"slow window ({self.slow_window_seconds:g}s)"
            )
        if self.fast_burn_threshold <= 0 or self.slow_burn_threshold <= 0:
            raise ActionError("burn thresholds must be positive")
        if self.evaluation_interval_seconds <= 0:
            raise ActionError(
                f"evaluation_interval_seconds must be positive: "
                f"{self.evaluation_interval_seconds}"
            )
        if self.min_requests < 1:
            raise ActionError(f"min_requests must be positive: {self.min_requests}")

    def describe(self) -> str:
        return (
            f"burn-rate alert (fast {self.fast_burn_threshold:g}x over "
            f"{self.fast_window_seconds:g}s, slow {self.slow_burn_threshold:g}x over "
            f"{self.slow_window_seconds:g}s, every {self.evaluation_interval_seconds:g}s)"
        )


@dataclass(frozen=True)
class TracingAction(AdaptationAction):
    """Head-based trace sampling for the distributed-tracing tier.

    Declared in adaptation policies carrying the conventional
    ``observability.tracing`` trigger (the same load-time-scan convention
    as ``observability.slo``); the bus's
    :class:`~repro.observability.sampling.TracingService` materializes it
    into a :class:`~repro.observability.sampling.TraceSampler` on the
    active tracer. ``sample_rate`` is the fraction of new traces recorded
    (decided deterministically from the trace id, so the same seed samples
    the same traces regardless of ``--jobs``); faults and SLO violations
    can *promote* an unsampled trace after the fact so the interesting
    traces are never the ones thrown away. With no tracing policy loaded
    every trace is recorded — and simulation results are byte-identical
    either way, because sampling only filters what is exported.
    """

    sample_rate: float = 1.0
    always_sample_faults: bool = True
    always_sample_slo_violations: bool = True

    layer = "messaging"

    def __post_init__(self) -> None:
        if not 0.0 <= self.sample_rate <= 1.0:
            raise ActionError(
                f"sample_rate must be within [0, 1]: {self.sample_rate}"
            )

    def describe(self) -> str:
        promotions = [
            label
            for label, enabled in (
                ("faults", self.always_sample_faults),
                ("slo-violations", self.always_sample_slo_violations),
            )
            if enabled
        ]
        suffix = f" + {'/'.join(promotions)}" if promotions else ""
        return f"sample {self.sample_rate:.0%} of traces{suffix}"


@dataclass(frozen=True)
class SelectionStrategyAction(AdaptationAction):
    """Switch the selection strategy of scope-matched VEPs.

    The observability-driven adaptation of the SLO loop: a policy
    triggered by ``sloBurnRateExceeded`` can move a VEP from, say,
    ``round_robin`` to ``best_reliability`` so traffic drains away from
    the members burning the error budget.
    """

    strategy: str = "best_reliability"

    layer = "messaging"

    def __post_init__(self) -> None:
        if self.strategy not in SELECTION_STRATEGIES:
            raise ActionError(
                f"unknown selection strategy {self.strategy!r}; "
                f"expected one of {SELECTION_STRATEGIES}"
            )

    def describe(self) -> str:
        return f"switch selection strategy to {self.strategy}"
