"""SCM testbed assembly.

Mirrors the paper's experimental setup: SCM backend services on one
(simulated) server, the workload generator and wsBus on the client side,
everything connected by a fast LAN. Retailers A-D get different processing
and fault profiles so that their direct reliability/availability figures
spread the way Table 1's do.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.casestudies.scm.services import (
    ConfigurationService,
    LoggingFacilityService,
    ManufacturerService,
    RetailerService,
    WarehouseService,
)
from repro.faultinjection import (
    ApplicationFaultInjector,
    AvailabilityFaultInjector,
    EndpointFaultProfile,
    FlappingEndpointInjector,
    LatencySpikeInjector,
    QoSDegradationInjector,
)
from repro.services import ProcessingModel, ServiceContainer, ServiceRegistry
from repro.simulation import Environment, RandomSource
from repro.transport import LatencyModel, Network

__all__ = [
    "SCMDeployment",
    "STORM_APPLICATION_FAULT_RATES",
    "STORM_DEGRADATION_PROFILES",
    "TABLE1_DEGRADATION_PROFILES",
    "TABLE1_FAULT_PROFILES",
    "build_scm_deployment",
]

RETAILER_NAMES = ("A", "B", "C", "D")

#: Per-retailer availability profiles for the Table 1 experiment. MTTR is
#: kept constant; MTBF is chosen so the *nominal* availability of each
#: direct configuration lands near the paper's measured values
#: (A 0.952, B 0.992, C 0.998, D 0.983).
TABLE1_FAULT_PROFILES: dict[str, tuple[float, float]] = {
    "A": (200.0, 10.0),  # 0.952
    "B": (620.0, 5.0),   # 0.992
    "C": (2495.0, 5.0),  # 0.998
    "D": (289.0, 5.0),   # 0.983
}

#: Per-retailer QoS-degradation profiles (mean gap, mean duration) in
#: seconds. During a degradation episode the retailer's added delay exceeds
#: the client timeout, so requests fail as Timeout faults without the
#: service counting as "down" — which is why the paper's failure rates
#: (e.g. Retailer B: 81/1000) exceed what its availability (0.992) alone
#: would produce.
TABLE1_DEGRADATION_PROFILES: dict[str, tuple[float, float]] = {
    "A": (150.0, 10.0),
    "B": (130.0, 10.0),
    "C": (660.0, 10.0),
    "D": (125.0, 10.0),
}

#: Per-retailer application-fault probabilities for the Table 1 experiment.
#: These produce fast ``ServiceFailure`` replies ("remote applications can
#: produce unexpected results"), which is what lets a retailer's failure
#: rate exceed what its downtime alone explains — exactly the relationship
#: in the paper's Table 1 (Retailer B: 81 failures/1000 at 0.992
#: availability). Tuned so the failure columns land near the paper's:
#: A ≈ 105, B ≈ 81, C ≈ 17, D ≈ 91 per 1000.
TABLE1_APPLICATION_FAULT_RATES: dict[str, float] = {
    "A": 0.060,
    "B": 0.073,
    "C": 0.015,
    "D": 0.075,
}

#: Fault-storm degradation profiles (mean gap, mean duration): much more
#: frequent and longer episodes than Table 1's, concentrated on Retailer A.
#: Retailer C is deliberately left healthy so failover has somewhere to go.
STORM_DEGRADATION_PROFILES: dict[str, tuple[float, float]] = {
    "A": (40.0, 15.0),
}

#: Fault-storm application-fault probabilities. Retailer B misbehaves at
#: the application layer on top of its latency spikes.
STORM_APPLICATION_FAULT_RATES: dict[str, float] = {
    "A": 0.10,
    "B": 0.12,
    "D": 0.08,
}


@dataclass
class SCMDeployment:
    """Everything the SCM experiments need, fully wired."""

    env: Environment
    random_source: RandomSource
    network: Network
    container: ServiceContainer
    registry: ServiceRegistry
    retailers: dict[str, RetailerService] = field(default_factory=dict)
    warehouses: dict[str, WarehouseService] = field(default_factory=dict)
    manufacturers: dict[str, ManufacturerService] = field(default_factory=dict)
    logging: LoggingFacilityService | None = None
    configuration: ConfigurationService | None = None
    availability_injector: AvailabilityFaultInjector | None = None
    degradation_injector: QoSDegradationInjector | None = None
    application_fault_injector: ApplicationFaultInjector | None = None
    latency_spike_injector: LatencySpikeInjector | None = None
    flapping_injector: FlappingEndpointInjector | None = None

    @property
    def retailer_addresses(self) -> list[str]:
        return [self.retailers[name].address for name in sorted(self.retailers)]

    def inject_table1_faults(
        self, profiles: dict[str, tuple[float, float]] | None = None
    ) -> None:
        """Start availability fault injection against all retailers."""
        profiles = profiles or TABLE1_FAULT_PROFILES
        self.availability_injector = AvailabilityFaultInjector(
            self.env, self.network, self.random_source.fork("availability")
        )
        for name, (mtbf, mttr) in profiles.items():
            retailer = self.retailers[name]
            self.availability_injector.inject(
                EndpointFaultProfile(
                    address=retailer.address,
                    mean_time_between_failures=mtbf,
                    mean_time_to_recover=mttr,
                )
            )

    def inject_degradations(
        self,
        profiles: dict[str, tuple[float, float]] | None = None,
        added_delay: float = 8.0,
    ) -> None:
        """Start QoS-degradation injection against all retailers.

        The default added delay exceeds typical client timeouts so a
        degraded retailer manifests as Timeout faults (the paper's
        "introduced delays" causing QoS-degradation events).
        """
        profiles = profiles or TABLE1_DEGRADATION_PROFILES
        self.degradation_injector = QoSDegradationInjector(
            self.env, self.network, self.random_source.fork("degradation")
        )
        for name, (mean_gap, mean_duration) in profiles.items():
            retailer = self.retailers.get(name)
            if retailer is not None:
                self.degradation_injector.inject(
                    retailer.address, mean_gap, mean_duration, added_delay
                )

    def inject_application_faults(
        self, rates: dict[str, float] | None = None
    ) -> None:
        """Start probabilistic application-fault injection at retailers."""
        rates = rates or TABLE1_APPLICATION_FAULT_RATES
        self.application_fault_injector = ApplicationFaultInjector(
            self.env, self.network, self.random_source.fork("appfaults")
        )
        for name, rate in rates.items():
            retailer = self.retailers.get(name)
            if retailer is not None:
                self.application_fault_injector.inject(retailer.address, rate)

    def inject_table1_mix(self) -> None:
        """The full Table 1 fault mix: downtime windows + application faults."""
        self.inject_table1_faults()
        self.inject_application_faults()

    def inject_fault_storm(
        self,
        degradation_delay: float = 8.0,
        spike_period: float = 30.0,
        spike_duration: float = 10.0,
        spike_delay: float = 8.0,
        flap_up_seconds: float = 12.0,
        flap_down_seconds: float = 8.0,
    ) -> None:
        """A harsh, mostly deterministic fault mix for resilience ablations.

        Three of the four retailers misbehave simultaneously: Retailer A
        suffers long QoS-degradation episodes, Retailer B gets periodic
        latency spikes plus application faults, Retailer D flaps up and
        down on a fixed cycle. Retailer C stays healthy so adaptive
        failover always has a good target. The spike and flap schedules
        are fixed; the degradation/application streams come from named
        :class:`~repro.simulation.RandomSource` forks, so the whole storm
        is reproducible for a given seed.
        """
        self.inject_degradations(
            profiles=STORM_DEGRADATION_PROFILES, added_delay=degradation_delay
        )
        self.inject_application_faults(rates=STORM_APPLICATION_FAULT_RATES)
        self.latency_spike_injector = LatencySpikeInjector(self.env, self.network)
        if "B" in self.retailers:
            self.latency_spike_injector.inject(
                self.retailers["B"].address,
                period_seconds=spike_period,
                spike_duration_seconds=spike_duration,
                added_delay_seconds=spike_delay,
                start_after=5.0,
            )
        self.flapping_injector = FlappingEndpointInjector(self.env, self.network)
        if "D" in self.retailers:
            self.flapping_injector.inject(
                self.retailers["D"].address,
                up_seconds=flap_up_seconds,
                down_seconds=flap_down_seconds,
                start_after=3.0,
            )


def build_scm_deployment(
    seed: int = 0,
    latency: LatencyModel | None = None,
    initial_stock: int = 10_000,
    retailer_count: int = 4,
    log_events: bool = True,
) -> SCMDeployment:
    """Deploy the complete SCM application on a fresh simulation.

    ``initial_stock`` defaults high so reliability experiments measure
    middleware behaviour, not stockouts; inventory experiments lower it.
    """
    env = Environment()
    random_source = RandomSource(seed)
    network = Network(env, random_source, latency=latency)
    container = ServiceContainer(env, network, random_source)
    registry = ServiceRegistry()
    deployment = SCMDeployment(
        env=env,
        random_source=random_source,
        network=network,
        container=container,
        registry=registry,
    )

    logging = LoggingFacilityService(
        env,
        "LoggingFacility",
        "http://scm/logging",
        processing=ProcessingModel(base_seconds=0.002),
    )
    container.deploy(logging)
    registry.register("LoggingFacility", logging.name, logging.address)
    deployment.logging = logging

    for index, warehouse_name in enumerate(("WA", "WB", "WC")):
        manufacturer = ManufacturerService(
            env,
            f"M{warehouse_name[1]}",
            f"http://scm/manufacturer{warehouse_name[1]}",
            processing=ProcessingModel(base_seconds=0.004),
            lead_time_seconds=5.0 + index,
        )
        container.deploy(manufacturer)
        registry.register("Manufacturer", manufacturer.name, manufacturer.address)
        deployment.manufacturers[warehouse_name[1]] = manufacturer

        warehouse = WarehouseService(
            env,
            warehouse_name,
            f"http://scm/warehouse{warehouse_name[1]}",
            processing=ProcessingModel(base_seconds=0.003),
            manufacturer_address=manufacturer.address,
            initial_stock=initial_stock,
        )
        container.deploy(warehouse)
        registry.register("Warehouse", warehouse.name, warehouse.address)
        deployment.warehouses[warehouse_name] = warehouse

    warehouse_addresses = [
        deployment.warehouses[name].address for name in ("WA", "WB", "WC")
    ]
    # Retailers differ slightly in processing speed (different "vendors").
    processing_profiles = {
        "A": ProcessingModel(base_seconds=0.008, per_kb_seconds=0.0004),
        "B": ProcessingModel(base_seconds=0.006, per_kb_seconds=0.0003),
        "C": ProcessingModel(base_seconds=0.005, per_kb_seconds=0.0003),
        "D": ProcessingModel(base_seconds=0.007, per_kb_seconds=0.0004),
    }
    for name in RETAILER_NAMES[:retailer_count]:
        retailer = RetailerService(
            env,
            f"Retailer{name}",
            f"http://scm/retailer{name}",
            processing=processing_profiles.get(name, ProcessingModel()),
            warehouse_addresses=warehouse_addresses,
            logging_address=logging.address,
            log_events=log_events,
        )
        container.deploy(retailer)
        registry.register("Retailer", retailer.name, retailer.address)
        deployment.retailers[name] = retailer

    configuration = ConfigurationService(
        env,
        "Configuration",
        "http://scm/configuration",
        processing=ProcessingModel(base_seconds=0.002),
        registry=registry,
    )
    container.deploy(configuration)
    registry.register("Configuration", configuration.name, configuration.address)
    deployment.configuration = configuration
    return deployment
