"""Counters and latency histograms.

A :class:`MetricsRegistry` is a flat namespace of named instruments:

- :class:`Counter` — a monotonically increasing count (requests served,
  violations detected, retries attempted);
- :class:`Histogram` — a distribution of observations (VEP mediation
  latency, instance durations), keeping exact running aggregates plus a
  bounded window of recent samples for percentiles.

Like the tracer, the default everywhere is the no-op
:data:`NULL_METRICS`; instrumented code guards on ``metrics.enabled``
before building metric names so the disabled path allocates nothing.
"""

from __future__ import annotations

from collections import deque

__all__ = ["Counter", "Histogram", "MetricsRegistry", "NULL_METRICS", "NullMetrics"]


class Counter:
    """A named monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Histogram:
    """A named distribution with exact aggregates + windowed percentiles.

    ``count``/``total``/``min``/``max`` cover *every* observation ever
    made; percentiles are computed over the most recent ``window``
    samples so memory stays bounded under production-scale traffic.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_recent")

    def __init__(self, name: str, window: int = 8192) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._recent: deque[float] = deque(maxlen=window)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self._recent.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0–100) of the recent window."""
        if not self._recent:
            return 0.0
        ordered = sorted(self._recent)
        index = min(len(ordered) - 1, max(0, round(q / 100.0 * (len(ordered) - 1))))
        return ordered[index]

    def summary(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
        }


class MetricsRegistry:
    """A namespace of counters and histograms, created on first use."""

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def histogram(self, name: str, window: int = 8192) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name, window=window)
        return histogram

    # -- reporting -----------------------------------------------------------

    def snapshot(self) -> dict:
        """All instrument values as plain data (experiment reports)."""
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "histograms": {
                name: h.summary() for name, h in sorted(self._histograms.items())
            },
        }

    def render(self) -> str:
        """A human-readable dump of every instrument."""
        lines = []
        for name, counter in sorted(self._counters.items()):
            lines.append(f"{name}: {counter.value}")
        for name, histogram in sorted(self._histograms.items()):
            s = histogram.summary()
            lines.append(
                f"{name}: n={s['count']} mean={s['mean']:.6f} "
                f"p95={s['p95']:.6f} max={s['max']:.6f}"
            )
        return "\n".join(lines)


class _NullInstrument:
    """Shared no-op counter/histogram."""

    __slots__ = ()

    name = "null"
    value = 0
    count = 0
    total = 0.0
    mean = 0.0
    min = None
    max = None

    def inc(self, amount: int = 1) -> None:
        return None

    def observe(self, value: float) -> None:
        return None

    def percentile(self, q: float) -> float:
        return 0.0

    def summary(self) -> dict:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """The default, disabled registry: hands out a shared no-op."""

    enabled = False

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, window: int = 8192) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def snapshot(self) -> dict:
        return {"counters": {}, "histograms": {}}

    def render(self) -> str:
        return ""


NULL_METRICS = NullMetrics()
