"""Ablation: retry policy parameters (count and delay).

The paper's recovery policy fixes "three retries with a delay between retry
cycles of two seconds" before failing over. This ablation sweeps the retry
budget and shows the trade-off the numbers encode: more retries improve
reliability against transient faults up to a point, while inflating the
recovery-path latency.
"""

from __future__ import annotations

from conftest import run_vep_configuration
from repro.metrics import Table

RETRY_BUDGETS = (0, 1, 3, 6)


def sweep_retries():
    rows = []
    for max_retries in RETRY_BUDGETS:
        row, bus, result = run_vep_configuration(
            seed=53, clients=4, requests=150, max_retries=max_retries, retry_delay=2.0
        )
        recovered = sum(1 for outcome in bus.adaptation.outcomes if outcome.recovered)
        retried_ok = bus.retry_queue.redeliveries_succeeded
        rtts = sorted(record.duration for record in result.successes)
        p99 = rtts[int(0.99 * (len(rtts) - 1))]
        rows.append(
            {
                "max_retries": max_retries,
                "failures_per_1000": row.failures_per_1000,
                "recovered": recovered,
                "retry_successes": retried_ok,
                "p99_rtt": p99,
            }
        )
    return rows


def test_retry_budget_ablation(benchmark):
    rows = benchmark.pedantic(sweep_retries, rounds=1, iterations=1)

    table = Table(
        ["Max retries", "Failures/1000", "Recoveries", "via retry", "p99 RTT (s)"],
        title="Ablation — retry budget (delay fixed at 2 s, failover enabled)",
    )
    for row in rows:
        table.add_row(
            [
                row["max_retries"],
                f"{row['failures_per_1000']:.0f}",
                row["recovered"],
                row["retry_successes"],
                f"{row['p99_rtt']:.2f}",
            ]
        )
    print()
    print(table.render())

    by_budget = {row["max_retries"]: row for row in rows}
    # Failover keeps reliability high everywhere; nothing degrades much.
    for row in rows:
        assert row["failures_per_1000"] <= 20
    # Retries only ever help redeliveries succeed when allowed.
    assert by_budget[0]["retry_successes"] == 0
    assert by_budget[3]["retry_successes"] >= 1
    # A bigger retry budget stretches the recovery tail.
    assert by_budget[6]["p99_rtt"] >= by_budget[0]["p99_rtt"]


def test_retry_delay_ablation(benchmark):
    """Longer inter-retry delays survive longer outages per retry budget,
    at the cost of recovery latency."""

    def sweep_delays():
        rows = []
        for delay in (0.5, 2.0, 8.0):
            row, bus, result = run_vep_configuration(
                seed=59, clients=4, requests=150, max_retries=3, retry_delay=delay
            )
            recovery_times = [
                record.duration for record in result.successes if record.duration > 1.0
            ]
            rows.append(
                {
                    "delay": delay,
                    "failures_per_1000": row.failures_per_1000,
                    "slow_successes": len(recovery_times),
                    "max_rtt": max((record.duration for record in result.successes), default=0),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep_delays, rounds=1, iterations=1)
    table = Table(
        ["Retry delay (s)", "Failures/1000", "Recovered-slow successes", "Max RTT (s)"],
        title="Ablation — retry delay (3 retries, failover enabled)",
    )
    for row in rows:
        table.add_row(
            [
                row["delay"],
                f"{row['failures_per_1000']:.0f}",
                row["slow_successes"],
                f"{row['max_rtt']:.2f}",
            ]
        )
    print()
    print(table.render())
    # The worst-case RTT grows with the retry delay.
    assert rows[-1]["max_rtt"] > rows[0]["max_rtt"]
    for row in rows:
        assert row["failures_per_1000"] <= 20
