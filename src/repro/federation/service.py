"""The Federation Service: policy-driven fleet configuration.

Reads the federation vocabulary of WS-Policy4MASC
(:class:`~repro.policy.actions.FederationAction`,
:class:`~repro.policy.actions.ShardRoutingAction`) out of the policy
repository. Configuration policies use the conventional
``federation.configure`` trigger (the same load-time-scan convention as
``resilience.configure`` and ``traffic.configure``) and are matched
through their :class:`~repro.policy.model.PolicyScope`.

With no federation policies loaded the service is inert
(:attr:`FederationService.active` is False) and the fleet runs on the
built-in :class:`~repro.policy.actions.FederationAction` defaults with
pure consistent-hash placement.
"""

from __future__ import annotations

from fnmatch import fnmatch

from repro.policy.actions import FederationAction, ShardRoutingAction

__all__ = ["FEDERATION_CONFIGURE", "FederationService"]

#: The trigger event name scanned for at load time.
FEDERATION_CONFIGURE = "federation.configure"


class FederationService:
    """Materializes and serves the fleet's federation configuration."""

    def __init__(self, repository) -> None:
        self.repository = repository
        self._config_rules: list[tuple] = []
        self._routing_rules: list[tuple] = []
        self.refresh_from_policies()

    @property
    def active(self) -> bool:
        """True when any federation policy is loaded."""
        return bool(self._config_rules or self._routing_rules)

    def refresh_from_policies(self) -> None:
        """Re-scan the repository for ``federation.configure`` policies."""
        self._config_rules = []
        self._routing_rules = []
        for policy in self.repository.adaptation_policies():
            if FEDERATION_CONFIGURE not in policy.triggers:
                continue
            for action in policy.actions:
                rule = (policy.scope, action)
                if isinstance(action, FederationAction):
                    self._config_rules.append(rule)
                elif isinstance(action, ShardRoutingAction):
                    self._routing_rules.append(rule)

    def config(self) -> FederationAction:
        """The fleet tuning (first configured action, or the defaults)."""
        if self._config_rules:
            return self._config_rules[0][1]
        return FederationAction()

    def pinned_bus(self, vep_name: str, service_type: str | None = None) -> str | None:
        """The policy-pinned owner for a VEP, or None for hash placement."""
        for scope, action in self._routing_rules:
            if not scope.matches(endpoint=vep_name, service_type=service_type):
                continue
            if fnmatch(vep_name, action.vep_pattern):
                return action.bus
        return None

    def summary(self) -> dict:
        return {
            "active": self.active,
            "config": self.config().describe(),
            "routing_rules": [
                action.describe() for _, action in self._routing_rules
            ],
        }
