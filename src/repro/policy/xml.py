"""XML serialization of WS-Policy4MASC documents.

The wire format is a W3C WS-Policy ``Policy`` element whose assertions live
in the MASC namespace. Parsing is strict (unknown assertion elements are an
error — policies drive adaptation of live systems, so silent skipping would
be dangerous) and documents round-trip: ``parse(serialize(doc))`` yields an
equivalent document.
"""

from __future__ import annotations

from repro.policy.actions import (
    AdaptationAction,
    AdaptiveTimeoutAction,
    AddActivityAction,
    BulkheadAction,
    BurnRateAlertAction,
    CircuitBreakerAction,
    CompensateInstanceAction,
    DelayProcessAction,
    ConcurrentInvokeAction,
    ExtendTimeoutAction,
    FederationAction,
    IdempotencyAction,
    InvokeSpec,
    LoadLevelingAction,
    LoadSheddingAction,
    PreferBestAction,
    QuarantineAction,
    RemoveActivityAction,
    ReplaceActivityAction,
    ResponseCacheAction,
    ResumeProcessAction,
    RetryAction,
    SelectionStrategyAction,
    ShardRoutingAction,
    SkipAction,
    SloAction,
    SubstituteAction,
    SuspendProcessAction,
    TerminateProcessAction,
    TracingAction,
)
from repro.policy.assertions import MessageCondition, QoSThreshold
from repro.policy.model import (
    AdaptationPolicy,
    BusinessValue,
    GoalPolicy,
    MonitoringPolicy,
    PolicyDocument,
    PolicyError,
    PolicyScope,
)
from repro.soap import FaultCode
from repro.xmlutils import Element, QName, parse_xml, serialize_xml

__all__ = [
    "MASC_POLICY_NS",
    "WSP_NS",
    "parse_policy_document",
    "serialize_policy_document",
]

WSP_NS = "http://schemas.xmlsoap.org/ws/2004/09/policy"
MASC_POLICY_NS = "http://masc.web.cse.unsw.edu.au/ns/ws-policy4masc"


def _masc(local: str) -> QName:
    return QName(MASC_POLICY_NS, local)


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------


def serialize_policy_document(document: PolicyDocument, indent: bool = False) -> str:
    """Render a document to its XML text form."""
    return serialize_xml(document_to_element(document), indent=indent)


def document_to_element(document: PolicyDocument) -> Element:
    root = Element(QName(WSP_NS, "Policy"), attributes={"Name": document.name})
    for policy in document.monitoring_policies:
        root.append(_monitoring_to_element(policy))
    for policy in document.adaptation_policies:
        root.append(_adaptation_to_element(policy))
    for goal in document.goal_policies:
        root.append(_goal_to_element(goal))
    return root


def _goal_to_element(policy: GoalPolicy) -> Element:
    element = Element(
        _masc("GoalPolicy"),
        attributes={
            "name": policy.name,
            "goal": policy.goal,
            "timeValuePerSecond": str(policy.time_value_per_second),
            "bandwidthCostPerMessage": str(policy.bandwidth_cost_per_message),
            "priority": str(policy.priority),
        },
    )
    scope = _scope_to_element(policy.scope)
    if scope is not None:
        element.append(scope)
    return element


def _scope_to_element(scope: PolicyScope) -> Element | None:
    attributes = {
        key: value
        for key, value in (
            ("serviceType", scope.service_type),
            ("endpoint", scope.endpoint),
            ("operation", scope.operation),
            ("process", scope.process),
            ("activity", scope.activity),
        )
        if value is not None
    }
    if not attributes:
        return None
    return Element(_masc("Scope"), attributes=attributes)


def _monitoring_to_element(policy: MonitoringPolicy) -> Element:
    element = Element(
        _masc("MonitoringPolicy"),
        attributes={"name": policy.name, "priority": str(policy.priority)},
    )
    for event in policy.events:
        element.add(_masc("On"), event=event)
    scope = _scope_to_element(policy.scope)
    if scope is not None:
        element.append(scope)
    if policy.condition is not None:
        element.add(_masc("Condition"), text=policy.condition)
    for condition in policy.conditions:
        attributes = {
            "xpath": condition.xpath,
            "operator": condition.operator,
            "appliesTo": condition.applies_to,
        }
        if condition.value is not None:
            attributes["value"] = condition.value
        element.append(Element(_masc("MessageCondition"), attributes=attributes))
    for threshold in policy.qos_thresholds:
        element.append(
            Element(
                _masc("QoSThreshold"),
                attributes={
                    "metric": threshold.metric,
                    "operator": threshold.operator,
                    "value": str(threshold.value),
                    "window": str(threshold.window),
                    "aggregate": threshold.aggregate,
                },
            )
        )
    for variable, xpath in policy.extract.items():
        element.add(_masc("Extract"), variable=variable, xpath=xpath)
    if policy.classify_as is not None:
        element.add(_masc("ClassifyAs"), fault=policy.classify_as.value)
    for event in policy.emits:
        element.add(_masc("Emit"), event=event)
    return element


def _adaptation_to_element(policy: AdaptationPolicy) -> Element:
    element = Element(
        _masc("AdaptationPolicy"),
        attributes={
            "name": policy.name,
            "priority": str(policy.priority),
            "type": policy.adaptation_type,
        },
    )
    for trigger in policy.triggers:
        element.add(_masc("On"), event=trigger)
    scope = _scope_to_element(policy.scope)
    if scope is not None:
        element.append(scope)
    if policy.condition is not None:
        element.add(_masc("Condition"), text=policy.condition)
    if policy.state_before is not None:
        element.add(_masc("StateBefore"), text=policy.state_before)
    if policy.state_after is not None:
        element.add(_masc("StateAfter"), text=policy.state_after)
    actions = element.add(_masc("Actions"))
    for action in policy.actions:
        actions.append(_action_to_element(action))
    if policy.business_value is not None:
        element.add(
            _masc("BusinessValue"),
            amount=str(policy.business_value.amount),
            currency=policy.business_value.currency,
            reason=policy.business_value.reason,
        )
    return element


def _invoke_spec_to_element(spec: InvokeSpec) -> Element:
    attributes = {"name": spec.name, "operation": spec.operation}
    if spec.service_type is not None:
        attributes["serviceType"] = spec.service_type
    if spec.address is not None:
        attributes["address"] = spec.address
    if spec.timeout_seconds is not None:
        attributes["timeoutSeconds"] = str(spec.timeout_seconds)
    element = Element(_masc("InvokeActivity"), attributes=attributes)
    for part, value in spec.inputs.items():
        element.add(_masc("Input"), part=part, value=str(value))
    for variable, part in spec.outputs.items():
        element.add(_masc("Output"), variable=variable, part=part)
    return element


def _action_to_element(action: AdaptationAction) -> Element:
    if isinstance(action, RetryAction):
        attributes = {
            "maxRetries": str(action.max_retries),
            "delaySeconds": str(action.delay_seconds),
            "backoffMultiplier": str(action.backoff_multiplier),
        }
        if action.max_delay_seconds is not None:
            attributes["maxDelaySeconds"] = str(action.max_delay_seconds)
        if action.jitter_fraction != 0.0:
            attributes["jitterFraction"] = str(action.jitter_fraction)
        return Element(_masc("Retry"), attributes=attributes)
    if isinstance(action, SubstituteAction):
        attributes = {"strategy": action.strategy}
        if action.backup_address is not None:
            attributes["backupAddress"] = action.backup_address
        return Element(_masc("Substitute"), attributes=attributes)
    if isinstance(action, ConcurrentInvokeAction):
        return Element(
            _masc("ConcurrentInvoke"), attributes={"maxTargets": str(action.max_targets)}
        )
    if isinstance(action, SkipAction):
        return Element(_masc("Skip"), attributes={"reason": action.reason})
    if isinstance(action, SuspendProcessAction):
        return Element(_masc("Suspend"))
    if isinstance(action, ResumeProcessAction):
        return Element(_masc("Resume"))
    if isinstance(action, TerminateProcessAction):
        return Element(_masc("Terminate"), attributes={"reason": action.reason})
    if isinstance(action, CompensateInstanceAction):
        attributes = {"mode": action.mode, "reason": action.reason}
        if action.scope is not None:
            attributes["scope"] = action.scope
        if action.process is not None:
            attributes["process"] = action.process
        return Element(_masc("Compensate"), attributes=attributes)
    if isinstance(action, ExtendTimeoutAction):
        return Element(
            _masc("ExtendTimeout"), attributes={"extraSeconds": str(action.extra_seconds)}
        )
    if isinstance(action, DelayProcessAction):
        return Element(
            _masc("DelayProcess"), attributes={"delaySeconds": str(action.delay_seconds)}
        )
    if isinstance(action, QuarantineAction):
        return Element(
            _masc("Quarantine"), attributes={"durationSeconds": str(action.duration_seconds)}
        )
    if isinstance(action, PreferBestAction):
        return Element(
            _masc("PreferBest"),
            attributes={"metric": action.metric, "window": str(action.window)},
        )
    if isinstance(action, CircuitBreakerAction):
        return Element(
            _masc("CircuitBreaker"),
            attributes={
                "failureRateThreshold": str(action.failure_rate_threshold),
                "window": str(action.window),
                "minCalls": str(action.min_calls),
                "consecutiveFailures": str(action.consecutive_failures),
                "openSeconds": str(action.open_seconds),
                "halfOpenProbes": str(action.half_open_probes),
            },
        )
    if isinstance(action, BulkheadAction):
        return Element(
            _masc("Bulkhead"),
            attributes={
                "maxConcurrent": str(action.max_concurrent),
                "maxQueue": str(action.max_queue),
                "appliesTo": action.applies_to,
            },
        )
    if isinstance(action, AdaptiveTimeoutAction):
        return Element(
            _masc("AdaptiveTimeout"),
            attributes={
                "aggregate": action.aggregate,
                "multiplier": str(action.multiplier),
                "minSeconds": str(action.min_seconds),
                "maxSeconds": str(action.max_seconds),
                "window": str(action.window),
                "minSamples": str(action.min_samples),
            },
        )
    if isinstance(action, LoadSheddingAction):
        attributes = {"maxInflight": str(action.max_inflight)}
        if action.max_retry_queue_depth is not None:
            attributes["maxRetryQueueDepth"] = str(action.max_retry_queue_depth)
        return Element(_masc("LoadShedding"), attributes=attributes)
    if isinstance(action, IdempotencyAction):
        return Element(_masc("Idempotency"))
    if isinstance(action, ResponseCacheAction):
        element = Element(
            _masc("ResponseCache"),
            attributes={
                "ttlSeconds": str(action.ttl_seconds),
                "maxEntries": str(action.max_entries),
            },
        )
        for pattern in action.invalidate_on:
            element.add(_masc("InvalidateOn"), event=pattern)
        return element
    if isinstance(action, LoadLevelingAction):
        return Element(
            _masc("LoadLeveling"),
            attributes={
                "ratePerSecond": str(action.rate_per_second),
                "burst": str(action.burst),
                "maxQueue": str(action.max_queue),
                "maxWaitSeconds": str(action.max_wait_seconds),
            },
        )
    if isinstance(action, SloAction):
        attributes = {
            "name": action.name,
            "availabilityTarget": str(action.availability_target),
            "windowSeconds": str(action.window_seconds),
        }
        if action.latency_target_seconds is not None:
            attributes["latencyTargetSeconds"] = str(action.latency_target_seconds)
            attributes["latencyPercentile"] = action.latency_percentile
        return Element(_masc("Slo"), attributes=attributes)
    if isinstance(action, BurnRateAlertAction):
        return Element(
            _masc("BurnRateAlert"),
            attributes={
                "fastWindowSeconds": str(action.fast_window_seconds),
                "slowWindowSeconds": str(action.slow_window_seconds),
                "fastBurnThreshold": str(action.fast_burn_threshold),
                "slowBurnThreshold": str(action.slow_burn_threshold),
                "evaluationIntervalSeconds": str(action.evaluation_interval_seconds),
                "minRequests": str(action.min_requests),
            },
        )
    if isinstance(action, SelectionStrategyAction):
        return Element(
            _masc("SelectionStrategy"), attributes={"strategy": action.strategy}
        )
    if isinstance(action, TracingAction):
        return Element(
            _masc("Tracing"),
            attributes={
                "sampleRate": str(action.sample_rate),
                "alwaysSampleFaults": "true" if action.always_sample_faults else "false",
                "alwaysSampleSloViolations": (
                    "true" if action.always_sample_slo_violations else "false"
                ),
            },
        )
    if isinstance(action, FederationAction):
        return Element(
            _masc("Federation"),
            attributes={
                "heartbeatIntervalSeconds": str(action.heartbeat_interval_seconds),
                "suspicionMultiplier": str(action.suspicion_multiplier),
                "gossipIntervalSeconds": str(action.gossip_interval_seconds),
                "gossipFanout": str(action.gossip_fanout),
                "leaseSeconds": str(action.lease_seconds),
                "virtualNodes": str(action.virtual_nodes),
            },
        )
    if isinstance(action, ShardRoutingAction):
        return Element(
            _masc("ShardRouting"),
            attributes={"bus": action.bus, "vepPattern": action.vep_pattern},
        )
    if isinstance(action, AddActivityAction):
        attributes = {"anchor": action.anchor, "position": action.position}
        if action.block_name is not None:
            attributes["blockName"] = action.block_name
        element = Element(_masc("AddActivity"), attributes=attributes)
        for variable, value in action.bindings.items():
            element.add(_masc("Bind"), variable=variable, value=str(value))
        for spec in action.invokes:
            element.append(_invoke_spec_to_element(spec))
        return element
    if isinstance(action, RemoveActivityAction):
        attributes = {"target": action.target}
        if action.block_end is not None:
            attributes["blockEnd"] = action.block_end
        return Element(_masc("RemoveActivity"), attributes=attributes)
    if isinstance(action, ReplaceActivityAction):
        attributes = {"target": action.target}
        if action.block_name is not None:
            attributes["blockName"] = action.block_name
        element = Element(_masc("ReplaceActivity"), attributes=attributes)
        for variable, value in action.bindings.items():
            element.add(_masc("Bind"), variable=variable, value=str(value))
        for spec in action.invokes:
            element.append(_invoke_spec_to_element(spec))
        return element
    raise PolicyError(f"cannot serialize action {type(action).__name__}")


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------


def parse_policy_document(source: str | Element) -> PolicyDocument:
    """Parse XML text (or a pre-parsed element) into a PolicyDocument."""
    root = parse_xml(source) if isinstance(source, str) else source
    if root.name != QName(WSP_NS, "Policy"):
        raise PolicyError(f"not a WS-Policy document: {root.name}")
    document = PolicyDocument(name=root.attributes.get("Name", "unnamed"))
    for child in root.children:
        if child.name == _masc("MonitoringPolicy"):
            document.monitoring_policies.append(_parse_monitoring(child))
        elif child.name == _masc("AdaptationPolicy"):
            document.adaptation_policies.append(_parse_adaptation(child))
        elif child.name == _masc("GoalPolicy"):
            document.goal_policies.append(
                GoalPolicy(
                    name=_required(child, "name"),
                    goal=child.attributes.get("goal", "maximize_business_value"),
                    scope=_parse_scope(child.find(_masc("Scope"))),
                    time_value_per_second=float(
                        child.attributes.get("timeValuePerSecond", "1.0")
                    ),
                    bandwidth_cost_per_message=float(
                        child.attributes.get("bandwidthCostPerMessage", "0.1")
                    ),
                    priority=int(child.attributes.get("priority", "100")),
                )
            )
        elif child.name in (QName(WSP_NS, "ExactlyOne"), QName(WSP_NS, "All")):
            # WS-Policy operators: flatten — MASC treats all alternatives
            # as available and picks by priority at enforcement time.
            nested = parse_policy_document(
                Element(QName(WSP_NS, "Policy"), children=[c.copy() for c in child.children])
            )
            document.monitoring_policies.extend(nested.monitoring_policies)
            document.adaptation_policies.extend(nested.adaptation_policies)
            document.goal_policies.extend(nested.goal_policies)
        else:
            raise PolicyError(f"unknown policy element {child.name}")
    return document


def _parse_scope(element: Element | None) -> PolicyScope:
    if element is None:
        return PolicyScope()
    return PolicyScope(
        service_type=element.attributes.get("serviceType"),
        endpoint=element.attributes.get("endpoint"),
        operation=element.attributes.get("operation"),
        process=element.attributes.get("process"),
        activity=element.attributes.get("activity"),
    )


def _required(element: Element, attribute: str) -> str:
    value = element.attributes.get(attribute)
    if value is None:
        raise PolicyError(f"element {element.name.local} is missing attribute {attribute!r}")
    return value


def _parse_monitoring(element: Element) -> MonitoringPolicy:
    events = tuple(_required(on, "event") for on in element.find_all(_masc("On")))
    conditions = tuple(
        MessageCondition(
            xpath=_required(mc, "xpath"),
            operator=mc.attributes.get("operator", "exists"),
            value=mc.attributes.get("value"),
            applies_to=mc.attributes.get("appliesTo", "body"),
        )
        for mc in element.find_all(_masc("MessageCondition"))
    )
    thresholds = tuple(
        QoSThreshold(
            metric=_required(th, "metric"),
            operator=_required(th, "operator"),
            value=float(_required(th, "value")),
            window=int(th.attributes.get("window", "50")),
            aggregate=th.attributes.get("aggregate", "mean"),
        )
        for th in element.find_all(_masc("QoSThreshold"))
    )
    extract = {
        _required(ex, "variable"): _required(ex, "xpath")
        for ex in element.find_all(_masc("Extract"))
    }
    classify_element = element.find(_masc("ClassifyAs"))
    classify_as = (
        FaultCode(_required(classify_element, "fault")) if classify_element is not None else None
    )
    emits = tuple(_required(emit, "event") for emit in element.find_all(_masc("Emit")))
    return MonitoringPolicy(
        name=_required(element, "name"),
        events=events,
        scope=_parse_scope(element.find(_masc("Scope"))),
        condition=element.child_text(_masc("Condition")),
        conditions=conditions,
        qos_thresholds=thresholds,
        extract=extract,
        classify_as=classify_as,
        emits=emits,
        priority=int(element.attributes.get("priority", "100")),
    )


def _parse_invoke_spec(element: Element) -> InvokeSpec:
    timeout_text = element.attributes.get("timeoutSeconds")
    return InvokeSpec(
        name=_required(element, "name"),
        operation=_required(element, "operation"),
        service_type=element.attributes.get("serviceType"),
        address=element.attributes.get("address"),
        inputs={
            _required(part, "part"): _required(part, "value")
            for part in element.find_all(_masc("Input"))
        },
        outputs={
            _required(part, "variable"): _required(part, "part")
            for part in element.find_all(_masc("Output"))
        },
        timeout_seconds=float(timeout_text) if timeout_text is not None else None,
    )


def _parse_action(element: Element) -> AdaptationAction:
    local = element.name.local
    if local == "Retry":
        max_delay_text = element.attributes.get("maxDelaySeconds")
        return RetryAction(
            max_retries=int(element.attributes.get("maxRetries", "3")),
            delay_seconds=float(element.attributes.get("delaySeconds", "2.0")),
            backoff_multiplier=float(element.attributes.get("backoffMultiplier", "1.0")),
            max_delay_seconds=float(max_delay_text) if max_delay_text is not None else None,
            jitter_fraction=float(element.attributes.get("jitterFraction", "0.0")),
        )
    if local == "Substitute":
        return SubstituteAction(
            strategy=element.attributes.get("strategy", "best_response_time"),
            backup_address=element.attributes.get("backupAddress"),
        )
    if local == "ConcurrentInvoke":
        return ConcurrentInvokeAction(max_targets=int(element.attributes.get("maxTargets", "0")))
    if local == "Skip":
        return SkipAction(reason=element.attributes.get("reason", "activity skipped by policy"))
    if local == "Suspend":
        return SuspendProcessAction()
    if local == "Resume":
        return ResumeProcessAction()
    if local == "Terminate":
        return TerminateProcessAction(
            reason=element.attributes.get("reason", "terminated by adaptation policy")
        )
    if local in ("Compensate", "CompensateOnEvent"):
        return CompensateInstanceAction(
            scope=element.attributes.get("scope"),
            mode=element.attributes.get("mode", "orchestration"),
            process=element.attributes.get("process"),
            reason=element.attributes.get("reason", "compensated by adaptation policy"),
        )
    if local == "ExtendTimeout":
        return ExtendTimeoutAction(extra_seconds=float(element.attributes.get("extraSeconds", "10")))
    if local == "DelayProcess":
        return DelayProcessAction(
            delay_seconds=float(element.attributes.get("delaySeconds", "10"))
        )
    if local == "Quarantine":
        return QuarantineAction(
            duration_seconds=float(element.attributes.get("durationSeconds", "60"))
        )
    if local == "PreferBest":
        return PreferBestAction(
            metric=element.attributes.get("metric", "response_time"),
            window=int(element.attributes.get("window", "50")),
        )
    if local == "CircuitBreaker":
        return CircuitBreakerAction(
            failure_rate_threshold=float(element.attributes.get("failureRateThreshold", "0.5")),
            window=int(element.attributes.get("window", "20")),
            min_calls=int(element.attributes.get("minCalls", "5")),
            consecutive_failures=int(element.attributes.get("consecutiveFailures", "5")),
            open_seconds=float(element.attributes.get("openSeconds", "30")),
            half_open_probes=int(element.attributes.get("halfOpenProbes", "1")),
        )
    if local == "Bulkhead":
        return BulkheadAction(
            max_concurrent=int(element.attributes.get("maxConcurrent", "16")),
            max_queue=int(element.attributes.get("maxQueue", "32")),
            applies_to=element.attributes.get("appliesTo", "endpoint"),
        )
    if local == "AdaptiveTimeout":
        return AdaptiveTimeoutAction(
            aggregate=element.attributes.get("aggregate", "p95"),
            multiplier=float(element.attributes.get("multiplier", "3.0")),
            min_seconds=float(element.attributes.get("minSeconds", "0.25")),
            max_seconds=float(element.attributes.get("maxSeconds", "30")),
            window=int(element.attributes.get("window", "50")),
            min_samples=int(element.attributes.get("minSamples", "5")),
        )
    if local == "LoadShedding":
        depth_text = element.attributes.get("maxRetryQueueDepth")
        return LoadSheddingAction(
            max_inflight=int(element.attributes.get("maxInflight", "64")),
            max_retry_queue_depth=int(depth_text) if depth_text is not None else None,
        )
    if local == "Idempotency":
        return IdempotencyAction()
    if local == "ResponseCache":
        return ResponseCacheAction(
            ttl_seconds=float(element.attributes.get("ttlSeconds", "30")),
            max_entries=int(element.attributes.get("maxEntries", "256")),
            invalidate_on=tuple(
                _required(on, "event") for on in element.find_all(_masc("InvalidateOn"))
            ),
        )
    if local == "LoadLeveling":
        return LoadLevelingAction(
            rate_per_second=float(element.attributes.get("ratePerSecond", "50")),
            burst=int(element.attributes.get("burst", "10")),
            max_queue=int(element.attributes.get("maxQueue", "64")),
            max_wait_seconds=float(element.attributes.get("maxWaitSeconds", "5")),
        )
    if local == "Slo":
        latency_text = element.attributes.get("latencyTargetSeconds")
        return SloAction(
            name=element.attributes.get("name", "slo"),
            availability_target=float(element.attributes.get("availabilityTarget", "99.0")),
            latency_target_seconds=(
                float(latency_text) if latency_text is not None else None
            ),
            latency_percentile=element.attributes.get("latencyPercentile", "p99"),
            window_seconds=float(element.attributes.get("windowSeconds", "3600")),
        )
    if local == "BurnRateAlert":
        return BurnRateAlertAction(
            fast_window_seconds=float(element.attributes.get("fastWindowSeconds", "60")),
            slow_window_seconds=float(element.attributes.get("slowWindowSeconds", "300")),
            fast_burn_threshold=float(element.attributes.get("fastBurnThreshold", "14")),
            slow_burn_threshold=float(element.attributes.get("slowBurnThreshold", "2")),
            evaluation_interval_seconds=float(
                element.attributes.get("evaluationIntervalSeconds", "5")
            ),
            min_requests=int(element.attributes.get("minRequests", "10")),
        )
    if local == "SelectionStrategy":
        return SelectionStrategyAction(
            strategy=element.attributes.get("strategy", "best_reliability")
        )
    if local == "Tracing":
        return TracingAction(
            sample_rate=float(element.attributes.get("sampleRate", "1.0")),
            always_sample_faults=(
                element.attributes.get("alwaysSampleFaults", "true") == "true"
            ),
            always_sample_slo_violations=(
                element.attributes.get("alwaysSampleSloViolations", "true") == "true"
            ),
        )
    if local == "Federation":
        return FederationAction(
            heartbeat_interval_seconds=float(
                element.attributes.get("heartbeatIntervalSeconds", "0.5")
            ),
            suspicion_multiplier=float(element.attributes.get("suspicionMultiplier", "3.0")),
            gossip_interval_seconds=float(
                element.attributes.get("gossipIntervalSeconds", "2.0")
            ),
            gossip_fanout=int(element.attributes.get("gossipFanout", "1")),
            lease_seconds=float(element.attributes.get("leaseSeconds", "3.0")),
            virtual_nodes=int(element.attributes.get("virtualNodes", "32")),
        )
    if local == "ShardRouting":
        return ShardRoutingAction(
            bus=_required(element, "bus"),
            vep_pattern=element.attributes.get("vepPattern", "*"),
        )
    if local == "AddActivity":
        return AddActivityAction(
            anchor=_required(element, "anchor"),
            position=element.attributes.get("position", "after"),
            block_name=element.attributes.get("blockName"),
            bindings={
                _required(b, "variable"): _required(b, "value")
                for b in element.find_all(_masc("Bind"))
            },
            invokes=tuple(
                _parse_invoke_spec(spec) for spec in element.find_all(_masc("InvokeActivity"))
            ),
        )
    if local == "RemoveActivity":
        return RemoveActivityAction(
            target=_required(element, "target"),
            block_end=element.attributes.get("blockEnd"),
        )
    if local == "ReplaceActivity":
        return ReplaceActivityAction(
            target=_required(element, "target"),
            block_name=element.attributes.get("blockName"),
            bindings={
                _required(b, "variable"): _required(b, "value")
                for b in element.find_all(_masc("Bind"))
            },
            invokes=tuple(
                _parse_invoke_spec(spec) for spec in element.find_all(_masc("InvokeActivity"))
            ),
        )
    raise PolicyError(f"unknown adaptation action element {local!r}")


def _parse_adaptation(element: Element) -> AdaptationPolicy:
    actions_element = element.find(_masc("Actions"))
    if actions_element is None:
        raise PolicyError(
            f"adaptation policy {element.attributes.get('name')!r} has no Actions element"
        )
    business_element = element.find(_masc("BusinessValue"))
    business_value = None
    if business_element is not None:
        business_value = BusinessValue(
            amount=float(_required(business_element, "amount")),
            currency=business_element.attributes.get("currency", "AUD"),
            reason=business_element.attributes.get("reason", ""),
        )
    return AdaptationPolicy(
        name=_required(element, "name"),
        triggers=tuple(_required(on, "event") for on in element.find_all(_masc("On"))),
        scope=_parse_scope(element.find(_masc("Scope"))),
        condition=element.child_text(_masc("Condition")),
        state_before=element.child_text(_masc("StateBefore")),
        state_after=element.child_text(_masc("StateAfter")),
        actions=tuple(_parse_action(child) for child in actions_element.children),
        business_value=business_value,
        priority=int(element.attributes.get("priority", "100")),
        adaptation_type=element.attributes.get("type", "correction"),
    )
