"""Command-line interface: reproduce the paper's experiments.

Usage::

    python -m repro table1 [--seeds 11 23 47] [--requests 250] [--jobs 4] [--trace spans.jsonl]
    python -m repro figure5 [--requests 150] [--jobs 4] [--trace spans.jsonl]
    python -m repro storm [--seed 7] [--requests 60] [--jobs 2] [--trace spans.jsonl] [--slo]
    python -m repro storm --crash-engine [--seed 7] [--sagas] [--journal DIR]
    python -m repro storm --traffic [--seed 7] [--report report.json]
    python -m repro storm --fleet 4 [--seed 7] [--report report.json]
    python -m repro replay JOURNAL [--instance ID] [--at SEQ] [--diff OTHER] [--verify]
    python -m repro trace SPANS [SPANS ...] [--slowest N] [--tree ID] [--critical-path] [--attribution] [--report PATH]
    python -m repro top [--seed 7] [--interval 10]
    python -m repro scenarios
    python -m repro quickcheck

``--jobs N`` shards the independent experiment cells over N worker
processes (see ``docs/performance.md``); results are byte-identical to a
sequential run because every cell is independently seeded and the merge
order is fixed by cell key.
``--trace PATH`` records every middleware span of the bus-mediated runs
to a JSONL file (one span per line; see ``docs/observability.md``) and
forces ``--jobs 1`` — spans are recorded in-process, so sharded workers
could not share one exporter. For ``storm`` it additionally writes a
flight-recorder dump (``PATH.flight.json``) and a Prometheus metrics
snapshot (``PATH.prom``) next to the span file.
``storm --slo`` loads the SCM SLO policy document and closes the feedback
loop: burn-rate events drive a selection-strategy switch (see
``docs/slo.md``).
``storm --traffic`` swaps the fault storm for the overload (flash-crowd)
ablation: shed-only admission control vs the policy-driven traffic tier
(response cache + load leveling + idempotency keys, see
``docs/traffic.md``); ``--report PATH`` writes the numbers as JSON.
``storm --fleet N`` swaps the fault storm for the federation ablation:
the same partitioned Retailer workload through one capacity-bounded bus
vs an N-shard :class:`~repro.federation.BusFleet` (consistent-hash VEP
placement, gossip QoS, leader-elected adaptation — see
``docs/federation.md``); ``--report PATH`` writes the numbers as JSON.
``top`` runs a short SLO-enabled storm and renders the live per-endpoint
operations table every ``--interval`` simulated seconds.
``storm --crash-engine`` swaps the resilience ablation for the durability
scenario: it kills the workflow engine mid-process, rehydrates the
checkpointed instance in a fresh engine, and verifies the recovered run
finishes identically to an uninterrupted one (see ``docs/persistence.md``).
``--sagas`` extends the crash matrix to the compensation case studies
(the SCM cancel-order saga and the trading unwind-position saga) and
sweeps *every* activity boundary — including each compensation step — so
crashes landing mid-compensation are recovered too (see ``docs/sagas.md``).
``--journal DIR`` keeps each crash run's event journal as a JSONL file in
``DIR`` and verifies every stored checkpoint byte-matches its
journal-derived snapshot.
``replay`` is the journal debugger: list a journal's domain events, print
the reconstructed activity tree and variables at any sequence number
(``--at SEQ``), diff two same-seed journals (``--diff OTHER``), or check
checkpoint/journal byte-identity (``--verify``).
``trace`` is the trace analyzer: it merges any mix of ``--trace`` JSONL
files and flight-recorder dumps from one run, lists the slowest traces,
renders one trace's span tree (``--tree ID``), extracts the critical
path (``--critical-path``) and attributes every simulated second of it
to a phase — queue-wait / mediation / network / service-execution /
adaptation (``--attribution``; the phases must sum to the critical-path
duration, enforced with a non-zero exit otherwise). See
``docs/tracing.md``.
``quickcheck`` runs a fast, low-volume version of everything — a smoke
test that the full stack works on this machine in a few seconds.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import (
    regenerate_figure5,
    regenerate_table1,
    render_figure5,
    render_table1,
)

__all__ = ["main"]


def _make_tracer(args: argparse.Namespace):
    """(tracer, exporter) for ``--trace PATH``, or (None, None)."""
    if not getattr(args, "trace", None):
        return None, None
    from repro.observability import JsonlExporter, Tracer

    tracer = Tracer()
    exporter = tracer.add_exporter(JsonlExporter(args.trace))
    return tracer, exporter


def _close_tracer(tracer, exporter, path) -> None:
    if tracer is None:
        return
    tracer.close()
    print(f"\nwrote {exporter.exported} spans to {path}")


def _effective_jobs(args: argparse.Namespace, tracer) -> int:
    """The worker count for a run; tracing forces 1 (spans are in-process)."""
    jobs = max(1, getattr(args, "jobs", 1))
    if tracer is not None and jobs > 1:
        print("--trace records spans in-process; forcing --jobs 1", file=sys.stderr)
        return 1
    return jobs


def _cmd_table1(args: argparse.Namespace) -> int:
    tracer, exporter = _make_tracer(args)
    rows = regenerate_table1(
        seeds=tuple(args.seeds),
        clients=args.clients,
        requests=args.requests,
        tracer=tracer,
        jobs=_effective_jobs(args, tracer),
        chunk_size=args.chunk,
    )
    print(render_table1(rows))
    _close_tracer(tracer, exporter, args.trace)
    return 0


def _cmd_figure5(args: argparse.Namespace) -> int:
    tracer, exporter = _make_tracer(args)
    series = regenerate_figure5(
        requests=args.requests,
        tracer=tracer,
        jobs=_effective_jobs(args, tracer),
        chunk_size=args.chunk,
    )
    print(render_figure5(series))
    _close_tracer(tracer, exporter, args.trace)
    return 0


def _cmd_storm(args: argparse.Namespace) -> int:
    from repro.experiments import run_cells, run_fault_storm, storm_cells
    from repro.metrics import Table

    if args.traffic and (
        args.crash_engine or args.sagas or args.journal or args.slo or args.trace
    ):
        print(
            "--traffic runs its own ablation; it cannot combine with "
            "--crash-engine/--sagas/--journal/--slo/--trace",
            file=sys.stderr,
        )
        return 2
    if args.fleet is not None:
        if args.crash_engine or args.sagas or args.journal or args.slo or args.traffic:
            print(
                "--fleet runs its own ablation; it cannot combine with "
                "--crash-engine/--sagas/--journal/--slo/--traffic",
                file=sys.stderr,
            )
            return 2
        return _run_fleet_storm(args)
    if args.clients is None:
        args.clients = 32 if args.traffic else 6
    if args.requests is None:
        args.requests = 120 if args.traffic else 60
    if args.traffic:
        return _run_traffic_storm(args)
    if args.crash_engine:
        return _run_crash_storm(args)
    if args.sagas or args.journal:
        print("--sagas/--journal require --crash-engine", file=sys.stderr)
        return 2

    tracer, exporter = _make_tracer(args)
    recorder = None
    if tracer is not None:
        # Tracing runs the arms inline (jobs forced to 1), so the bus of
        # the resilience-on arm stays available for the operations-plane
        # artifacts: the flight-recorder dump and the Prometheus snapshot.
        from repro.observability import FlightRecorder

        recorder = tracer.add_exporter(FlightRecorder(tracer=tracer))
        _effective_jobs(args, tracer)
        off = run_fault_storm(
            seed=args.seed, resilience=False, clients=args.clients, requests=args.requests
        )
        on = run_fault_storm(
            seed=args.seed,
            resilience=True,
            clients=args.clients,
            requests=args.requests,
            tracer=tracer,
            slo=args.slo,
            flight_recorder=recorder,
        )
        results = [off, on]
    else:
        cells = storm_cells(
            seed=args.seed, clients=args.clients, requests=args.requests, slo=args.slo
        )
        merged = run_cells(cells, jobs=_effective_jobs(args, tracer), chunk_size=args.chunk)
        results = [merged[(args.seed, "off")], merged[(args.seed, "on")]]
    table = Table(
        ["Resilience", "Delivered", "Reliability", "p50 RTT", "p99 RTT", "Breaker transitions"],
        title="Fault storm — resilience ablation",
    )
    for result in results:
        table.add_row(
            [
                "on" if result.resilience else "off",
                f"{result.delivered}/{result.total_requests}",
                f"{result.reliability:.4f}",
                f"{result.rtt_stats.get('p50', 0.0):.3f}s",
                f"{result.p99_rtt:.3f}s",
                len(result.breaker_transitions),
            ]
        )
    print(table.render())
    on = results[1]
    if on.breaker_transitions:
        print("\nBreaker transition log (resilience on):")
        for time, endpoint, from_state, to_state in on.breaker_transitions:
            print(f"  t={time:9.3f}s  {endpoint}  {from_state} -> {to_state}")
    shed = {
        name: value
        for name, value in on.metrics["counters"].items()
        if "resilience" in name or name.endswith(".shed")
    }
    if shed:
        print("\nResilience counters (on):")
        for name, value in sorted(shed.items()):
            print(f"  {name}: {value}")
    if args.slo and on.slo is not None:
        print("\nSLO events (resilience on):")
        for event in on.slo["events"]:
            print(
                f"  t={event['time']:9.3f}s  {event['name']}  {event['endpoint']}"
                f"  fast_burn={event['fast_burn']:.1f}x"
            )
    if recorder is not None:
        flight_path = f"{args.trace}.flight.json"
        recorder.dump(flight_path, reason="storm-complete")
        prom_path = f"{args.trace}.prom"
        with open(prom_path, "w", encoding="utf-8") as handle:
            handle.write(on.bus.metrics.render_prometheus())
        print(f"\nwrote flight-recorder dump to {flight_path}")
        print(f"wrote Prometheus snapshot to {prom_path}")
    _close_tracer(tracer, exporter, args.trace)
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    """A short SLO-enabled storm, rendered as live operations-table frames."""
    from repro.experiments import run_fault_storm
    from repro.observability import render_top

    def tick(bus) -> None:
        print(render_top(bus, window_seconds=args.window))
        print()

    result = run_fault_storm(
        seed=args.seed,
        resilience=True,
        clients=args.clients,
        requests=args.requests,
        slo=True,
        on_tick=tick,
        tick_interval=args.interval,
    )
    print(render_top(result.bus, window_seconds=args.window))
    if result.slo is not None and result.slo["events"]:
        print("\nSLO events:")
        for event in result.slo["events"]:
            print(f"  t={event['time']:9.3f}s  {event['name']}  {event['endpoint']}")
    return 0


def _run_traffic_storm(args: argparse.Namespace) -> int:
    """The overload ablation: shed-only vs the traffic-shaping tier."""
    import json

    from repro.experiments import run_overload_storm
    from repro.metrics import Table

    arms = [
        run_overload_storm(
            seed=args.seed, traffic=traffic, clients=args.clients, requests=args.requests
        )
        for traffic in (False, True)
    ]
    table = Table(
        [
            "Arm",
            "Delivered",
            "Reliability",
            "p50 RTT",
            "p99 RTT",
            "Budget burn",
            "Shed",
            "Cache hits",
            "Leveled",
        ],
        title="Overload storm — shed-only vs traffic shaping",
    )
    for result in arms:
        table.add_row(
            [
                result.mode,
                f"{result.delivered}/{result.total_requests}",
                f"{result.reliability:.4f}",
                f"{result.rtt_stats.get('p50', 0.0):.4f}s",
                f"{result.p99_rtt:.4f}s",
                f"{result.error_budget_burn:.1f}x",
                result.shed,
                result.cache_hits,
                result.leveled,
            ]
        )
    print(table.render())
    shaped = arms[1]
    if shaped.traffic is not None:
        print("\nTraffic tier (shaped arm):")
        for name, value in sorted(shaped.traffic.items()):
            print(f"  {name}: {value}")
        print(f"  idempotency (service container): {shaped.idempotency}")
    if args.report:
        payload = {
            "seed": args.seed,
            "clients": args.clients,
            "requests_per_client": args.requests,
            "arms": [
                {
                    "mode": result.mode,
                    "total_requests": result.total_requests,
                    "delivered": result.delivered,
                    "reliability": result.reliability,
                    "failures_per_1000": result.failures_per_1000,
                    "rtt_stats": result.rtt_stats,
                    "error_budget_burn": result.error_budget_burn,
                    "shed": result.shed,
                    "throttled": result.throttled,
                    "leveled": result.leveled,
                    "cache_hits": result.cache_hits,
                    "idempotency": result.idempotency,
                }
                for result in arms
            ],
        }
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"\nwrote ablation report to {args.report}")
    # The acceptance bar, enforced here too so CI can gate on the exit code.
    shed_arm = arms[0]
    if not (
        shaped.p99_rtt < shed_arm.p99_rtt
        and shaped.error_budget_burn < shed_arm.error_budget_burn
    ):
        print("traffic shaping failed to beat shed-only", file=sys.stderr)
        return 1
    return 0


def _run_fleet_storm(args: argparse.Namespace) -> int:
    """The federation ablation: one capacity-bounded bus vs an N-shard fleet."""
    import json

    from repro.experiments import fleet_cells, run_cells, run_fleet_storm
    from repro.metrics import Table

    if args.fleet < 2:
        print("--fleet needs at least 2 shards to compare against one bus", file=sys.stderr)
        return 2
    partitions = 6
    clients = args.clients if args.clients is not None else 4
    requests = args.requests if args.requests is not None else 30
    tracer, exporter = _make_tracer(args)
    recorder = None
    if tracer is not None:
        # Tracing runs the arms inline (jobs forced to 1); spans are
        # recorded for the fleet arm, where leadership and gossip live.
        # The flight recorder rides along so ``python -m repro trace``
        # can demonstrate the JSONL + flight-dump merge on one run.
        from repro.observability import FlightRecorder

        recorder = tracer.add_exporter(FlightRecorder(tracer=tracer))
        _effective_jobs(args, tracer)
        single = run_fleet_storm(
            seed=args.seed,
            shards=1,
            partitions=partitions,
            clients_per_partition=clients,
            requests=requests,
        )
        fleet = run_fleet_storm(
            seed=args.seed,
            shards=args.fleet,
            partitions=partitions,
            clients_per_partition=clients,
            requests=requests,
            tracer=tracer,
        )
    else:
        cells = fleet_cells(
            seed=args.seed,
            shards=args.fleet,
            partitions=partitions,
            clients_per_partition=clients,
            requests=requests,
        )
        merged = run_cells(cells, jobs=_effective_jobs(args, tracer), chunk_size=args.chunk)
        single = merged[(args.seed, 1)]
        fleet = merged[(args.seed, args.fleet)]
    table = Table(
        [
            "Arm",
            "Delivered",
            "Reliability",
            "Throughput",
            "p50 RTT",
            "p99 RTT",
            "Gossip merges",
            "Leader",
        ],
        title="Fleet storm — one bus vs a sharded fleet",
    )
    for label, result in (("1 bus", single), (f"{args.fleet} buses", fleet)):
        table.add_row(
            [
                label,
                f"{result.delivered}/{result.total_requests}",
                f"{result.reliability:.4f}",
                f"{result.throughput:.1f}/s",
                f"{result.rtt_stats.get('p50', 0.0):.4f}s",
                f"{result.p99_rtt:.4f}s",
                result.gossip_records,
                result.leader or "-",
            ]
        )
    print(table.render())
    print("\nVEP placement (fleet arm):")
    for name, owner in sorted(fleet.placement.items()):
        print(f"  {name}: {owner}")
    if args.report:
        payload = {
            "seed": args.seed,
            "shards": args.fleet,
            "partitions": partitions,
            "clients_per_partition": clients,
            "requests_per_client": requests,
            "arms": [
                {
                    "shards": result.shards,
                    "total_requests": result.total_requests,
                    "delivered": result.delivered,
                    "reliability": result.reliability,
                    "throughput": result.throughput,
                    "rtt_stats": result.rtt_stats,
                    "leader": result.leader,
                    "epoch": result.epoch,
                    "leader_changes": result.leader_changes,
                    "forwarded_events": result.forwarded_events,
                    "gossip_records": result.gossip_records,
                    "placement": result.placement,
                }
                for result in (single, fleet)
            ],
        }
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"\nwrote ablation report to {args.report}")
    if recorder is not None:
        flight_path = f"{args.trace}.flight.json"
        recorder.dump(flight_path, reason="fleet-storm-complete")
        print(f"wrote flight-recorder dump to {flight_path}")
    _close_tracer(tracer, exporter, args.trace)
    # The acceptance bar, enforced here too so CI can gate on the exit code.
    if not (
        fleet.throughput > single.throughput and fleet.p99_rtt <= single.p99_rtt
    ):
        print("the sharded fleet failed to beat the single bus", file=sys.stderr)
        return 1
    return 0


def _run_crash_storm(args: argparse.Namespace) -> int:
    """Kill the engine mid-flight and prove checkpointed instances recover."""
    from pathlib import Path

    from repro.experiments import count_crash_boundaries, run_crash_recovery
    from repro.metrics import Table
    from repro.persistence import CheckpointStore, verify_journal

    journal_dir = Path(args.journal) if getattr(args, "journal", None) else None
    if journal_dir is not None:
        journal_dir.mkdir(parents=True, exist_ok=True)

    if args.sagas:
        # The saga compositions abort after payment/trade, so the boundary
        # sweep covers every compensation step as a kill point too.
        matrix = {
            process: range(1, count_crash_boundaries(process, seed=args.seed) + 1)
            for process in ("scm-saga", "trading-saga")
        }
        title = "Fault storm — saga crash recovery (every boundary)"
    else:
        matrix = {process: (1, 2, 3) for process in ("scm", "trading")}
        title = "Fault storm — engine crash recovery"

    table = Table(
        [
            "Process",
            "Crash after",
            "Checkpoints",
            "Replayed",
            "Recovered",
            "Equivalent",
            "Journal",
        ],
        title=title,
    )
    failures: list[str] = []
    for process, crash_points in matrix.items():
        for crash_after in crash_points:
            store_path = None
            if journal_dir is not None:
                store_path = journal_dir / f"{process}-crash{crash_after}.jsonl"
                store_path.unlink(missing_ok=True)
            result = run_crash_recovery(
                process=process,
                seed=args.seed,
                crash_after_completions=crash_after,
                store_path=store_path,
            )
            journal_status = "-"
            if store_path is not None:
                divergences = verify_journal(CheckpointStore(store_path))
                journal_status = "ok" if not divergences else f"{len(divergences)} diverged"
                if divergences:
                    failures.append(
                        f"{process} (crash after {crash_after}): journal-derived "
                        f"snapshot diverges from {len(divergences)} checkpoint field(s)"
                    )
            table.add_row(
                [
                    process,
                    crash_after,
                    result.checkpoints,
                    result.replayed_activities,
                    result.recovered_status,
                    result.equivalent,
                    journal_status,
                ]
            )
            if not result.equivalent:
                failures.append(
                    f"{process} (crash after {crash_after}): "
                    f"{', '.join(result.divergences) or 'status mismatch'}"
                )
    print(table.render())
    if journal_dir is not None:
        print(f"\nwrote event journals to {journal_dir}/")
    if failures:
        print("\nRecovery divergences:")
        for line in failures:
            print(f"  {line}")
        return 1
    print("\nAll crashed instances rehydrated and finished identically.")
    return 0


def _render_activity_tree(tree_xml: str, executed, active) -> str:
    """The activity tree with per-node execution markers."""
    from repro.orchestration.xmlio import parse_activity

    root = parse_activity(tree_xml)
    lines: list[str] = []

    def walk(activity, depth: int) -> None:
        if activity.name in active:
            marker = ">"
        elif activity.name in executed:
            marker = "*"
        else:
            marker = " "
        kind = type(activity).__name__
        lines.append(f"  {marker} {'  ' * depth}{activity.name} [{kind}]")
        for child in activity.children():
            walk(child, depth + 1)

    walk(root, 0)
    return "\n".join(lines)


def _pick_instance(store, requested: str | None) -> str | None:
    """Resolve ``--instance``; on ambiguity list the choices and bail."""
    instance_ids = store.instance_ids()
    if requested is not None:
        if requested not in instance_ids:
            print(f"no records for instance {requested!r}", file=sys.stderr)
            print(f"instances in journal: {', '.join(instance_ids)}", file=sys.stderr)
            return None
        return requested
    if len(instance_ids) == 1:
        return instance_ids[0]
    print("journal holds several instances; pick one with --instance:", file=sys.stderr)
    for instance_id in instance_ids:
        print(f"  {instance_id}", file=sys.stderr)
    return None


def _summarize_event(record: dict) -> str:
    data = record.get("data", {})
    for key in ("activity", "step", "name", "status"):
        if key in data:
            detail = data[key]
            if key == "name" and "value" in data:
                return f"{detail} = {data['value']!r}"
            return str(detail)
    return ""


def _cmd_replay(args: argparse.Namespace) -> int:
    """Step through an event journal: list, reconstruct, diff, verify."""
    from repro.persistence import (
        CHECKPOINT,
        EVENT,
        CheckpointStore,
        derive_snapshot,
        verify_journal,
    )

    store = CheckpointStore(args.journal)
    if not store.records():
        print(f"no records in {args.journal}", file=sys.stderr)
        return 1

    if args.verify:
        divergences = verify_journal(store)
        if divergences:
            print(f"{len(divergences)} divergence(s) between journal and checkpoints:")
            for entry in divergences:
                print(
                    f"  {entry['instance_id']} seq={entry['seq']} "
                    f"field={entry['field']}: {entry['detail']}"
                )
            return 1
        checkpoints = len(store.records(record_type=CHECKPOINT))
        print(
            f"ok: {checkpoints} checkpoint(s) byte-identical to their "
            f"journal-derived snapshots"
        )
        return 0

    if args.diff is not None:
        other = CheckpointStore(args.diff)

        def stream(source):
            return [
                {key: value for key, value in record.items() if key != "seq"}
                for record in source.records(record_type=EVENT)
            ]

        def short(record) -> str:
            text = repr(record)
            return text if len(text) <= 240 else f"{text[:240]}... ({len(text)} chars)"

        ours, theirs = stream(store), stream(other)
        for index, (left, right) in enumerate(zip(ours, theirs)):
            if left != right:
                print(f"journals diverge at event {index}:")
                print(f"  {args.journal}: {short(left)}")
                print(f"  {args.diff}: {short(right)}")
                return 1
        if len(ours) != len(theirs):
            longer = args.journal if len(ours) > len(theirs) else args.diff
            print(
                f"journals agree for {min(len(ours), len(theirs))} event(s); "
                f"{longer} continues for {abs(len(ours) - len(theirs))} more"
            )
            return 1
        print(f"journals identical: {len(ours)} event(s)")
        return 0

    instance_id = _pick_instance(store, args.instance)
    if instance_id is None:
        return 1

    if args.at is not None:
        state = derive_snapshot(store, instance_id, upto_seq=args.at)
        print(f"instance {instance_id} ({state.definition}) at seq {args.at}")
        print(f"  time={state.time}  status={state.status}  events={state.events_applied}")
        if state.tainted:
            print("  WARNING: journal truncated before this point; state is unsound")
        print("\nActivity tree ('>' active, '*' executed):")
        print(_render_activity_tree(state.tree, state.executed, state.active))
        print("\nVariables:")
        for name in sorted(state.variables):
            print(f"  {name} = {state.variables[name]!r}")
        if state.compensations:
            print("\nPending compensations (LIFO):")
            for step in reversed(state.compensations):
                print(f"  {step}")
        if state.result is not None:
            print(f"\nResult: {state.result!r}")
        if state.fault is not None:
            print(f"Fault: {state.fault!r}")
        return 0

    print(f"instance {instance_id}: journal events")
    for record in store.records(instance_id=instance_id):
        kind = record.get("type")
        if kind == EVENT:
            print(
                f"  seq={record['seq']:>4}  t={record['time']:>9.3f}  "
                f"{record['event']:<26} {_summarize_event(record)}"
            )
        elif kind == CHECKPOINT:
            print(
                f"  seq={record['seq']:>4}  t={record['time']:>9.3f}  "
                f"[checkpoint] status={record['status']}"
            )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Analyze exported spans: slowest traces, tree, critical path, phases."""
    import json
    import math

    from repro.metrics import Table
    from repro.observability import (
        assemble_trace,
        attribute_latency,
        critical_path,
        group_traces,
        load_spans,
        render_trace_tree,
        slowest_traces,
        trace_report,
    )
    from repro.observability.analysis import PHASES

    try:
        spans = load_spans(args.spans)
    except OSError as error:
        print(f"cannot read spans: {error}", file=sys.stderr)
        return 1
    if not spans:
        print("no spans found in the given files", file=sys.stderr)
        return 1
    grouped = group_traces(spans)
    print(f"{len(spans)} span(s) across {len(grouped)} trace(s)")

    if args.tree is not None:
        bucket = grouped.get(args.tree)
        if bucket is None:
            print(f"no trace {args.tree!r} in the given files", file=sys.stderr)
            return 1
        print()
        print(render_trace_tree(bucket))

    summaries = slowest_traces(spans, limit=args.slowest)
    table = Table(
        ["trace", "root span", "start", "duration (s)", "spans", "status"],
        title=f"Slowest {len(summaries)} trace(s)",
    )
    for summary in summaries:
        table.add_row(
            [
                summary.trace_id,
                summary.root_name,
                f"{summary.start:.3f}",
                f"{summary.duration:.6f}",
                str(summary.span_count),
                summary.status,
            ]
        )
    print()
    print(table.render())

    target_id = args.tree if args.tree is not None else summaries[0].trace_id
    tree = assemble_trace(grouped[target_id])

    if args.critical_path:
        print(f"\ncritical path of {target_id} ({tree.duration:.6f}s):")
        for span in critical_path(tree):
            start = span.start_time
            end = span.end_time if span.end_time is not None else start
            print(
                f"  {span.name:<28} {end - start:>10.6f}s  "
                f"[{start:.3f} .. {end:.3f}]  {span.span_id}"
            )

    if args.attribution:
        # The invariant the acceptance gate rides on: phase self-times
        # tile the root span exactly, for *every* trace in the files.
        for trace_id, bucket in sorted(grouped.items()):
            candidate = assemble_trace(bucket)
            total = math.fsum(attribute_latency(candidate).values())
            if not math.isclose(total, candidate.duration, rel_tol=1e-9, abs_tol=1e-9):
                print(
                    f"attribution for {trace_id} sums to {total!r}, "
                    f"root duration is {candidate.duration!r}",
                    file=sys.stderr,
                )
                return 1
        attribution = attribute_latency(tree)
        total = math.fsum(attribution.values())
        print(f"\nlatency attribution for {target_id}:")
        breakdown = Table(["phase", "seconds", "share"])
        for phase in PHASES:
            seconds = attribution.get(phase, 0.0)
            share = seconds / total if total else 0.0
            breakdown.add_row([phase, f"{seconds:.6f}", f"{share:6.1%}"])
        print(breakdown.render())
        print(
            f"phases sum to {total:.6f}s == root span duration "
            f"{tree.duration:.6f}s (checked for all {len(grouped)} trace(s))"
        )

    if args.report is not None:
        payload = trace_report(spans, limit=args.slowest)
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"\nwrote trace report to {args.report}")
    return 0


def _cmd_scenarios(_args: argparse.Namespace) -> int:
    from repro.casestudies.stocktrading import (
        build_trading_deployment,
        compliance_removal_policy_document,
        credit_rating_policy_document,
        currency_conversion_policy_document,
        pest_analysis_policy_document,
    )
    from repro.metrics import Table
    from repro.policy import serialize_policy_document

    deployment = build_trading_deployment(seed=5)
    for document in (
        currency_conversion_policy_document(),
        pest_analysis_policy_document(),
        credit_rating_policy_document(),
        compliance_removal_policy_document(),
    ):
        deployment.masc.load_policies(serialize_policy_document(document))

    scenarios = {
        "baseline national (50k AUD)": dict(amount=50_000.0, country="AU"),
        "international (20k USD)": dict(amount=20_000.0, country="US", currency="USD"),
        "high-risk country (BR)": dict(amount=8_000.0, country="BR", currency="USD"),
        "large personal trade (250k)": dict(amount=250_000.0, profile="personal"),
        "corporate trade (2k)": dict(amount=2_000.0, profile="corporate"),
        "small trade (500)": dict(amount=500.0),
    }
    table = Table(
        ["Scenario", "Status", "CC", "PEST", "CreditRating", "Compliance"],
        title="Section 2.2 — customization scenario matrix",
    )
    for label, kwargs in scenarios.items():
        instance = deployment.run_order(**kwargs)
        executed = instance.executed_activities
        table.add_row(
            [
                label,
                instance.status.value,
                "convert-currency" in executed,
                "pest-analysis" in executed,
                "credit-rating" in executed,
                "market-compliance" in executed,
            ]
        )
    print(table.render())
    print(f"\nBusiness-value ledger: {deployment.masc.repository.business_totals()}")
    return 0


def _cmd_quickcheck(_args: argparse.Namespace) -> int:
    print("1/3 Table 1 (reduced volume)...")
    rows = regenerate_table1(seeds=(11,), clients=2, requests=100)
    print(render_table1(rows))
    vep_failures = rows["VEP"][0]
    direct_worst = max(rows[k][0] for k in "ABCD")
    print(f"\n    VEP {vep_failures:.0f} vs worst direct {direct_worst:.0f} failures/1000")

    print("\n2/3 Figure 5 (reduced sweep)...")
    series = regenerate_figure5(sizes_kb=(1, 16, 64), requests=60)
    print(render_figure5(series, sizes_kb=(1, 16, 64)))

    print("\n3/3 Customization scenarios...")
    result = _cmd_scenarios(_args)
    print("\nquickcheck OK" if result == 0 else "quickcheck FAILED")
    return result


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the MASC/wsBus (Middleware 2006) experiments.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    table1 = subparsers.add_parser("table1", help="Table 1: reliability & availability")
    table1.add_argument("--seeds", nargs="+", type=int, default=[11, 23, 47])
    table1.add_argument("--clients", type=int, default=4)
    table1.add_argument("--requests", type=int, default=250, help="requests per client")
    table1.add_argument(
        "--trace", metavar="PATH",
        help="dump spans of the VEP runs to a JSONL file "
        "(spans are in-process: forces --jobs 1)",
    )
    table1.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="shard (config, seed) cells over N worker processes",
    )
    table1.add_argument(
        "--chunk", type=int, default=None, metavar="C",
        help="cells per pool task (default: automatic, ~4 chunks per worker)",
    )
    table1.set_defaults(handler=_cmd_table1)

    figure5 = subparsers.add_parser("figure5", help="Figure 5: RTT vs request size")
    figure5.add_argument("--requests", type=int, default=150, help="requests per point")
    figure5.add_argument(
        "--trace", metavar="PATH",
        help="dump spans of the wsBus runs to a JSONL file "
        "(spans are in-process: forces --jobs 1)",
    )
    figure5.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="shard (operation, size, path) cells over N worker processes",
    )
    figure5.add_argument(
        "--chunk", type=int, default=None, metavar="C",
        help="cells per pool task (default: automatic, ~4 chunks per worker)",
    )
    figure5.set_defaults(handler=_cmd_figure5)

    storm = subparsers.add_parser(
        "storm", help="Resilience ablation under a fault storm"
    )
    storm.add_argument("--seed", type=int, default=7)
    storm.add_argument(
        "--crash-engine",
        action="store_true",
        help="run the engine crash/rehydration scenario instead of the ablation",
    )
    storm.add_argument(
        "--clients", type=int, default=None,
        help="concurrent clients (default: 6; 32 with --traffic; per "
        "partition, 4, with --fleet)",
    )
    storm.add_argument(
        "--requests", type=int, default=None,
        help="requests per client (default: 60; 120 with --traffic; 30 with --fleet)",
    )
    storm.add_argument(
        "--traffic",
        action="store_true",
        help="run the overload (flash-crowd) ablation instead: shed-only vs "
        "the traffic-shaping tier (response cache + load leveling + "
        "idempotency keys)",
    )
    storm.add_argument(
        "--fleet", type=int, default=None, metavar="N",
        help="run the federation ablation instead: the same partitioned "
        "workload through one capacity-bounded bus vs an N-shard fleet "
        "(consistent-hash VEP placement, gossip QoS, leader-elected "
        "adaptation)",
    )
    storm.add_argument(
        "--report", metavar="PATH",
        help="with --traffic/--fleet: write the ablation numbers as JSON to PATH",
    )
    storm.add_argument(
        "--sagas",
        action="store_true",
        help="with --crash-engine: crash the saga case studies at every "
        "activity boundary, including each compensation step",
    )
    storm.add_argument(
        "--journal", metavar="DIR",
        help="with --crash-engine: keep each run's event journal as JSONL in "
        "DIR and verify checkpoint/journal byte-identity",
    )
    storm.add_argument(
        "--slo",
        action="store_true",
        help="load the SCM SLO policies: burn-rate events drive adaptation "
        "(selection-strategy switch + tightened breakers) on the resilience-on arm",
    )
    storm.add_argument(
        "--trace", metavar="PATH",
        help="dump spans of the resilience-on run to a JSONL file, plus a "
        "flight-recorder dump (PATH.flight.json) and a Prometheus snapshot "
        "(PATH.prom); spans are recorded in-process, so this forces --jobs 1",
    )
    storm.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run the two ablation arms in separate worker processes "
        "(ignored — forced to 1 — when --trace is given)",
    )
    storm.add_argument(
        "--chunk", type=int, default=None, metavar="C",
        help="cells per pool task (default: automatic, ~4 chunks per worker)",
    )
    storm.set_defaults(handler=_cmd_storm)

    replay = subparsers.add_parser(
        "replay", help="step through an event journal written by --journal"
    )
    replay.add_argument("journal", help="journal JSONL file (a CheckpointStore log)")
    replay.add_argument(
        "--instance", metavar="ID",
        help="instance to inspect (required when the journal holds several)",
    )
    replay.add_argument(
        "--at", type=int, metavar="SEQ",
        help="reconstruct and print the activity tree and variables at this "
        "sequence number (inclusive)",
    )
    replay.add_argument(
        "--diff", metavar="OTHER",
        help="compare this journal's event stream against another journal",
    )
    replay.add_argument(
        "--verify", action="store_true",
        help="check every stored checkpoint byte-matches its journal-derived "
        "snapshot; exit 1 on any divergence",
    )
    replay.set_defaults(handler=_cmd_replay)

    trace = subparsers.add_parser(
        "trace",
        help="analyze span exports: slowest traces, critical path, attribution",
    )
    trace.add_argument(
        "spans", nargs="+", metavar="SPANS",
        help="span files from one run: --trace JSONL exports and/or "
        "flight-recorder dumps, merged and de-duplicated",
    )
    trace.add_argument(
        "--slowest", type=int, default=10, metavar="N",
        help="how many traces to list, slowest first (default 10)",
    )
    trace.add_argument(
        "--tree", metavar="ID",
        help="render this trace's span tree and target it for --critical-path/"
        "--attribution (default: the slowest trace)",
    )
    trace.add_argument(
        "--critical-path", action="store_true",
        help="print the targeted trace's critical path, root to leaf",
    )
    trace.add_argument(
        "--attribution", action="store_true",
        help="attribute the targeted trace's latency to phases (queue-wait / "
        "mediation / network / service-execution / adaptation); exits 1 if "
        "any trace's phases fail to sum to its root duration",
    )
    trace.add_argument(
        "--report", metavar="PATH",
        help="write the full machine-readable trace report as JSON",
    )
    trace.set_defaults(handler=_cmd_trace)

    top = subparsers.add_parser(
        "top",
        help="live per-VEP/per-endpoint operations table of an SLO-enabled storm",
    )
    top.add_argument("--seed", type=int, default=7)
    top.add_argument("--clients", type=int, default=6)
    top.add_argument("--requests", type=int, default=60, help="requests per client")
    top.add_argument(
        "--interval", type=float, default=10.0,
        help="simulated seconds between table frames",
    )
    top.add_argument(
        "--window", type=float, default=60.0,
        help="sliding window (simulated seconds) for the Req/Avail/Burn columns",
    )
    top.set_defaults(handler=_cmd_top)

    scenarios = subparsers.add_parser(
        "scenarios", help="Section 2.2 customization scenario matrix"
    )
    scenarios.set_defaults(handler=_cmd_scenarios)

    quickcheck = subparsers.add_parser(
        "quickcheck", help="Fast smoke run of all experiments"
    )
    quickcheck.set_defaults(handler=_cmd_quickcheck)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
