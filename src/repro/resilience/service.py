"""The Resilience Service: policy-driven protection machinery for wsBus.

Reads the resilience configuration vocabulary of WS-Policy4MASC
(:class:`~repro.policy.actions.CircuitBreakerAction`,
:class:`~repro.policy.actions.BulkheadAction`,
:class:`~repro.policy.actions.AdaptiveTimeoutAction`,
:class:`~repro.policy.actions.LoadSheddingAction`) out of the policy
repository and materializes the standing machinery: per-endpoint circuit
breakers fed from the invoker's observation stream, per-endpoint /
per-VEP bulkheads, adaptive timeout lookups against the QoS Measurement
Service, and bus-wide load shedding.

Configuration policies use the conventional ``resilience.configure``
trigger and are matched against endpoints/VEPs through their
:class:`~repro.policy.model.PolicyScope` — the same scope semantics as
every other MASC policy. The Adaptation Manager can also (re)apply a
resilience action at fault time via :meth:`ResilienceService.apply_action`
(dynamic rules take precedence over statically configured ones).

With no resilience policies loaded the service is inert
(:attr:`ResilienceService.active` is False) and the bus message path is
byte-for-byte the pre-resilience one — the ablation switch is purely
which policies are loaded.
"""

from __future__ import annotations

from repro.observability import NULL_METRICS, NULL_TRACER
from repro.policy.actions import (
    AdaptiveTimeoutAction,
    BulkheadAction,
    CircuitBreakerAction,
    LoadSheddingAction,
    ResilienceAction,
)
from repro.resilience.breaker import BreakerState, BreakerTransition, CircuitBreaker
from repro.resilience.bulkhead import Bulkhead
from repro.resilience.shedding import LoadShedder
from repro.resilience.timeouts import adaptive_timeout
from repro.soap import FaultCode, SoapFault, SoapFaultError

__all__ = ["Admission", "ResilienceService"]

#: metric name per breaker target state
_TRANSITION_COUNTERS = {
    "open": "wsbus.resilience.breaker.opened",
    "closed": "wsbus.resilience.breaker.closed",
    "half_open": "wsbus.resilience.breaker.half_opened",
}


class Admission:
    """Capacity holds granted to one VEP mediation; release exactly once."""

    __slots__ = ("holds", "wait")

    def __init__(self, holds, wait=None) -> None:
        self.holds = holds
        #: Event to yield on before proceeding (bulkhead queue), or None.
        self.wait = wait

    def release(self) -> None:
        for hold in self.holds:
            hold.release()
        self.holds = ()


class ResilienceService:
    """Materializes and serves the bus's resilience configuration."""

    def __init__(self, env, qos, repository, tracer=None, metrics=None) -> None:
        self.env = env
        self.qos = qos
        self.repository = repository
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        #: Wired by the bus after its retry queue exists (shedding input).
        self._retry_queue = None
        self._clock = lambda: env.now
        # Static rules from the repository; dynamic ones enacted at runtime
        # (via apply_action) are kept separately and always win.
        self._breaker_rules: list[tuple] = []
        self._bulkhead_rules: list[tuple] = []
        self._timeout_rules: list[tuple] = []
        self._dynamic_rules: list[tuple] = []
        self._static_shedding: LoadSheddingAction | None = None
        self._dynamic_shedding: LoadSheddingAction | None = None
        # Live machinery (created on first use, state survives reconfigures).
        self._breakers: dict[str, CircuitBreaker] = {}
        self._endpoint_bulkheads: dict[str, Bulkhead] = {}
        self._vep_bulkheads: dict[str, Bulkhead] = {}
        self.shedder: LoadShedder | None = None
        #: Every breaker transition on this bus, in simulation order.
        self.transitions: list[BreakerTransition] = []
        self.fail_fast_total = 0
        self.refresh_from_policies()

    # -- configuration ----------------------------------------------------------------

    @property
    def retry_queue(self):
        return self._retry_queue

    @retry_queue.setter
    def retry_queue(self, queue) -> None:
        self._retry_queue = queue
        if self.shedder is not None:
            self.shedder.retry_queue = queue

    @property
    def active(self) -> bool:
        """True when any resilience behavior is configured."""
        return bool(
            self._breaker_rules
            or self._bulkhead_rules
            or self._timeout_rules
            or self.shedder is not None
        )

    def refresh_from_policies(self) -> None:
        """Re-scan the repository for ``resilience.configure`` policies.

        Call after hot-loading new policy documents. Live breakers and
        bulkheads keep their runtime state; their thresholds are updated
        in place when the matching configuration changed.
        """
        self._breaker_rules = list(self._dynamic_rules)
        self._bulkhead_rules = list(self._dynamic_rules)
        self._timeout_rules = list(self._dynamic_rules)
        self._static_shedding = None
        for policy in self.repository.adaptation_policies():
            if "resilience.configure" not in policy.triggers:
                continue
            for action in policy.actions:
                rule = (policy.scope, action)
                if isinstance(action, CircuitBreakerAction):
                    self._breaker_rules.append(rule)
                elif isinstance(action, BulkheadAction):
                    self._bulkhead_rules.append(rule)
                elif isinstance(action, AdaptiveTimeoutAction):
                    self._timeout_rules.append(rule)
                elif isinstance(action, LoadSheddingAction):
                    # Shedding guards the whole bus: only unscoped policies
                    # apply, first by priority wins.
                    if self._static_shedding is None and policy.scope.matches():
                        self._static_shedding = action
        self._reconfigure_live()

    def apply_action(self, action: ResilienceAction, scope=None) -> bool:
        """Enact one resilience action at runtime (adaptation pathway).

        Dynamic rules are matched before static ones, so a corrective
        policy can tighten thresholds mid-run without a policy reload.
        """
        if isinstance(action, LoadSheddingAction):
            self._dynamic_shedding = action
        elif isinstance(
            action, (CircuitBreakerAction, BulkheadAction, AdaptiveTimeoutAction)
        ):
            from repro.policy.model import PolicyScope

            self._dynamic_rules.insert(0, (scope if scope is not None else PolicyScope(), action))
        else:
            return False
        self.refresh_from_policies()
        return True

    def _reconfigure_live(self) -> None:
        shedding = self._dynamic_shedding or self._static_shedding
        if shedding is None:
            self.shedder = None
        elif self.shedder is None:
            self.shedder = LoadShedder(shedding, retry_queue=self.retry_queue)
        else:
            self.shedder.config = shedding
        if self.shedder is not None:
            self.shedder.retry_queue = self.retry_queue
        for breaker in self._breakers.values():
            config = self._match(
                self._breaker_rules, CircuitBreakerAction, endpoint=breaker.endpoint
            )
            if config is not None and config is not breaker.config:
                breaker.config = config
        for address, bulkhead in self._endpoint_bulkheads.items():
            config = self._match(
                self._bulkhead_rules, BulkheadAction, endpoint=address, applies_to="endpoint"
            )
            if config is not None:
                bulkhead.max_concurrent = config.max_concurrent
                bulkhead.max_queue = config.max_queue

    @staticmethod
    def _match(rules, action_type, applies_to=None, **subject):
        for scope, action in rules:
            if not isinstance(action, action_type):
                continue
            if applies_to is not None and action.applies_to != applies_to:
                continue
            if scope.matches(**subject):
                return action
        return None

    # -- circuit breakers -------------------------------------------------------------

    def breaker_for(self, endpoint: str) -> CircuitBreaker | None:
        """The breaker guarding ``endpoint``, created on first demand."""
        breaker = self._breakers.get(endpoint)
        if breaker is None:
            config = self._match(self._breaker_rules, CircuitBreakerAction, endpoint=endpoint)
            if config is None:
                return None
            breaker = CircuitBreaker(
                endpoint, config, self._clock, on_transition=self._record_transition
            )
            self._breakers[endpoint] = breaker
        return breaker

    def member_selectable(self, endpoint: str) -> bool:
        """Non-consuming peek for selection: skip evidently-broken members."""
        breaker = self.breaker_for(endpoint)
        return breaker is None or breaker.would_allow()

    def breaker_rejection(self, endpoint: str) -> SoapFault | None:
        """Send-time admission: the fail-fast fault, or None to proceed."""
        breaker = self.breaker_for(endpoint)
        if breaker is None or breaker.allow_request():
            return None
        self.fail_fast_total += 1
        if self.metrics.enabled:
            self.metrics.counter("wsbus.resilience.breaker.fail_fast").inc()
        return SoapFault(
            FaultCode.SERVICE_UNAVAILABLE,
            f"circuit breaker open for {endpoint}",
            source="wsbus-resilience",
        )

    def _record_transition(self, transition: BreakerTransition) -> None:
        self.transitions.append(transition)
        if self.metrics.enabled:
            self.metrics.counter(_TRANSITION_COUNTERS[transition.to_state]).inc()
        if self.tracer.enabled:
            span = self.tracer.start_span(
                "resilience.breaker",
                attributes={"endpoint": transition.endpoint},
            )
            span.add_event(
                "transition",
                from_state=transition.from_state,
                to_state=transition.to_state,
                reason=transition.reason,
            )
            span.end(status=transition.to_state)

    def transition_log(self) -> list[tuple[float, str, str, str]]:
        """(time, endpoint, from, to) per transition — the determinism log."""
        return [
            (t.time, t.endpoint, t.from_state, t.to_state) for t in self.transitions
        ]

    def breaker_states(self) -> dict[str, str]:
        return {address: b.state.value for address, b in sorted(self._breakers.items())}

    # -- outcome feed ------------------------------------------------------------------

    def attach_to_invoker(self, invoker) -> None:
        invoker.add_observer(self.observe)

    def observe(self, record) -> None:
        """Invoker-observer entry point feeding the breakers."""
        if not self._breaker_rules:
            return
        breaker = self.breaker_for(record.target)
        if breaker is None:
            return
        if record.succeeded:
            breaker.record_success()
        elif record.fault_code is not FaultCode.CLIENT:
            # Caller-side faults (malformed requests) say nothing about the
            # endpoint's health and must not trip its breaker.
            breaker.record_failure()

    # -- adaptive timeouts -------------------------------------------------------------

    def timeout_for(self, endpoint: str, fallback: float | None) -> float | None:
        config = self._match(self._timeout_rules, AdaptiveTimeoutAction, endpoint=endpoint)
        if config is None:
            return fallback
        return adaptive_timeout(self.qos, endpoint, config, fallback)

    # -- bulkheads ---------------------------------------------------------------------

    def endpoint_bulkhead(self, endpoint: str) -> Bulkhead | None:
        bulkhead = self._endpoint_bulkheads.get(endpoint)
        if bulkhead is None:
            config = self._match(
                self._bulkhead_rules, BulkheadAction, endpoint=endpoint, applies_to="endpoint"
            )
            if config is None:
                return None
            bulkhead = Bulkhead(
                f"endpoint:{endpoint}", self.env, config.max_concurrent, config.max_queue
            )
            self._endpoint_bulkheads[endpoint] = bulkhead
        return bulkhead

    def vep_bulkhead(self, vep_name: str, service_type: str) -> Bulkhead | None:
        bulkhead = self._vep_bulkheads.get(vep_name)
        if bulkhead is None:
            config = self._match(
                self._bulkhead_rules,
                BulkheadAction,
                service_type=service_type,
                applies_to="vep",
            )
            if config is None:
                return None
            bulkhead = Bulkhead(
                f"vep:{vep_name}", self.env, config.max_concurrent, config.max_queue
            )
            self._vep_bulkheads[vep_name] = bulkhead
        return bulkhead

    # -- bus admission (shedding + VEP bulkhead) ---------------------------------------

    def admit_vep_request(self, vep_name: str, service_type: str) -> Admission:
        """Admit one mediation, or raise its retryable rejection fault."""
        holds = []
        if self.shedder is not None:
            fault = self.shedder.try_admit()
            if fault is not None:
                if self.metrics.enabled:
                    self.metrics.counter("wsbus.resilience.shed").inc()
                raise SoapFaultError(fault)
            holds.append(self.shedder)
        bulkhead = self.vep_bulkhead(vep_name, service_type)
        wait = None
        if bulkhead is not None:
            try:
                wait = bulkhead.try_acquire()
            except SoapFaultError:
                if self.metrics.enabled:
                    self.metrics.counter("wsbus.resilience.bulkhead.rejected").inc()
                for hold in holds:
                    hold.release()
                raise
            holds.append(bulkhead)
        return Admission(holds, wait)

    # -- reporting ---------------------------------------------------------------------

    def summary(self) -> dict:
        """Counters and states for ``bus.stats_summary()``."""
        bulkheads = {}
        for bulkhead in self._endpoint_bulkheads.values():
            bulkheads[bulkhead.key] = bulkhead.stats()
        for bulkhead in self._vep_bulkheads.values():
            bulkheads[bulkhead.key] = bulkhead.stats()
        return {
            "breakers": self.breaker_states(),
            "breaker_transitions": len(self.transitions),
            "fail_fast": self.fail_fast_total,
            "bulkheads": bulkheads,
            "shedding": self.shedder.stats() if self.shedder is not None else None,
        }

    def open_endpoints(self) -> list[str]:
        return [
            address
            for address, breaker in sorted(self._breakers.items())
            if breaker.state is not BreakerState.CLOSED
        ]
