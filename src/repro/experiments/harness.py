"""Deployment + workload harnesses for the SCM experiments."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.casestudies.scm import (
    RETAILER_CONTRACT,
    build_scm_deployment,
    logging_skip_policy_document,
    resilience_policy_document,
    retailer_recovery_policy_document,
    slo_policy_document,
    traffic_policy_document,
)
from repro.metrics import describe, reliability_report
from repro.observability import MetricsRegistry
from repro.policy import (
    AdaptationPolicy,
    LoadSheddingAction,
    PolicyDocument,
    PolicyRepository,
    PolicyScope,
)
from repro.services import ProcessingModel
from repro.workload import RequestPlan, WorkloadRunner
from repro.wsbus import WsBus

def catalog_plan(target, timeout=5.0, think=2.0, padding=0):
    return RequestPlan(
        target=target,
        operation="getCatalog",
        payload_factory=lambda c, i: RETAILER_CONTRACT.operation("getCatalog").input.build_interned(),
        timeout=timeout,
        think_time_seconds=think,
        padding_bytes=padding,
    )


def order_plan(target, timeout=10.0, think=0.0, padding=0):
    return RequestPlan(
        target=target,
        operation="submitOrder",
        payload_factory=lambda c, i: RETAILER_CONTRACT.operation("submitOrder").input.build(
            orderId=f"o-{c}-{i}", items="TVx1,DVDx1", customerId=f"cust-{c}"
        ),
        timeout=timeout,
        think_time_seconds=think,
        padding_bytes=padding,
    )


@dataclass
class Table1Row:
    configuration: str
    failures_per_1000: float
    availability: float


def run_direct_configuration(
    retailer: str, seed: int, clients: int = 4, requests: int = 250
) -> Table1Row:
    """Direct point-to-point invocations of a single Retailer under the
    Table 1 fault mix."""
    deployment = build_scm_deployment(seed=seed, log_events=False)
    deployment.inject_table1_mix()
    runner = WorkloadRunner(deployment.env, deployment.network)
    result = runner.run(
        catalog_plan(deployment.retailers[retailer].address),
        clients=clients,
        requests_per_client=requests,
    )
    # Reliability comes from the request sample; availability is observed
    # over a much longer window (the injector keeps cycling after the
    # workload ends) so rare-outage retailers like C are not all-or-nothing.
    deployment.env.run(until=deployment.env.now + 50_000.0)
    deployment.availability_injector.finalize()
    log = deployment.availability_injector.logs[deployment.retailers[retailer].address]
    report = reliability_report(f"direct {retailer}", result.records)
    return Table1Row(
        configuration=f"Only Retailer {retailer} used by the client",
        failures_per_1000=report.failures_per_1000,
        availability=log.availability(deployment.env.now),
    )


def run_vep_configuration(
    seed: int,
    clients: int = 4,
    requests: int = 250,
    selection_strategy: str = "round_robin",
    broadcast: bool = False,
    max_retries: int = 3,
    retry_delay: float = 2.0,
    skip_logging_policy: bool = False,
    tracer=None,
):
    """All four Retailers behind one wsBus VEP, same fault mix.

    Returns (Table1Row, bus, workload_result). ``tracer`` (an
    :class:`~repro.observability.Tracer`) records the run's spans.
    """
    deployment = build_scm_deployment(seed=seed, log_events=False)
    deployment.inject_table1_mix()
    if tracer is not None:
        tracer.rebind_clock(deployment.env)
    repository = PolicyRepository()
    repository.load(
        retailer_recovery_policy_document(
            max_retries=max_retries, retry_delay_seconds=retry_delay
        )
    )
    if skip_logging_policy:
        repository.load(logging_skip_policy_document())
    bus = WsBus(
        deployment.env,
        deployment.network,
        repository=repository,
        registry=deployment.registry,
        member_timeout=5.0,
        tracer=tracer,
    )
    vep = bus.create_vep(
        "retailers",
        RETAILER_CONTRACT,
        members=deployment.retailer_addresses,
        selection_strategy=selection_strategy,
        broadcast=broadcast,
    )
    runner = WorkloadRunner(deployment.env, deployment.network)
    result = runner.run(
        catalog_plan(vep.address, timeout=60.0),
        clients=clients,
        requests_per_client=requests,
    )
    report = reliability_report("wsBus VEP", result.records)
    row = Table1Row(
        configuration="All 4 Retailer services exposed as 1 wsBus VEP",
        failures_per_1000=report.failures_per_1000,
        availability=report.availability,
    )
    return row, bus, result


@dataclass
class StormResult:
    """Outcome of one fault-storm run (resilience on or off)."""

    resilience: bool
    total_requests: int
    delivered: int
    reliability: float
    failures_per_1000: float
    #: RTT statistics over *all* requests, failures included — a request
    #: that burns the full client timeout before failing still cost that
    #: time, so excluding it would flatter the arm with more failures.
    rtt_stats: dict[str, float]
    breaker_transitions: list[tuple[float, str, str, str]]
    metrics: dict
    bus: WsBus
    #: ``bus.slo.summary()`` when the SLO engine was active, else None.
    slo: dict | None = None

    @property
    def p99_rtt(self) -> float:
        return self.rtt_stats.get("p99", float("inf"))


def run_fault_storm(
    seed: int,
    resilience: bool,
    clients: int = 6,
    requests: int = 60,
    client_timeout: float = 8.0,
    tracer=None,
    slo: bool = False,
    extra_policies=(),
    on_tick=None,
    tick_interval: float = 10.0,
    flight_recorder=None,
) -> StormResult:
    """All four Retailers behind one VEP under the fault storm.

    The only difference between the two arms is whether the resilience
    policy document is loaded: with ``resilience=False`` the bus's
    :class:`~repro.resilience.ResilienceService` stays inactive and every
    send follows the pre-resilience code path. Both arms share the same
    recovery policies (retry with jitter, then substitute) so the ablation
    isolates the breaker/bulkhead/adaptive-timeout/shedding contribution.

    With ``slo=True`` the SCM SLO policy document is also loaded, turning
    on the full feedback loop: the bus's
    :class:`~repro.observability.slo.SloService` watches per-endpoint
    availability and emits burn-rate events that the reaction policy turns
    into a selection-strategy switch. ``on_tick`` (a callable receiving the
    bus) runs every ``tick_interval`` simulated seconds alongside the
    workload — the hook behind ``python -m repro top``. A
    ``flight_recorder`` (already registered on the tracer by the caller)
    additionally receives every SLO event via
    :meth:`~repro.observability.ops.FlightRecorder.record_event`.
    """
    deployment = build_scm_deployment(seed=seed, log_events=False)
    deployment.inject_fault_storm()
    if tracer is not None:
        tracer.rebind_clock(deployment.env)
    repository = PolicyRepository()
    repository.load(
        retailer_recovery_policy_document(
            max_retries=1,
            retry_delay_seconds=0.5,
            jitter_fraction=0.5,
            max_delay_seconds=2.0,
        )
    )
    if resilience:
        repository.load(resilience_policy_document())
    if slo:
        repository.load(slo_policy_document())
    # Further policy documents the experiment should run under — e.g. a
    # ``Tracing`` assertion controlling head-based trace sampling.
    for document in extra_policies:
        repository.load(document)
    metrics = MetricsRegistry()
    bus = WsBus(
        deployment.env,
        deployment.network,
        repository=repository,
        registry=deployment.registry,
        random_source=deployment.random_source,
        member_timeout=5.0,
        tracer=tracer,
        metrics=metrics,
    )
    if flight_recorder is not None:
        bus.slo.add_sink(flight_recorder.record_event)
    vep = bus.create_vep(
        "retailers",
        RETAILER_CONTRACT,
        members=deployment.retailer_addresses,
        selection_strategy="round_robin",
    )
    if on_tick is not None:

        def _ticker():
            while True:
                yield deployment.env.timeout(tick_interval)
                on_tick(bus)

        deployment.env.process(_ticker(), name="storm-ticker")
    runner = WorkloadRunner(deployment.env, deployment.network)
    result = runner.run(
        catalog_plan(vep.address, timeout=client_timeout, think=0.5),
        clients=clients,
        requests_per_client=requests,
    )
    report = reliability_report("fault storm", result.records)
    total = len(result.records)
    delivered = len(result.successes)
    return StormResult(
        resilience=resilience,
        total_requests=total,
        delivered=delivered,
        reliability=delivered / total if total else 0.0,
        failures_per_1000=report.failures_per_1000,
        rtt_stats=describe([record.duration for record in result.records]),
        breaker_transitions=bus.resilience.transition_log(),
        metrics=metrics.snapshot(),
        bus=bus,
        slo=bus.slo.summary() if bus.slo.active else None,
    )


@dataclass
class OverloadStormResult:
    """Outcome of one overload-storm run (shed-only vs traffic shaping)."""

    mode: str
    total_requests: int
    delivered: int
    reliability: float
    failures_per_1000: float
    #: RTT statistics over *all* requests, failures included (same
    #: rationale as :class:`StormResult`).
    rtt_stats: dict[str, float]
    #: ``failure_rate / (1 - availability_target/100)`` — how many error
    #: budgets at the availability target this run burned. 1.0 means the
    #: budget is exactly exhausted; 50.0 means a 50x overspend.
    error_budget_burn: float
    shed: int
    throttled: int
    leveled: int
    cache_hits: int
    idempotency: dict
    #: ``bus.traffic.summary()`` when the traffic tier was active, else None.
    traffic: dict | None
    metrics: dict
    bus: WsBus

    @property
    def p99_rtt(self) -> float:
        return self.rtt_stats.get("p99", float("inf"))


def shed_only_policy_document(max_inflight: int = 16) -> PolicyDocument:
    """Just the unscoped load-shedding gate — the blunt overload control.

    The overload ablation's baseline arm: reject everything past
    ``max_inflight`` concurrent mediations with a retryable
    ``ServiceUnavailable``. No breakers, no bulkheads, no adaptive
    timeouts — so the comparison against the traffic-shaping arm
    isolates cache + leveling against shedding alone.
    """
    document = PolicyDocument("overload-shed-only")
    document.adaptation_policies.append(
        AdaptationPolicy(
            name="bus-load-shedding",
            triggers=("resilience.configure",),
            scope=PolicyScope(),
            actions=(LoadSheddingAction(max_inflight=max_inflight),),
            priority=10,
            adaptation_type="prevention",
        )
    )
    return document


def run_overload_storm(
    seed: int,
    traffic: bool,
    clients: int = 32,
    requests: int = 120,
    client_timeout: float = 4.0,
    availability_target: float = 99.0,
    max_inflight: int = 16,
    processing_seconds: float = 0.25,
) -> OverloadStormResult:
    """A flash crowd against one slow Retailer VEP: shed-only vs shaped.

    No fault injection — the overload *is* the fault. Every Retailer's
    processing model is slowed to ``processing_seconds`` so a burst of
    ``clients`` concurrent ``getCatalog`` callers (think time 50ms) far
    exceeds the fleet's service rate. Both arms load the same unscoped
    shedding gate (:func:`shed_only_policy_document`); the ``traffic``
    arm additionally loads :func:`traffic_policy_document` — response
    cache + load leveling + idempotency keys. The ablation switch is
    purely which policies are loaded, so the shed-only arm runs the
    byte-identical pre-traffic mediation path.

    The headline numbers: p99 RTT over all requests and
    ``error_budget_burn`` — the failure rate expressed in multiples of
    the error budget at ``availability_target``.
    """
    deployment = build_scm_deployment(seed=seed, log_events=False)
    for retailer in deployment.retailers.values():
        retailer.processing = ProcessingModel(
            base_seconds=processing_seconds,
            per_kb_seconds=0.0,
            jitter_fraction=0.1,
        )
    repository = PolicyRepository()
    repository.load(
        retailer_recovery_policy_document(max_retries=1, retry_delay_seconds=0.25)
    )
    repository.load(shed_only_policy_document(max_inflight=max_inflight))
    if traffic:
        repository.load(traffic_policy_document())
    metrics = MetricsRegistry()
    bus = WsBus(
        deployment.env,
        deployment.network,
        repository=repository,
        registry=deployment.registry,
        random_source=deployment.random_source,
        member_timeout=5.0,
        metrics=metrics,
    )
    vep = bus.create_vep(
        "retailers",
        RETAILER_CONTRACT,
        members=deployment.retailer_addresses,
        selection_strategy="round_robin",
    )
    runner = WorkloadRunner(deployment.env, deployment.network)
    result = runner.run(
        catalog_plan(vep.address, timeout=client_timeout, think=0.05),
        clients=clients,
        requests_per_client=requests,
    )
    report = reliability_report("overload storm", result.records)
    total = len(result.records)
    delivered = len(result.successes)
    reliability = delivered / total if total else 0.0
    budget = 1.0 - availability_target / 100.0
    shedder = bus.resilience.shedder
    snapshot = metrics.snapshot()
    counters = snapshot.get("counters", {})
    return OverloadStormResult(
        mode="traffic" if traffic else "shed",
        total_requests=total,
        delivered=delivered,
        reliability=reliability,
        failures_per_1000=report.failures_per_1000,
        rtt_stats=describe([record.duration for record in result.records]),
        error_budget_burn=(1.0 - reliability) / budget if budget > 0 else float("inf"),
        shed=shedder.shed_total if shedder is not None else 0,
        throttled=counters.get("wsbus.traffic.throttled", 0),
        leveled=counters.get("wsbus.traffic.leveled", 0),
        cache_hits=counters.get("wsbus.traffic.cache.hits", 0),
        idempotency=deployment.container.idempotency.stats(),
        traffic=bus.traffic.summary() if bus.traffic.active else None,
        metrics=snapshot,
        bus=bus,
    )


def run_rtt_point(
    operation: str,
    padding: int,
    through_bus: bool,
    seed: int = 21,
    clients: int = 2,
    requests: int = 150,
    tracer=None,
):
    """One Figure 5 data point: mean RTT at one request size.

    No fault injection — Figure 5 measures pure mediation overhead.
    """
    deployment = build_scm_deployment(seed=seed, log_events=False)
    target = deployment.retailers["C"].address
    if through_bus:
        if tracer is not None:
            tracer.rebind_clock(deployment.env)
        # Client-side deployment, as in the paper's Figure 5 setup: the
        # client reaches wsBus over loopback and wsBus crosses the LAN.
        bus = WsBus(
            deployment.env,
            deployment.network,
            repository=PolicyRepository(),
            registry=deployment.registry,
            member_timeout=30.0,
            colocated_with_clients=True,
            tracer=tracer,
        )
        vep = bus.create_vep(
            "retailers", RETAILER_CONTRACT, members=[target], selection_strategy="primary"
        )
        target = vep.address
    plan = (
        catalog_plan(target, timeout=30.0, think=0.0, padding=padding)
        if operation == "getCatalog"
        else order_plan(target, timeout=30.0, think=0.0, padding=padding)
    )
    runner = WorkloadRunner(deployment.env, deployment.network)
    result = runner.run(plan, clients=clients, requests_per_client=requests)
    stats = result.rtt_stats()
    return stats["mean"], result


@dataclass
class CrashRecoveryResult:
    """Outcome of one crash-recovery scenario run.

    ``equivalent`` is the acceptance check: the killed-and-rehydrated run
    must end with the same result, the same final variables, and the same
    tracking-event sequence (pre-crash events + post-recovery live events,
    replay markers excluded) as the uninterrupted same-seed run.
    """

    process: str
    seed: int
    crash_after_completions: int
    crash_time: float | None
    checkpoints: int
    journal_records: int
    replayed_activities: int
    reference_status: str
    recovered_status: str
    result_match: bool
    variables_match: bool
    events_match: bool
    divergences: list[str] = field(default_factory=list)

    @property
    def equivalent(self) -> bool:
        return (
            self.recovered_status == self.reference_status == "completed"
            and self.result_match
            and self.variables_match
            and self.events_match
        )


def _scm_composition(seed: int):
    """A fresh SCM backend plus the purchase composition definition."""
    from repro.casestudies.scm.process import build_scm_process
    from repro.orchestration import TrackingService, WorkflowEngine

    deployment = build_scm_deployment(seed=seed, log_events=False)
    definition = build_scm_process(
        deployment.retailers["C"].address, deployment.logging.address
    )

    def make_engine():
        engine = WorkflowEngine(deployment.env, network=deployment.network)
        engine.add_service(TrackingService())
        return engine

    return deployment.env, make_engine, definition


def _trading_composition(seed: int):
    """A fresh stock-trading backend plus the base trading definition."""
    from repro.casestudies.stocktrading import (
        build_trading_deployment,
        build_trading_process,
    )
    from repro.orchestration import TrackingService, WorkflowEngine

    deployment = build_trading_deployment(seed=seed, start_notifications=False)
    masc = deployment.masc
    definition = build_trading_process(
        fund_manager_address=deployment.fund_manager.address,
        analysis_address=deployment.analysis_services[0].address,
        compliance_address=deployment.compliance.address,
        market_address=deployment.market.address,
    )

    def make_engine():
        engine = WorkflowEngine(masc.env, network=masc.network, registry=masc.registry)
        engine.add_service(TrackingService())
        return engine

    return masc.env, make_engine, definition


def _scm_saga_composition(seed: int):
    """The SCM purchase saga, aborting after payment so it unwinds."""
    from repro.casestudies.scm.process import build_scm_saga_process
    from repro.orchestration import TrackingService, WorkflowEngine

    deployment = build_scm_deployment(seed=seed, log_events=False)
    definition = build_scm_saga_process(
        deployment.retailers["C"].address, deployment.logging.address, abort=True
    )

    def make_engine():
        engine = WorkflowEngine(deployment.env, network=deployment.network)
        engine.add_service(TrackingService())
        return engine

    return deployment.env, make_engine, definition


def _trading_saga_composition(seed: int):
    """The trading unwind-position saga, aborting after the trade."""
    from repro.casestudies.stocktrading import (
        build_trading_deployment,
        build_trading_saga_process,
    )
    from repro.orchestration import TrackingService, WorkflowEngine

    deployment = build_trading_deployment(seed=seed, start_notifications=False)
    masc = deployment.masc
    definition = build_trading_saga_process(
        fund_manager_address=deployment.fund_manager.address,
        analysis_address=deployment.analysis_services[0].address,
        market_address=deployment.market.address,
        payment_address=deployment.payment.address,
        abort=True,
    )

    def make_engine():
        engine = WorkflowEngine(masc.env, network=masc.network, registry=masc.registry)
        engine.add_service(TrackingService())
        return engine

    return masc.env, make_engine, definition


_CRASH_COMPOSITIONS = {
    "scm": _scm_composition,
    "trading": _trading_composition,
    "scm-saga": _scm_saga_composition,
    "trading-saga": _trading_saga_composition,
}


def count_crash_boundaries(process: str, seed: int = 0) -> int:
    """Activity-completion boundaries a clean run passes.

    Every value in ``range(1, count + 1)`` is a distinct kill point for
    :func:`run_crash_recovery`'s ``crash_after_completions`` — for the saga
    compositions that includes each *compensation* activity's boundary.
    """
    from repro.orchestration import RuntimeService

    builder = _CRASH_COMPOSITIONS.get(process)
    if builder is None:
        raise ValueError(f"unknown crash-recovery process {process!r}")
    env, make_engine, definition = builder(seed)
    engine = make_engine()
    engine.register_definition(definition)

    class _Counter(RuntimeService):
        def __init__(self) -> None:
            self.count = 0

        def activity_completed(self, instance, activity) -> None:
            self.count += 1

    counter = _Counter()
    engine.add_service(counter)
    instance = engine.start(definition.name)
    env.run(instance.process)
    return counter.count


def run_crash_recovery(
    process: str = "scm",
    seed: int = 0,
    crash_after_completions: int = 2,
    store_path=None,
) -> CrashRecoveryResult:
    """Kill the engine mid-flight and prove checkpoint recovery is exact.

    Two same-seed deployments run the same composition. The reference run
    is uninterrupted. In the crash run a
    :class:`~repro.faultinjection.ProcessCrashInjector` kills the engine
    after ``crash_after_completions`` activity completions; the instance is
    then rehydrated from the checkpoint store into a *fresh* engine on the
    same simulation and driven to completion. Because the crash freezes the
    instance at an activity boundary and replay fast-forwards completed
    work, the recovered run must be byte-identical to the reference.
    """
    from repro.faultinjection import ProcessCrashInjector
    from repro.orchestration import TrackingService
    from repro.persistence import CheckpointStore, CheckpointingService, encode_value

    builder = _CRASH_COMPOSITIONS.get(process)
    if builder is None:
        raise ValueError(f"unknown crash-recovery process {process!r}")

    # Reference (uninterrupted) run on its own same-seed deployment.
    ref_env, make_ref_engine, ref_definition = builder(seed)
    ref_engine = make_ref_engine()
    ref_engine.register_definition(ref_definition)
    reference = ref_engine.start(ref_definition.name)
    ref_env.run(reference.process)
    ref_tracking = ref_engine.service_of_type(TrackingService)
    ref_events = [
        (event.kind, event.activity_name)
        for event in ref_tracking.events_for(reference.id)
    ]

    # Crash run: checkpointing on, engine killed mid-flight.
    env, make_engine, definition = builder(seed)
    store = CheckpointStore(store_path)
    doomed_engine = make_engine()
    doomed_engine.add_service(CheckpointingService(store, strict=True))
    injector = ProcessCrashInjector(env, crash_after_completions)
    doomed_engine.add_service(injector)
    doomed_engine.register_definition(definition)
    doomed = doomed_engine.start(definition.name)
    env.run(until=injector.crashed_event)
    pre_events = [
        (event.kind, event.activity_name)
        for event in doomed_engine.service_of_type(TrackingService).events_for(doomed.id)
    ]

    # Recovery: rehydrate into a fresh engine on the same simulation. When
    # the crash landed after the last freeze point the instance drained to
    # completion synchronously — the store's final checkpoint records the
    # outcome and a real recovery manager would not rehydrate at all.
    if doomed.status.is_final:
        recovered = doomed
        replayed = 0
        live_tail: list[tuple[str, str | None]] = []
    else:
        recovery_engine = make_engine()
        recovery_engine.add_service(CheckpointingService(store, strict=True))
        recovered = recovery_engine.rehydrate(store, doomed.id)
        env.run(recovered.process)

        post_events = [
            (event.kind, event.activity_name)
            for event in recovery_engine.service_of_type(TrackingService).events_for(
                recovered.id
            )
        ]
        replayed = sum(1 for kind, _name in post_events if kind == "activity_replayed")
        live_tail = [
            event
            for event in post_events
            if event[0] not in ("activity_replayed", "instance_rehydrated")
        ]

    divergences: list[str] = []
    result_match = encode_value(reference.result) == encode_value(recovered.result)
    if not result_match:
        divergences.append(
            f"result: reference {reference.result!r} != recovered {recovered.result!r}"
        )
    try:
        variables_match = {
            name: encode_value(value) for name, value in reference.variables.items()
        } == {name: encode_value(value) for name, value in recovered.variables.items()}
    except Exception as error:  # noqa: BLE001 - comparison must not crash the report
        variables_match = False
        divergences.append(f"variables not comparable: {error}")
    else:
        if not variables_match:
            differing = sorted(
                name
                for name in set(reference.variables) | set(recovered.variables)
                if encode_value(reference.variables.get(name))
                != encode_value(recovered.variables.get(name))
            )
            divergences.append(f"variables diverged: {differing}")
    events_match = ref_events == pre_events + live_tail
    if not events_match:
        divergences.append(
            f"tracking events diverged: reference {len(ref_events)} events, "
            f"recovered {len(pre_events)} pre-crash + {len(live_tail)} live"
        )

    return CrashRecoveryResult(
        process=process,
        seed=seed,
        crash_after_completions=crash_after_completions,
        crash_time=injector.crash_time,
        checkpoints=len(store.records(record_type="checkpoint")),
        journal_records=len(store.records(record_type="modification")),
        replayed_activities=replayed,
        reference_status=reference.status.value,
        recovered_status=recovered.status.value,
        result_match=result_match,
        variables_match=variables_match,
        events_match=events_match,
        divergences=divergences,
    )
