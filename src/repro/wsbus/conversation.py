"""Conversation management.

Section 3.1 lists "conversation management" among the middleware services
a VEP provides to service compositions. A conversation is the sequence of
correlated messages belonging to one interaction — here correlated by the
MASC ProcessInstanceID header when present, falling back to an explicit
``ConversationID`` extension header.

The manager tracks per-conversation state (participants, message counts,
timing), detects conversations abandoned beyond an idle timeout (raising a
MASC event so policies can react — e.g. terminate the orphaned process
instance), and answers the queries monitoring policies need ("querying the
log of prior interactions to get some historical data").
"""

from __future__ import annotations

import enum
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.core.events import MASCEvent
from repro.soap import MASC_NS, SoapEnvelope
from repro.xmlutils import QName

__all__ = ["Conversation", "ConversationManager", "ConversationState"]

CONVERSATION_HEADER = QName(MASC_NS, "ConversationID")


class ConversationState(enum.Enum):
    ACTIVE = "active"
    COMPLETED = "completed"
    ABANDONED = "abandoned"


@dataclass
class Conversation:
    """State of one correlated message exchange."""

    conversation_id: str
    started_at: float
    last_activity_at: float
    state: ConversationState = ConversationState.ACTIVE
    message_count: int = 0
    fault_count: int = 0
    participants: set[str] = field(default_factory=set)
    operations: list[str] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.last_activity_at - self.started_at


class ConversationManager:
    """Correlates messages into conversations and watches their lifecycle."""

    def __init__(self, env, idle_timeout_seconds: float = 300.0) -> None:
        self.env = env
        self.idle_timeout_seconds = idle_timeout_seconds
        self.conversations: dict[str, Conversation] = {}
        self._sinks: list[Callable[[MASCEvent], None]] = []
        self._watchdog_started = False

    def add_sink(self, sink: Callable[[MASCEvent], None]) -> None:
        self._sinks.append(sink)

    def attach_to_invoker(self, invoker) -> None:
        invoker.add_message_tap(self.observe_message)

    # -- correlation ---------------------------------------------------------------

    @staticmethod
    def correlation_id(envelope: SoapEnvelope) -> str | None:
        """The conversation a message belongs to, if identifiable."""
        if envelope.addressing.process_instance_id:
            return envelope.addressing.process_instance_id
        header = envelope.header(CONVERSATION_HEADER)
        if header is not None and header.text:
            return header.text
        return None

    def observe_message(
        self, direction: str, envelope: SoapEnvelope, operation: str, target: str
    ) -> None:
        """Message-tap entry point: fold a message into its conversation."""
        conversation_id = self.correlation_id(envelope)
        if conversation_id is None:
            return
        conversation = self.conversations.get(conversation_id)
        if conversation is None:
            conversation = Conversation(
                conversation_id=conversation_id,
                started_at=self.env.now,
                last_activity_at=self.env.now,
            )
            self.conversations[conversation_id] = conversation
            self._ensure_watchdog()
        if conversation.state is not ConversationState.ACTIVE:
            # A late message revives an abandoned conversation.
            conversation.state = ConversationState.ACTIVE
        conversation.message_count += 1
        conversation.last_activity_at = self.env.now
        conversation.participants.add(target)
        conversation.operations.append(f"{direction}:{operation}")
        if direction == "fault":
            conversation.fault_count += 1

    def complete(self, conversation_id: str) -> bool:
        """Mark a conversation finished (e.g. its process completed)."""
        conversation = self.conversations.get(conversation_id)
        if conversation is None or conversation.state is not ConversationState.ACTIVE:
            return False
        conversation.state = ConversationState.COMPLETED
        conversation.last_activity_at = self.env.now
        return True

    # -- queries ----------------------------------------------------------------------

    def conversation(self, conversation_id: str) -> Conversation | None:
        return self.conversations.get(conversation_id)

    def active_conversations(self) -> list[Conversation]:
        return [
            conversation
            for conversation in self.conversations.values()
            if conversation.state is ConversationState.ACTIVE
        ]

    def conversations_with(self, participant: str) -> list[Conversation]:
        return [
            conversation
            for conversation in self.conversations.values()
            if participant in conversation.participants
        ]

    # -- abandonment detection ---------------------------------------------------------

    def _ensure_watchdog(self) -> None:
        if not self._watchdog_started:
            self._watchdog_started = True
            self.env.process(self._watchdog(), name="conversation-watchdog")

    def _watchdog(self):
        interval = max(1.0, self.idle_timeout_seconds / 4.0)
        while True:
            yield self.env.timeout(interval)
            now = self.env.now
            for conversation in self.conversations.values():
                if conversation.state is not ConversationState.ACTIVE:
                    continue
                if now - conversation.last_activity_at < self.idle_timeout_seconds:
                    continue
                conversation.state = ConversationState.ABANDONED
                event = MASCEvent(
                    name="conversation.abandoned",
                    time=now,
                    process_instance_id=conversation.conversation_id,
                    context={
                        "conversation_id": conversation.conversation_id,
                        "idle_seconds": now - conversation.last_activity_at,
                        "message_count": conversation.message_count,
                        "participants": sorted(conversation.participants),
                    },
                    raised_by="conversation-manager",
                )
                for sink in self._sinks:
                    sink(event)
