"""Concurrent simulated clients driving a target endpoint."""

from __future__ import annotations

from collections.abc import Callable, Generator
from dataclasses import dataclass, field

from repro.metrics.stats import describe
from repro.services import InvocationRecord, Invoker
from repro.simulation import Environment
from repro.soap import SoapFaultError
from repro.transport import Network
from repro.xmlutils import Element

__all__ = ["RequestPlan", "WorkloadResult", "WorkloadRunner"]


@dataclass(frozen=True)
class RequestPlan:
    """What each request looks like.

    ``payload_factory(client_id, request_index)`` builds the payload;
    ``padding_bytes`` inflates the serialized request (the Figure 5 request-
    size sweeps); ``think_time_seconds`` is the inter-request delay ("the
    delay between requests is set to zero to increase the load").
    """

    target: str
    operation: str
    payload_factory: Callable[[int, int], Element]
    timeout: float | None = 10.0
    padding_bytes: int = 0
    think_time_seconds: float = 0.0


@dataclass
class WorkloadResult:
    """Everything measured during one workload run."""

    records: list[InvocationRecord] = field(default_factory=list)
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at

    @property
    def successes(self) -> list[InvocationRecord]:
        return [record for record in self.records if record.succeeded]

    @property
    def failures(self) -> list[InvocationRecord]:
        return [record for record in self.records if not record.succeeded]

    def rtt_stats(self) -> dict[str, float]:
        """Round-trip time statistics over successful requests."""
        return describe([record.duration for record in self.successes])

    def throughput(self) -> float:
        """Successful requests per second over the whole run."""
        if self.duration <= 0:
            return 0.0
        return len(self.successes) / self.duration


class WorkloadRunner:
    """Runs N concurrent clients, each issuing M requests."""

    def __init__(self, env: Environment, network: Network, caller_prefix: str = "client") -> None:
        self.env = env
        self.network = network
        self.caller_prefix = caller_prefix

    def run(
        self,
        plan: RequestPlan,
        clients: int = 1,
        requests_per_client: int = 100,
    ) -> WorkloadResult:
        """Execute the workload to completion and collect results."""
        result = WorkloadResult(started_at=self.env.now)
        processes = []
        for client_id in range(clients):
            invoker = Invoker(
                self.env,
                self.network,
                caller=f"{self.caller_prefix}-{client_id}",
                default_timeout=plan.timeout,
            )
            invoker.add_observer(result.records.append)
            processes.append(
                self.env.process(
                    self._client_loop(invoker, plan, client_id, requests_per_client),
                    name=("workload", client_id),
                )
            )
        gate = self.env.all_of(processes)
        self.env.run(gate)
        result.finished_at = self.env.now
        return result

    def run_many(
        self,
        plans: list[RequestPlan],
        clients_per_plan: int = 1,
        requests_per_client: int = 100,
    ) -> WorkloadResult:
        """Drive several plans concurrently (one client pool per plan).

        The fleet scenarios spread clients over partitioned VEPs: every
        plan gets its own ``clients_per_plan`` clients, all running in the
        same simulated window, and the result aggregates every record.
        Client names carry the plan index (``client-p2-1``) so records are
        attributable and runs stay deterministic.
        """
        if not plans:
            raise ValueError("run_many needs at least one plan")
        result = WorkloadResult(started_at=self.env.now)
        processes = []
        for plan_index, plan in enumerate(plans):
            for client_id in range(clients_per_plan):
                invoker = Invoker(
                    self.env,
                    self.network,
                    caller=f"{self.caller_prefix}-p{plan_index}-{client_id}",
                    default_timeout=plan.timeout,
                )
                invoker.add_observer(result.records.append)
                processes.append(
                    self.env.process(
                        self._client_loop(invoker, plan, client_id, requests_per_client),
                        name=("workload", plan_index, client_id),
                    )
                )
        gate = self.env.all_of(processes)
        self.env.run(gate)
        result.finished_at = self.env.now
        return result

    def _client_loop(
        self, invoker: Invoker, plan: RequestPlan, client_id: int, requests: int
    ) -> Generator:
        for index in range(requests):
            payload = plan.payload_factory(client_id, index)
            try:
                yield from invoker.invoke(
                    plan.target,
                    plan.operation,
                    payload,
                    timeout=plan.timeout,
                    padding=plan.padding_bytes,
                )
            except SoapFaultError:
                pass  # failures are visible through the invocation records
            if plan.think_time_seconds > 0:
                yield self.env.timeout(plan.think_time_seconds)
