"""The SLO engine: observability-driven adaptation.

PR 1 made the middleware *emit* spans and metrics; this module closes the
loop the paper's Monitoring Service exists for — "notify the Adaptation
Manager" when measured QoS crosses policy thresholds — by making the
measurement substrate itself a sensor:

- :class:`SloObjective` pairs an :class:`~repro.policy.actions.SloAction`
  (availability target + optional latency percentile target, i.e. an
  **error budget**) with a
  :class:`~repro.policy.actions.BurnRateAlertAction` (multi-window burn
  thresholds). Objectives are declared as WS-Policy4MASC adaptation
  policies carrying the conventional ``observability.slo`` trigger — the
  same load-time-scan convention as ``resilience.configure``.
- :class:`SloService` feeds per-endpoint request/failure counters and a
  bucketed latency histogram (with exemplars) into the shared
  :class:`~repro.observability.MetricsRegistry`, and evaluates every
  objective on a fixed simulation-clock cadence over sliding windows.
- Violations become :class:`~repro.core.events.MASCEvent`s —
  ``sloBurnRateExceeded``, ``errorBudgetExhausted``, ``sloRecovered`` —
  with ``trace_parent`` set to an open ``slo.violation`` span, so the
  adaptation they provoke (tighten a circuit breaker, switch a VEP's
  selection strategy) nests under the violation in the trace tree, and
  the event context carries the histogram's exemplars so a p99 outlier
  links the violation back to a concrete request trace.

**Burn rate**: the observed failure fraction divided by the error budget.
A burn rate of 1.0 consumes exactly the budget by the end of the SLO
window; 14x on a fast window means the budget would be gone in under two
hours of a 24h window. ``sloBurnRateExceeded`` fires when *both* the
fast- and slow-window burns exceed their thresholds (fast = reaction
speed, slow = blip suppression); ``errorBudgetExhausted`` fires once the
budget consumed over the SLO window reaches 100%; ``sloRecovered`` fires
when a previously burning objective's fast-window burn drops below 1.0.

Everything is deterministic: evaluation ticks ride the simulation clock,
endpoints are visited in sorted order, and events carry no wall-clock
state — the same seed produces the identical event sequence.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from dataclasses import dataclass

from repro.core.events import MASCEvent
from repro.observability.metrics import NULL_METRICS, labeled_name
from repro.observability.trace_context import TraceContext
from repro.observability.tracing import NULL_TRACER
from repro.policy.actions import BurnRateAlertAction, SloAction

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "SLO_TRIGGER",
    "SloObjective",
    "SloService",
    "SloStatus",
]

#: The trigger naming convention for SLO declaration policies.
SLO_TRIGGER = "observability.slo"

#: Latency bucket upper bounds (seconds) of the per-endpoint histograms.
DEFAULT_LATENCY_BUCKETS = (0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0)

#: Exemplars attached to a violation event's context (most recent first).
_EVENT_EXEMPLARS = 4


@dataclass(frozen=True)
class SloObjective:
    """One declared SLO: the policy that declared it, its scope, and its
    assertions."""

    policy_name: str
    scope: object  # PolicyScope
    slo: SloAction
    alert: BurnRateAlertAction

    @property
    def key(self) -> str:
        return f"{self.policy_name}/{self.slo.name}"

    def describe(self) -> str:
        return f"{self.slo.describe()} [{self.alert.describe()}]"


class SloStatus:
    """Evaluation state of one (objective, endpoint) pair."""

    __slots__ = (
        "state",
        "fast_burn",
        "slow_burn",
        "budget_consumed",
        "latency_observed",
        "latency_violated",
        "events_emitted",
    )

    def __init__(self) -> None:
        self.state = "ok"  # ok | burning | exhausted
        self.fast_burn = 0.0
        self.slow_burn = 0.0
        self.budget_consumed = 0.0
        self.latency_observed: float | None = None
        self.latency_violated = False
        self.events_emitted = 0

    def as_dict(self) -> dict:
        return {
            "state": self.state,
            "fast_burn": self.fast_burn,
            "slow_burn": self.slow_burn,
            "budget_consumed": self.budget_consumed,
            "latency_observed": self.latency_observed,
            "latency_violated": self.latency_violated,
        }


class _EndpointSeries:
    """Counter deltas per evaluation tick: ``(time, requests, failures)``."""

    __slots__ = ("last_requests", "last_failures", "buckets")

    def __init__(self) -> None:
        self.last_requests = 0
        self.last_failures = 0
        self.buckets: deque[tuple[float, int, int]] = deque()

    def advance(self, now: float, requests: int, failures: int, horizon: float) -> None:
        delta_requests = requests - self.last_requests
        delta_failures = failures - self.last_failures
        self.last_requests = requests
        self.last_failures = failures
        self.buckets.append((now, delta_requests, delta_failures))
        cutoff = now - horizon
        while self.buckets and self.buckets[0][0] <= cutoff:
            self.buckets.popleft()

    def window_totals(self, now: float, window: float) -> tuple[int, int]:
        """``(requests, failures)`` observed within the last ``window``."""
        cutoff = now - window
        requests = failures = 0
        for time, delta_requests, delta_failures in self.buckets:
            if time > cutoff:
                requests += delta_requests
                failures += delta_failures
        return requests, failures


class SloService:
    """Evaluates declared SLOs against the bus's metrics registry.

    Inert (``active`` is False) until ``observability.slo`` policies are
    loaded *and* a real :class:`~repro.observability.MetricsRegistry` is
    attached — the SLO engine consumes metrics, so it cannot run against
    :data:`~repro.observability.NULL_METRICS`. When inactive the bus
    message path pays a single attribute check per send.
    """

    def __init__(self, env, repository, metrics=None, tracer=None) -> None:
        self.env = env
        self.repository = repository
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.objectives: list[SloObjective] = []
        #: Audit log of emitted events (plain data; determinism checks).
        self.events: list[dict] = []
        self._sinks: list[Callable[[MASCEvent], None]] = []
        self._service_types: dict[str, str] = {}
        #: endpoint -> (requests counter, failures counter, latency histogram)
        self._instruments: dict[str, tuple] = {}
        self._series: dict[str, _EndpointSeries] = {}
        self._status: dict[tuple[str, str], SloStatus] = {}
        self._process = None
        self.refresh_from_policies()

    # -- configuration -------------------------------------------------------

    @property
    def active(self) -> bool:
        """True when objectives are declared and a metrics registry exists."""
        return bool(self.objectives) and self.metrics.enabled

    def refresh_from_policies(self) -> None:
        """Re-scan the repository for ``observability.slo`` policies.

        Each policy contributes one objective per ``Slo`` assertion,
        paired with the policy's ``BurnRateAlert`` assertion (or the
        default thresholds when none is declared). Call after hot-loading
        documents; the evaluator starts on the next :meth:`ensure_started`.
        """
        objectives: list[SloObjective] = []
        for policy in self.repository.adaptation_policies():
            if SLO_TRIGGER not in policy.triggers:
                continue
            alert = next(
                (a for a in policy.actions if isinstance(a, BurnRateAlertAction)),
                BurnRateAlertAction(),
            )
            for action in policy.actions:
                if isinstance(action, SloAction):
                    objectives.append(
                        SloObjective(
                            policy_name=policy.name,
                            scope=policy.scope,
                            slo=action,
                            alert=alert,
                        )
                    )
        self.objectives = objectives

    def ensure_started(self) -> None:
        """Start the evaluation ticker (idempotent; no-op while inactive)."""
        if self._process is None and self.active:
            self._process = self.env.process(self._run(), name="slo-evaluator")

    def add_sink(self, sink: Callable[[MASCEvent], None]) -> None:
        self._sinks.append(sink)

    def register_endpoint(self, address: str, service_type: str) -> None:
        """Teach the engine which service type an endpoint implements
        (scope matching and event subjects)."""
        self._service_types[address] = service_type

    # -- measurement feed ----------------------------------------------------

    def record(
        self,
        target: str,
        duration: float,
        ok: bool,
        trace_id: str | None = None,
        correlation_id: str | None = None,
        span_id: str | None = None,
    ) -> None:
        """One completed delivery attempt (called from the bus send path)."""
        instruments = self._instruments.get(target)
        if instruments is None:
            instruments = self._instruments[target] = (
                self.metrics.counter(labeled_name("wsbus.endpoint.requests", endpoint=target)),
                self.metrics.counter(labeled_name("wsbus.endpoint.failures", endpoint=target)),
                self.metrics.histogram(
                    labeled_name("wsbus.endpoint.seconds", endpoint=target),
                    window=2048,
                    buckets=DEFAULT_LATENCY_BUCKETS,
                ),
            )
            self._series[target] = _EndpointSeries()
        requests, failures, histogram = instruments
        requests.inc()
        if not ok:
            failures.inc()
        histogram.observe(
            duration, trace_id=trace_id, correlation_id=correlation_id, span_id=span_id
        )

    # -- evaluation ----------------------------------------------------------

    def _run(self):
        interval = min(o.alert.evaluation_interval_seconds for o in self.objectives)
        while True:
            yield self.env.timeout(interval)
            self.evaluate()

    def evaluate(self) -> None:
        """One evaluation tick: advance windows, fire transitions."""
        if not self.objectives:
            return
        now = self.env.now
        horizon = max(
            [o.alert.slow_window_seconds for o in self.objectives]
            + [o.slo.window_seconds for o in self.objectives]
        )
        for target in sorted(self._instruments):
            requests, failures, _histogram = self._instruments[target]
            self._series[target].advance(now, requests.value, failures.value, horizon)
        for objective in self.objectives:
            for target in sorted(self._instruments):
                subject = {
                    "endpoint": target,
                    "service_type": self._service_types.get(target),
                }
                if not objective.scope.matches(**subject):
                    continue
                self._evaluate_pair(objective, target, now)

    def _evaluate_pair(self, objective: SloObjective, target: str, now: float) -> None:
        alert = objective.alert
        slo = objective.slo
        series = self._series[target]
        histogram = self._instruments[target][2]
        status = self._status.setdefault((objective.key, target), SloStatus())
        budget = slo.error_budget

        fast_requests, fast_failures = series.window_totals(now, alert.fast_window_seconds)
        slow_requests, slow_failures = series.window_totals(now, alert.slow_window_seconds)
        slo_requests, slo_failures = series.window_totals(now, slo.window_seconds)
        status.fast_burn = _burn(fast_failures, fast_requests, budget)
        status.slow_burn = _burn(slow_failures, slow_requests, budget)
        status.budget_consumed = _burn(slo_failures, slo_requests, budget)

        status.latency_violated = False
        status.latency_observed = None
        if slo.latency_target_seconds is not None:
            q = float(slo.latency_percentile[1:])
            observed = histogram.percentile(q)
            status.latency_observed = observed
            if observed is not None and observed > slo.latency_target_seconds:
                status.latency_violated = True

        volume_ok = slow_requests >= alert.min_requests
        burning = (
            volume_ok
            and status.fast_burn >= alert.fast_burn_threshold
            and status.slow_burn >= alert.slow_burn_threshold
        )
        exhausted = (
            slo_requests >= alert.min_requests and status.budget_consumed >= 1.0
        )

        if status.state == "ok":
            if burning or status.latency_violated:
                status.state = "burning"
                self._emit("sloBurnRateExceeded", objective, target, status)
            elif exhausted:
                status.state = "exhausted"
                self._emit("errorBudgetExhausted", objective, target, status)
        elif status.state == "burning":
            if exhausted:
                status.state = "exhausted"
                self._emit("errorBudgetExhausted", objective, target, status)
            elif (
                volume_ok
                and status.fast_burn < 1.0
                and not status.latency_violated
                and not burning
            ):
                status.state = "ok"
                self._emit("sloRecovered", objective, target, status)
        # "exhausted" is terminal for the SLO window: the budget is spent;
        # the state resets only once the window slides past the spend.
        elif status.state == "exhausted" and not exhausted and status.fast_burn < 1.0:
            status.state = "ok"
            self._emit("sloRecovered", objective, target, status)

    # -- event emission ------------------------------------------------------

    def _emit(
        self, name: str, objective: SloObjective, target: str, status: SloStatus
    ) -> None:
        status.events_emitted += 1
        histogram = self._instruments[target][2]
        exemplars = histogram.exemplars()[-_EVENT_EXEMPLARS:]
        context = {
            "objective": objective.slo.name,
            "availability_target": objective.slo.availability_target,
            "error_budget": objective.slo.error_budget,
            "fast_burn": status.fast_burn,
            "slow_burn": status.slow_burn,
            "budget_consumed": status.budget_consumed,
            "latency_observed": status.latency_observed,
            "exemplars": exemplars,
        }
        span = None
        if self.tracer.enabled:
            # The exemplar is the bridge from the aggregate violation back
            # to one concrete cross-layer request trace: when the latest
            # exemplar carries a span reference, the violation span joins
            # *that request's trace* — so one trace id runs client →
            # mediation → violation → (leader-forwarded) adaptation.
            parent = None
            if exemplars:
                latest = exemplars[-1]
                if latest.get("trace_id") and latest.get("span_id"):
                    parent = TraceContext(
                        trace_id=latest["trace_id"],
                        span_id=latest["span_id"],
                        correlation_id=latest.get("correlation_id"),
                    )
            span = self.tracer.start_span(
                "slo.violation" if name != "sloRecovered" else "slo.recovered",
                parent=parent,
                attributes={
                    "event": name,
                    "objective": objective.slo.name,
                    "endpoint": target,
                    "fast_burn": round(status.fast_burn, 4),
                    "slow_burn": round(status.slow_burn, 4),
                },
            )
            if exemplars:
                span.set_attribute("exemplar.trace_id", exemplars[-1]["trace_id"])
        event = MASCEvent(
            name=name,
            time=self.env.now,
            service_type=self._service_types.get(target),
            endpoint=target,
            context=context,
            raised_by=objective.policy_name,
            trace_parent=span,
        )
        self.events.append(
            {
                "name": name,
                "time": self.env.now,
                "endpoint": target,
                "objective": objective.slo.name,
                "fast_burn": status.fast_burn,
                "slow_burn": status.slow_burn,
                "budget_consumed": status.budget_consumed,
                "exemplar_trace_ids": [e["trace_id"] for e in exemplars],
            }
        )
        if self.metrics.enabled:
            self.metrics.counter(f"slo.events.{name}").inc()
        for sink in self._sinks:
            sink(event)
        if span is not None:
            span.end(status=name)

    # -- reporting -----------------------------------------------------------

    def status_table(self) -> dict[str, dict[str, dict]]:
        """``{endpoint: {objective: status-dict}}`` in sorted order."""
        table: dict[str, dict[str, dict]] = {}
        for (objective_key, target), status in sorted(self._status.items()):
            table.setdefault(target, {})[objective_key] = status.as_dict()
        return table

    def endpoint_window(self, target: str, window: float) -> tuple[int, int]:
        """``(requests, failures)`` for one endpoint over ``window`` seconds."""
        series = self._series.get(target)
        if series is None:
            return 0, 0
        return series.window_totals(self.env.now, window)

    def summary(self) -> dict:
        """The ``slo`` section of :meth:`~repro.wsbus.bus.WsBus.stats_summary`."""
        return {
            "objectives": [o.describe() for o in self.objectives],
            "status": self.status_table(),
            "events": list(self.events),
        }


def _burn(failures: int, requests: int, budget: float) -> float:
    """Failure fraction over the window, normalized by the error budget."""
    if requests <= 0:
        return 0.0
    return (failures / requests) / budget
