"""Unit tests for the XPath-lite evaluator."""

import pytest

from repro.xmlutils import Element, QName, XPath, XPathError, parse_xml, xpath_evaluate, xpath_value


@pytest.fixture
def order():
    return parse_xml(
        """
        <PurchaseOrder total="1500" currency="AUD">
          <CustomerID>cust-42</CustomerID>
          <Items>
            <Item sku="TV" qty="1"><Price>1299</Price></Item>
            <Item sku="DVD" qty="2"><Price>99</Price></Item>
          </Items>
          <Notes>priority</Notes>
        </PurchaseOrder>
        """
    )


class TestLocationPaths:
    def test_child_step(self, order):
        assert xpath_value(order, "CustomerID") == "cust-42"

    def test_nested_path(self, order):
        assert [e.attributes["sku"] for e in xpath_evaluate(order, "Items/Item")] == [
            "TV",
            "DVD",
        ]

    def test_descendant_step(self, order):
        assert [e.text for e in xpath_evaluate(order, "//Price")] == ["1299", "99"]

    def test_wildcard(self, order):
        assert len(xpath_evaluate(order, "Items/*")) == 2

    def test_absolute_path_from_nested_context(self, order):
        item = xpath_evaluate(order, "Items/Item")[0]
        assert xpath_value(item, "/PurchaseOrder/CustomerID") == "cust-42"

    def test_parent_step(self, order):
        item = xpath_evaluate(order, "Items/Item")[0]
        assert xpath_evaluate(item, "..")[0].name.local == "Items"

    def test_self_step(self, order):
        assert xpath_evaluate(order, ".")[0] is order

    def test_attribute_selection(self, order):
        assert xpath_evaluate(order, "@total") == ["1500"]

    def test_nested_attribute(self, order):
        assert xpath_evaluate(order, "Items/Item/@sku") == ["TV", "DVD"]

    def test_text_function_step(self, order):
        assert xpath_evaluate(order, "Notes/text()") == ["priority"]

    def test_no_match_returns_empty(self, order):
        assert xpath_evaluate(order, "Missing/Path") == []
        assert xpath_value(order, "Missing") is None

    def test_clark_notation_name_test(self):
        root = Element(QName("urn:ns", "r"), children=[Element(QName("urn:ns", "c"), text="v")])
        assert xpath_value(root, "{urn:ns}c") == "v"

    def test_prefixed_name_matches_local(self, order):
        # Prefix is ignored; local-name matching (documented subset).
        assert xpath_value(order, "po:CustomerID") == "cust-42"


class TestPredicates:
    def test_positional(self, order):
        assert xpath_evaluate(order, "Items/Item[2]")[0].attributes["sku"] == "DVD"

    def test_attribute_equality(self, order):
        assert xpath_evaluate(order, "Items/Item[@sku='DVD']")[0].attributes["qty"] == "2"

    def test_child_value_comparison(self, order):
        assert [
            e.attributes["sku"] for e in xpath_evaluate(order, "Items/Item[Price > 500]")
        ] == ["TV"]

    def test_existence_predicate(self, order):
        assert len(xpath_evaluate(order, "Items/Item[Price]")) == 2
        assert xpath_evaluate(order, "Items/Item[Discount]") == []

    def test_attribute_existence(self, order):
        assert len(xpath_evaluate(order, "Items/Item[@sku]")) == 2

    def test_numeric_coercion_both_ways(self, order):
        assert xpath_evaluate(order, "Items/Item[@qty >= 2]")
        assert not xpath_evaluate(order, "Items/Item[@qty > 5]")

    def test_inequality(self, order):
        assert [
            e.attributes["sku"] for e in xpath_evaluate(order, "Items/Item[@sku != 'TV']")
        ] == ["DVD"]

    def test_comparison_against_missing_is_false(self, order):
        assert xpath_evaluate(order, "Items/Item[Missing = 'x']") == []

    def test_chained_predicates(self, order):
        assert xpath_evaluate(order, "Items/Item[@qty='2'][Price < 500]")

    def test_text_predicate(self, order):
        assert xpath_evaluate(order, "Notes[text() = 'priority']")


class TestFunctions:
    def test_contains(self, order):
        assert xpath_evaluate(order, "CustomerID[contains(., 'cust')]")
        assert xpath_evaluate(order, "Items/Item[contains(@sku, 'V')]")

    def test_starts_with(self, order):
        assert len(xpath_evaluate(order, "Items/Item[starts-with(@sku, 'D')]")) == 1

    def test_count(self, order):
        assert xpath_evaluate(order, "Items[count(Item) = 2]")

    def test_number_conversion(self, order):
        assert xpath_evaluate(order, "Items/Item[number(Price) < 100]")

    def test_unknown_function_rejected(self):
        with pytest.raises(XPathError):
            XPath("Items/Item[normalize-space(@sku)]")


class TestMatchesAndErrors:
    def test_matches_true_false(self, order):
        assert XPath("CustomerID").matches(order)
        assert not XPath("Ghost").matches(order)

    def test_value_of_attribute(self, order):
        assert XPath("@currency").value(order) == "AUD"

    def test_garbage_expression_rejected(self):
        with pytest.raises(XPathError):
            XPath("///")

    def test_unbalanced_bracket_rejected(self):
        with pytest.raises(XPathError):
            XPath("Items/Item[@sku")

    def test_empty_predicate_rejected(self):
        with pytest.raises(XPathError):
            XPath("Items/Item[]")

    def test_results_deduplicated_in_document_order(self, order):
        prices = xpath_evaluate(order, "//Item/Price")
        assert [p.text for p in prices] == ["1299", "99"]
