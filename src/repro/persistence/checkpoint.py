"""Dehydration and rehydration of process instances.

This is the WF-style persistence service the paper's process layer relies
on: at every activity boundary (activity completion) and on suspension the
:class:`CheckpointingService` dehydrates the *complete* instance state —
activity tree, variables, execution cursor, compensation stack, pending
result — into an append-only :class:`~repro.persistence.store.CheckpointStore`.
Dynamic modifications applied between checkpoints land in the store as a
replayable journal of :class:`~repro.orchestration.modification.ModificationOperation`
records.

Recovery (:func:`rehydrate_instance`, surfaced as
``WorkflowEngine.rehydrate``) rebuilds a runnable instance in a *fresh*
engine from the latest checkpoint plus the journal tail, and schedules it
with replay credits: already-completed activities fast-forward (emitting
``activity_replayed`` instead of re-executing), so the instance resumes
mid-sequence without re-invoking partners whose effects are already in the
restored variables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.orchestration.activities import Activity, Scope
from repro.orchestration.engine import RuntimeService, WorkflowEngine
from repro.orchestration.instance import InstanceStatus, ProcessInstance
from repro.orchestration.modification import ModificationOperation, perform_operation
from repro.orchestration.xmlio import (
    ProcessSerializationError,
    parse_activity,
    serialize_activity,
)
from repro.persistence.encoding import (
    StateEncodingError,
    decode_value,
    decode_variables,
    encode_value,
    encode_variables,
)
from repro.persistence.store import CHECKPOINT, EVENT, MODIFICATION, CheckpointStore

__all__ = [
    "CheckpointingService",
    "PersistenceError",
    "RestoredState",
    "capture_checkpoint",
    "rehydrate_instance",
    "restore_state",
]


class PersistenceError(RuntimeError):
    """Recovery failed: missing, unusable or final checkpoint state."""


def capture_checkpoint(instance: ProcessInstance) -> dict[str, Any]:
    """Dehydrate one instance into a checkpoint record payload.

    Raises :class:`~repro.orchestration.xmlio.ProcessSerializationError` if
    the activity tree is not fully declarative, or
    :class:`~repro.persistence.encoding.StateEncodingError` if a variable
    cannot be encoded — dehydration never silently drops state.
    """
    return {
        "type": CHECKPOINT,
        "instance_id": instance.id,
        "definition": instance.definition_name,
        "time": instance.env.now,
        "status": instance.status.value,
        "tree": serialize_activity(instance.root),
        "variables": encode_variables(instance.variables),
        "executed": sorted(instance.executed_activities),
        "active": sorted(instance.active_activities),
        "completions": dict(instance.completion_counts),
        "compensations": [entry.step for entry in instance._compensations],
        "result": encode_value(instance.result),
        "input": encode_value(instance.input),
        "fault": encode_value(instance.fault),
        "compensation_request": (
            None
            if instance._compensation_request is None
            else list(instance._compensation_request)
        ),
    }


class CheckpointingService(RuntimeService):
    """Runtime service that dehydrates instances into a checkpoint store.

    Checkpoints are written at every activity completion, on suspension and
    at instance finalization; applied tree modifications are journaled.
    Counters (``persistence.checkpoints``, ``persistence.journal_records``,
    ``persistence.checkpoint_errors``) and ``persistence.checkpoint`` spans
    are exported through the engine's observability bindings.
    """

    def __init__(self, store: CheckpointStore | None = None, strict: bool = False) -> None:
        self.store = store if store is not None else CheckpointStore()
        #: Strict mode re-raises dehydration errors; the default counts and
        #: skips them so a non-serializable test process cannot take the
        #: whole engine down.
        self.strict = strict
        self.errors: list[tuple[str, str]] = []
        self._engine: WorkflowEngine | None = None
        #: Per-instance mirror of the last journaled variable/result/status
        #: state, in encoded form — the diff basis for ``variable_set`` &co.
        self._mirrors: dict[str, dict[str, Any]] = {}
        #: Instances whose state stopped being journalable (the journal
        #: carries a ``journal_truncated`` marker for them).
        self._tainted: set[str] = set()

    def attached(self, engine: WorkflowEngine) -> None:
        self._engine = engine

    # -- hook wiring --------------------------------------------------------------

    def instance_created(self, instance) -> None:
        self._genesis(instance, "instance_created")

    def instance_rehydrated(self, instance) -> None:
        self._genesis(instance, "instance_rehydrated")

    def activity_started(self, instance, activity) -> None:
        self._sync(instance)
        self._emit(instance, "activity_started", {"activity": activity.name})

    def activity_restarted(self, instance, activity) -> None:
        self._sync(instance)
        self._emit(
            instance, "activity_started", {"activity": activity.name, "replayed": True}
        )

    def activity_completed(self, instance, activity) -> None:
        self._sync(instance)
        self._emit(instance, "activity_completed", {"activity": activity.name})
        self._checkpoint(instance, reason=f"activity:{activity.name}")

    def activity_replayed(self, instance, activity) -> None:
        self._sync(instance)
        self._emit(instance, "activity_replayed", {"activity": activity.name})

    def activity_cancelled(self, instance, activity, interrupted) -> None:
        self._sync(instance)
        self._emit(
            instance,
            "activity_cancelled",
            {"activity": activity.name, "interrupted": bool(interrupted)},
        )

    def saga_step_registered(self, instance, scope_name, step_name, replayed) -> None:
        self._sync(instance)
        self._emit(
            instance,
            "saga_step_registered",
            {"scope": scope_name, "step": step_name, "replayed": bool(replayed)},
        )

    def compensation_started(self, instance, step_name, replayed) -> None:
        self._sync(instance)
        self._emit(
            instance,
            "compensation_started",
            {"step": step_name, "replayed": bool(replayed)},
        )

    def activity_compensated(self, instance, step_name, activity, replayed) -> None:
        self._sync(instance)
        self._emit(
            instance,
            "activity_compensated",
            {"step": step_name, "activity": activity.name, "replayed": bool(replayed)},
        )

    def instance_suspended(self, instance) -> None:
        self._sync(instance)
        self._checkpoint(instance, reason="suspended")

    def instance_resumed(self, instance) -> None:
        self._sync(instance)

    def instance_completed(self, instance) -> None:
        self._sync(instance)
        self._checkpoint(instance, reason="completed")

    def instance_faulted(self, instance) -> None:
        self._sync(instance)
        self._checkpoint(instance, reason="faulted")

    def instance_terminated(self, instance) -> None:
        self._sync(instance)
        self._checkpoint(instance, reason="terminated")

    def instance_modified(self, instance, operations, bindings) -> None:
        self._journal(instance, operations, bindings)

    # -- event journal ------------------------------------------------------------

    def _emit(self, instance: ProcessInstance, kind: str, data: dict[str, Any]) -> None:
        """Append one domain-event record for ``instance``."""
        if instance.id in self._tainted:
            return
        if instance.id not in self._mirrors and kind not in (
            "instance_created",
            "instance_rehydrated",
        ):
            # The service was attached after the instance started: open the
            # journal with a genesis snapshot so derivation has a basis.
            self._genesis(instance, "instance_created")
            if instance.id in self._tainted:
                return
        assert self._engine is not None
        self.store.append(
            {
                "type": EVENT,
                "instance_id": instance.id,
                "time": instance.env.now,
                "event": kind,
                "data": data,
            }
        )
        self._engine.metrics.counter("persistence.journal_events").inc()

    def _genesis(self, instance: ProcessInstance, kind: str) -> None:
        """Open an instance's journal with a full snapshot event."""
        if instance.id in self._tainted:
            return
        try:
            payload = capture_checkpoint(instance)
        except (ProcessSerializationError, StateEncodingError) as error:
            self._taint(instance, error)
            return
        data = {key: value for key, value in payload.items() if key != "type"}
        self._mirrors[instance.id] = {
            "variables": dict(payload["variables"]),
            "result": payload["result"],
            "fault": payload["fault"],
            "status": payload["status"],
            "request": payload["compensation_request"],
        }
        self._emit(instance, kind, data)

    def _sync(self, instance: ProcessInstance) -> None:
        """Emit delta events for state that changed since the last sync."""
        if instance.id in self._tainted:
            return
        mirror = self._mirrors.get(instance.id)
        if mirror is None:
            self._genesis(instance, "instance_created")
            return
        try:
            variables = encode_variables(instance.variables)
            result = encode_value(instance.result)
            fault = encode_value(instance.fault)
        except StateEncodingError as error:
            self._taint(instance, error)
            return
        for name, value in variables.items():
            if name not in mirror["variables"] or mirror["variables"][name] != value:
                self._emit(instance, "variable_set", {"name": name, "value": value})
                mirror["variables"][name] = value
        for name in list(mirror["variables"]):
            if name not in variables:
                self._emit(instance, "variable_deleted", {"name": name})
                del mirror["variables"][name]
        if result != mirror["result"]:
            self._emit(instance, "result_set", {"value": result})
            mirror["result"] = result
        if fault != mirror["fault"]:
            self._emit(instance, "fault_set", {"value": fault})
            mirror["fault"] = fault
        if instance.status.value != mirror["status"]:
            self._emit(instance, "status_changed", {"status": instance.status.value})
            mirror["status"] = instance.status.value
        request = (
            None
            if instance._compensation_request is None
            else list(instance._compensation_request)
        )
        if request != mirror["request"]:
            self._emit(instance, "compensation_request_set", {"value": request})
            mirror["request"] = request

    def _taint(self, instance: ProcessInstance, error: Exception) -> None:
        """Stop journaling an instance whose state cannot be encoded."""
        assert self._engine is not None
        if instance.id not in self._tainted:
            self.store.append(
                {
                    "type": EVENT,
                    "instance_id": instance.id,
                    "time": instance.env.now,
                    "event": "journal_truncated",
                    "data": {"reason": str(error)},
                }
            )
            self._tainted.add(instance.id)
            self._engine.metrics.counter("persistence.journal_errors").inc()

    # -- record writers -----------------------------------------------------------

    def _checkpoint(self, instance: ProcessInstance, reason: str) -> None:
        assert self._engine is not None
        engine = self._engine
        span = None
        if engine.tracer.enabled:
            span = engine.tracer.start_span(
                "persistence.checkpoint",
                correlation_id=instance.id,
                parent=instance.span,
                attributes={"reason": reason},
            )
        try:
            record = capture_checkpoint(instance)
        except (ProcessSerializationError, StateEncodingError) as error:
            engine.metrics.counter("persistence.checkpoint_errors").inc()
            self.errors.append((instance.id, str(error)))
            if span is not None:
                span.end(status=f"error:{type(error).__name__}")
            if self.strict:
                raise PersistenceError(
                    f"cannot dehydrate instance {instance.id}: {error}"
                ) from error
            return
        stamped = self.store.append(record)
        engine.metrics.counter("persistence.checkpoints").inc()
        if span is not None:
            span.set_attribute("seq", stamped["seq"])
            span.end(status="written")

    def _journal(self, instance: ProcessInstance, operations, bindings) -> None:
        assert self._engine is not None
        engine = self._engine
        try:
            encoded_ops = [
                {
                    "kind": operation.kind,
                    "anchor": operation.anchor,
                    "activity": (
                        None
                        if operation.activity is None
                        else serialize_activity(operation.activity)
                    ),
                }
                for operation in operations
            ]
            encoded_bindings = encode_variables(dict(bindings))
        except (ProcessSerializationError, StateEncodingError) as error:
            # A non-serializable operation (callable-based activity): the
            # live tree already reflects the edit, so a full checkpoint
            # supersedes the journal entry. Snapshot derivation is unsound
            # past this point, so the event journal is marked truncated.
            self._taint(instance, error)
            self._checkpoint(instance, reason="modification-fallback")
            return
        self._sync(instance)
        self._emit(
            instance,
            "modification_applied",
            {"operations": encoded_ops, "bindings": encoded_bindings},
        )
        self.store.append(
            {
                "type": MODIFICATION,
                "instance_id": instance.id,
                "time": instance.env.now,
                "operations": encoded_ops,
                "bindings": encoded_bindings,
            }
        )
        engine.metrics.counter("persistence.journal_records").inc()


@dataclass
class RestoredState:
    """Decoded recovery state: latest checkpoint + replayed journal tail."""

    instance_id: str
    definition_name: str
    status: str
    root: Activity
    variables: dict[str, Any]
    executed: set[str]
    active: set[str]
    completions: dict[str, int]
    compensations: list[str]
    result: Any
    input: Any
    checkpoint_seq: int
    checkpoint_time: float
    journal_entries: int = 0
    fault: Any = None
    compensation_request: tuple[str, str | None] | None = None
    field_errors: list[str] = field(default_factory=list)


def restore_state(store: CheckpointStore, instance_id: str) -> RestoredState:
    """Rebuild recovery state from the latest checkpoint plus the journal."""
    checkpoint = store.latest_checkpoint(instance_id)
    if checkpoint is None:
        raise PersistenceError(f"no checkpoint recorded for instance {instance_id!r}")
    root = parse_activity(checkpoint["tree"])
    variables = decode_variables(checkpoint["variables"])
    journal = store.journal_after(instance_id, checkpoint["seq"])
    for record in journal:
        for encoded in record["operations"]:
            operation = ModificationOperation(
                kind=encoded["kind"],
                anchor=encoded["anchor"],
                activity=(
                    None
                    if encoded["activity"] is None
                    else parse_activity(encoded["activity"])
                ),
            )
            perform_operation(root, operation)
        variables.update(decode_variables(record.get("bindings", {})))
    return RestoredState(
        instance_id=instance_id,
        definition_name=checkpoint["definition"],
        status=checkpoint["status"],
        root=root,
        variables=variables,
        executed=set(checkpoint["executed"]),
        active=set(checkpoint["active"]),
        completions=dict(checkpoint["completions"]),
        compensations=list(checkpoint["compensations"]),
        result=decode_value(checkpoint["result"]),
        input=decode_value(checkpoint["input"]),
        checkpoint_seq=checkpoint["seq"],
        checkpoint_time=checkpoint["time"],
        journal_entries=len(journal),
        fault=decode_value(checkpoint.get("fault")),
        compensation_request=(
            None
            if checkpoint.get("compensation_request") is None
            else (
                checkpoint["compensation_request"][0],
                checkpoint["compensation_request"][1],
            )
        ),
    )


def rehydrate_instance(
    engine: WorkflowEngine, store: CheckpointStore, instance_id: str
) -> ProcessInstance:
    """Reconstruct a checkpointed instance in ``engine`` and schedule it."""
    if engine.crashed:
        raise PersistenceError("cannot rehydrate into a crashed engine")
    existing = engine.instances.get(instance_id)
    if existing is not None and not existing.status.is_final:
        raise PersistenceError(f"instance {instance_id!r} is already live in this engine")
    state = restore_state(store, instance_id)
    if state.status in ("completed", "faulted", "terminated"):
        raise PersistenceError(
            f"instance {instance_id!r} already reached final status {state.status!r}"
        )
    instance = ProcessInstance(
        engine=engine,
        instance_id=state.instance_id,
        definition_name=state.definition_name,
        root=state.root,
        variables=state.variables,
        input=state.input,
    )
    instance.result = state.result
    instance.executed_activities = set(state.executed)
    instance._replayed_started = frozenset(state.executed)
    # Activities in flight at the checkpoint re-execute for real; anything
    # started-but-not-active had already faulted or been cancelled, so its
    # deterministic re-fault during replay is bookkeeping, not news.
    instance._replayed_active = frozenset(state.active)
    instance._replay_credits = dict(state.completions) or None
    # A pending policy-requested compensation replays deterministically: it
    # re-raises at the first live (uncredited) activity boundary, which is
    # exactly where the pre-crash run aborted.
    instance._compensation_request = state.compensation_request
    # Completion counts are rebuilt credit-by-credit during replay, so a
    # later checkpoint of the recovered run stays self-consistent.
    instance.completion_counts = {}
    for scope_name in state.compensations:
        # Compensations re-register in order as their scopes replay; this
        # pre-pass only matters for scopes whose subtree was later removed
        # by a modification (their replay will never re-run).
        found = instance.find_activity(scope_name)
        if found is None:
            state.field_errors.append(f"compensation scope {scope_name!r} missing")
    if state.status == InstanceStatus.SUSPENDED.value:
        instance.status = InstanceStatus.SUSPENDED
        instance._resume_event = engine.env.event()
    engine.instances[instance.id] = instance
    engine.metrics.counter("engine.instances.rehydrated").inc()
    if engine.tracer.enabled:
        instance.span = engine.tracer.start_span(
            "process.instance",
            correlation_id=instance.id,
            attributes={
                "process": state.definition_name,
                "rehydrated": True,
                "checkpoint_seq": state.checkpoint_seq,
                "journal_entries": state.journal_entries,
            },
        )
    engine.notify("instance_rehydrated", instance)
    instance.process = engine.env.process(
        instance.run(), name=f"instance:{instance.id}:rehydrated"
    )
    return instance
