"""Structured encoding of process variables for dehydration.

Process variables are arbitrary Python values: scalars, nested containers,
XML :class:`~repro.xmlutils.Element` payloads (invoke outputs), and
:class:`~repro.soap.SoapFault` objects (the ``_fault`` scope variable). The
old snapshot service silently filtered everything non-scalar; this module
instead maps every supported value to a JSON-serializable tagged form and
back, so a checkpoint record can round-trip the *complete* variable set.

Encoding rules: JSON scalars pass through unchanged; every other supported
type becomes a ``{"t": <tag>, ...}`` dict. Raw dicts never appear untagged,
so decoding is unambiguous. Unsupported values raise
:class:`StateEncodingError` — dehydration must fail loudly, not drop state.
"""

from __future__ import annotations

from typing import Any

from repro.soap import FaultCode, SoapFault
from repro.xmlutils import Element, parse_xml, serialize_xml

__all__ = [
    "StateEncodingError",
    "decode_value",
    "decode_variables",
    "encode_value",
    "encode_variables",
    "snapshot_variables",
]

_SCALARS = (str, int, float, bool, type(None))


class StateEncodingError(TypeError):
    """A process variable cannot be represented in checkpoint form."""


def encode_value(value: Any) -> Any:
    """Map one variable value to its JSON-serializable tagged form."""
    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, Element):
        return {"t": "xml", "v": serialize_xml(value)}
    if isinstance(value, SoapFault):
        return {
            "t": "fault",
            "code": value.code.value,
            "reason": value.reason,
            "actor": value.actor,
            "source": value.source,
            "detail": None if value.detail is None else serialize_xml(value.detail),
        }
    if isinstance(value, FaultCode):
        return {"t": "faultcode", "v": value.value}
    if isinstance(value, list):
        return {"t": "list", "v": [encode_value(item) for item in value]}
    if isinstance(value, tuple):
        return {"t": "tuple", "v": [encode_value(item) for item in value]}
    if isinstance(value, (set, frozenset)):
        encoded = [encode_value(item) for item in value]
        encoded.sort(key=repr)  # deterministic record bytes
        return {"t": "set", "v": encoded}
    if isinstance(value, dict):
        if all(isinstance(key, str) for key in value):
            return {"t": "map", "v": {key: encode_value(item) for key, item in value.items()}}
        return {
            "t": "pairs",
            "v": [[encode_value(key), encode_value(item)] for key, item in value.items()],
        }
    raise StateEncodingError(
        f"cannot checkpoint value of type {type(value).__name__}: {value!r}"
    )


def decode_value(encoded: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(encoded, _SCALARS):
        return encoded
    if isinstance(encoded, dict):
        tag = encoded.get("t")
        if tag == "xml":
            return parse_xml(encoded["v"])
        if tag == "fault":
            detail = encoded.get("detail")
            return SoapFault(
                code=FaultCode(encoded["code"]),
                reason=encoded["reason"],
                actor=encoded.get("actor"),
                detail=None if detail is None else parse_xml(detail),
                source=encoded.get("source"),
            )
        if tag == "faultcode":
            return FaultCode(encoded["v"])
        if tag == "list":
            return [decode_value(item) for item in encoded["v"]]
        if tag == "tuple":
            return tuple(decode_value(item) for item in encoded["v"])
        if tag == "set":
            return {decode_value(item) for item in encoded["v"]}
        if tag == "map":
            return {key: decode_value(item) for key, item in encoded["v"].items()}
        if tag == "pairs":
            return {decode_value(key): decode_value(item) for key, item in encoded["v"]}
    raise StateEncodingError(f"malformed encoded value: {encoded!r}")


def encode_variables(variables: dict[str, Any]) -> dict[str, Any]:
    """Encode a whole variable set (keys must be strings)."""
    encoded: dict[str, Any] = {}
    for name, value in variables.items():
        if not isinstance(name, str):
            raise StateEncodingError(f"variable names must be strings, got {name!r}")
        try:
            encoded[name] = encode_value(value)
        except StateEncodingError as error:
            raise StateEncodingError(f"variable {name!r}: {error}") from None
    return encoded


def decode_variables(encoded: dict[str, Any]) -> dict[str, Any]:
    """Inverse of :func:`encode_variables`."""
    return {name: decode_value(value) for name, value in encoded.items()}


def snapshot_variables(variables: dict[str, Any]) -> dict[str, Any]:
    """An independent deep copy of a variable set for in-memory snapshots.

    Encodable values round-trip through the checkpoint encoding (guaranteeing
    they would survive dehydration); anything else — e.g. an application
    callable stashed by a test harness — is kept by best-effort deep copy so
    the snapshot never silently loses a variable.
    """
    import copy

    snapshot: dict[str, Any] = {}
    for name, value in variables.items():
        try:
            snapshot[name] = decode_value(encode_value(value))
        except StateEncodingError:
            try:
                snapshot[name] = copy.deepcopy(value)
            except Exception:
                snapshot[name] = value
    return snapshot
