"""Unit tests for service hosting, invocation, and the registry."""

import pytest

from conftest import ECHO_CONTRACT, EchoService, SlowEchoService, run_process
from repro.services import (
    InvocationOutcome,
    Invoker,
    ProcessingModel,
    ServiceRegistry,
    SimulatedService,
)
from repro.simulation import RandomSource
from repro.soap import FaultCode, SoapFault, SoapFaultError
from repro.xmlutils import Element


class TestProcessingModel:
    def test_deterministic_without_jitter(self):
        model = ProcessingModel(base_seconds=0.01, per_kb_seconds=0.001, jitter_fraction=0)
        rng = RandomSource(1).stream("p")
        assert model.sample(1024, rng) == pytest.approx(0.011)

    def test_jitter_varies_samples(self):
        model = ProcessingModel(jitter_fraction=0.5)
        rng = RandomSource(1).stream("p")
        samples = {model.sample(0, rng) for _ in range(10)}
        assert len(samples) > 1


class TestContainer:
    def test_deploy_and_invoke(self, env, network, container, echo_service):
        invoker = Invoker(env, network)

        def client():
            payload = ECHO_CONTRACT.operation("echo").input.build(text="hi")
            response = yield from invoker.invoke("http://test/echo", "echo", payload)
            return response.body.child_text("text")

        assert run_process(env, client()) == "hi@echo1"
        assert echo_service.invocations == 1

    def test_duplicate_address_rejected(self, env, container, echo_service):
        with pytest.raises(ValueError):
            container.deploy(EchoService(env, "other", "http://test/echo"))

    def test_contract_violation_becomes_client_fault(self, env, network, container, echo_service):
        invoker = Invoker(env, network)

        def client():
            bad = Element("echoRequest")  # missing required 'text' part
            with pytest.raises(SoapFaultError) as excinfo:
                yield from invoker.invoke("http://test/echo", "echo", bad)
            return excinfo.value.fault.code

        assert run_process(env, client()) is FaultCode.CLIENT
        assert echo_service.faults_raised == 1

    def test_unknown_operation_faults(self, env, network, container, echo_service):
        invoker = Invoker(env, network)

        def client():
            with pytest.raises(SoapFaultError) as excinfo:
                yield from invoker.invoke("http://test/echo", "nothing", Element("mystery"))
            return excinfo.value.fault.code

        assert run_process(env, client()) is FaultCode.CLIENT

    def test_operation_resolved_by_payload_root(self, env, network, container, echo_service):
        """Callers without a matching action still dispatch via the payload."""
        invoker = Invoker(env, network)

        def client():
            payload = ECHO_CONTRACT.operation("add").input.build(a=2, b=3)
            response = yield from invoker.invoke(
                "http://test/echo", "add", payload, action="urn:uncorrelated"
            )
            return response.body.child_text("sum")

        assert run_process(env, client()) == "5"

    def test_service_fault_propagates_with_source(self, env, network, container):
        class Faulty(SimulatedService):
            contract = ECHO_CONTRACT

            def op_echo(self, payload, ctx):
                yield ctx.work()
                raise SoapFaultError(SoapFault(FaultCode.SERVICE_FAILURE, "bad data"))

        container.deploy(Faulty(env, "faulty", "http://test/faulty"))
        invoker = Invoker(env, network)

        def client():
            payload = ECHO_CONTRACT.operation("echo").input.build(text="x")
            with pytest.raises(SoapFaultError) as excinfo:
                yield from invoker.invoke("http://test/faulty", "echo", payload)
            return excinfo.value.fault

        fault = run_process(env, client())
        assert fault.code is FaultCode.SERVICE_FAILURE
        assert fault.source == "faulty"

    def test_undeploy(self, env, network, container, echo_service):
        container.undeploy("http://test/echo")
        assert container.service_at("http://test/echo") is None
        assert network.endpoint("http://test/echo") is None


class TestInvoker:
    def test_records_success(self, env, network, container, echo_service):
        invoker = Invoker(env, network, caller="tester")
        records = []
        invoker.add_observer(records.append)

        def client():
            payload = ECHO_CONTRACT.operation("echo").input.build(text="x")
            yield from invoker.invoke("http://test/echo", "echo", payload)

        run_process(env, client())
        (record,) = records
        assert record.outcome is InvocationOutcome.SUCCESS
        assert record.caller == "tester"
        assert record.duration > 0
        assert record.request_bytes > 0 and record.response_bytes > 0

    def test_records_unavailable_fault(self, env, network):
        invoker = Invoker(env, network)
        records = []
        invoker.add_observer(records.append)

        def client():
            with pytest.raises(SoapFaultError):
                yield from invoker.invoke("http://ghost", "echo", Element("x"))

        run_process(env, client())
        assert records[0].fault_code is FaultCode.SERVICE_UNAVAILABLE

    def test_timeout_mapped_to_fault(self, env, network, container):
        container.deploy(SlowEchoService(env, "slow", "http://test/slow", delay=50))
        invoker = Invoker(env, network)
        records = []
        invoker.add_observer(records.append)

        def client():
            payload = ECHO_CONTRACT.operation("echo").input.build(text="x")
            with pytest.raises(SoapFaultError) as excinfo:
                yield from invoker.invoke("http://test/slow", "echo", payload, timeout=0.5)
            return excinfo.value.fault.code

        assert run_process(env, client()) is FaultCode.TIMEOUT
        assert records[0].fault_code is FaultCode.TIMEOUT
        assert records[0].duration == pytest.approx(0.5)

    def test_message_taps_see_request_and_response(self, env, network, container, echo_service):
        invoker = Invoker(env, network)
        taps = []
        invoker.add_message_tap(lambda d, e, o, t: taps.append((d, o, t)))

        def client():
            payload = ECHO_CONTRACT.operation("echo").input.build(text="x")
            yield from invoker.invoke("http://test/echo", "echo", payload)

        run_process(env, client())
        assert taps == [
            ("request", "echo", "http://test/echo"),
            ("response", "echo", "http://test/echo"),
        ]

    def test_message_tap_sees_fault(self, env, network, container):
        class Faulty(SimulatedService):
            contract = ECHO_CONTRACT

            def op_echo(self, payload, ctx):
                yield ctx.work()
                raise SoapFaultError(SoapFault(FaultCode.SERVICE_FAILURE, "no"))

        container.deploy(Faulty(env, "f", "http://test/f"))
        invoker = Invoker(env, network)
        taps = []
        invoker.add_message_tap(lambda d, e, o, t: taps.append(d))

        def client():
            payload = ECHO_CONTRACT.operation("echo").input.build(text="x")
            with pytest.raises(SoapFaultError):
                yield from invoker.invoke("http://test/f", "echo", payload)

        run_process(env, client())
        assert taps == ["request", "fault"]

    def test_process_instance_id_attached(self, env, network, container, echo_service):
        invoker = Invoker(env, network)
        seen = []
        invoker.add_message_tap(
            lambda d, e, o, t: seen.append(e.addressing.process_instance_id)
        )

        def client():
            payload = ECHO_CONTRACT.operation("echo").input.build(text="x")
            yield from invoker.invoke(
                "http://test/echo", "echo", payload, process_instance_id="proc-77"
            )

        run_process(env, client())
        assert seen[0] == "proc-77"


class TestRegistry:
    def test_register_and_find(self):
        registry = ServiceRegistry()
        registry.register("Retailer", "A", "http://a")
        registry.register("Retailer", "B", "http://b", {"region": "EU"})
        assert len(registry.find("Retailer")) == 2
        assert registry.find_one("Retailer").name == "A"

    def test_find_with_predicate(self):
        registry = ServiceRegistry()
        registry.register("Retailer", "A", "http://a", {"region": "US"})
        registry.register("Retailer", "B", "http://b", {"region": "EU"})
        found = registry.find("Retailer", lambda r: r.properties.get("region") == "EU")
        assert [record.name for record in found] == ["B"]

    def test_unregister_by_address(self):
        registry = ServiceRegistry()
        registry.register("Retailer", "A", "http://a")
        registry.unregister("http://a")
        assert registry.find("Retailer") == []

    def test_unknown_type_empty(self):
        assert ServiceRegistry().find("Ghost") == []

    def test_len_and_types(self):
        registry = ServiceRegistry()
        registry.register("A", "a", "http://a")
        registry.register("B", "b", "http://b")
        assert len(registry) == 2
        assert registry.service_types == ["A", "B"]


class TestMustUnderstand:
    def test_unknown_must_understand_header_rejected(self, env, network, container, echo_service):
        from repro.soap import SoapEnvelope
        from repro.xmlutils import Element

        invoker = Invoker(env, network)

        def client():
            payload = ECHO_CONTRACT.operation("echo").input.build(text="x")
            envelope = SoapEnvelope.request("http://test/echo", "urn:Echo:echo", payload)
            envelope.add_header(Element("{urn:ext}Security", text="token"), must_understand=True)
            with pytest.raises(SoapFaultError) as excinfo:
                yield from invoker.send(envelope, operation="echo")
            return excinfo.value.fault

        fault = run_process(env, client())
        assert fault.code is FaultCode.CLIENT
        assert "mustUnderstand" in fault.reason

    def test_understood_header_accepted(self, env, network, container):
        from repro.soap import SoapEnvelope
        from repro.xmlutils import Element

        class SecurityAwareEcho(EchoService):
            understood_headers = frozenset({"{urn:ext}Security"})

        container.deploy(SecurityAwareEcho(env, "secure", "http://test/secure"))
        invoker = Invoker(env, network)

        def client():
            payload = ECHO_CONTRACT.operation("echo").input.build(text="x")
            envelope = SoapEnvelope.request("http://test/secure", "urn:Echo:echo", payload)
            envelope.add_header(Element("{urn:ext}Security", text="token"), must_understand=True)
            response = yield from invoker.send(envelope, operation="echo")
            return response.body.child_text("text")

        assert run_process(env, client()) == "x@secure"

    def test_optional_header_ignored(self, env, network, container, echo_service):
        from repro.soap import SoapEnvelope
        from repro.xmlutils import Element

        invoker = Invoker(env, network)

        def client():
            payload = ECHO_CONTRACT.operation("echo").input.build(text="x")
            envelope = SoapEnvelope.request("http://test/echo", "urn:Echo:echo", payload)
            envelope.add_header(Element("{urn:ext}Tracing", text="id"), must_understand=False)
            response = yield from invoker.send(envelope, operation="echo")
            return response.body.child_text("text")

        assert run_process(env, client()) == "x@echo1"
