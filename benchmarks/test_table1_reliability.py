"""Table 1: reliability and availability, direct vs wsBus mediation.

Paper values (Section 3.2, Table 1):

    Only Retailer A : 105 failures/1000, availability 0.952
    Only Retailer B :  81 failures/1000, availability 0.992
    Only Retailer C :  17 failures/1000, availability 0.998
    Only Retailer D :  91 failures/1000, availability 0.983
    wsBus VEP (all) :   6 failures/1000, availability 0.998

Shape assertions: every direct configuration is strictly less reliable
than the VEP (by a large factor), C is the best direct retailer, A the
worst, and the VEP's availability matches or beats the best retailer's.
"""

from __future__ import annotations

from repro.experiments import regenerate_table1, render_table1


def test_table1_reliability_and_availability(benchmark):
    rows = benchmark.pedantic(regenerate_table1, rounds=1, iterations=1)
    print()
    print(render_table1(rows))

    # --- shape assertions -------------------------------------------------
    vep_failures, vep_availability = rows["VEP"]
    direct_failures = {k: rows[k][0] for k in "ABCD"}
    direct_availability = {k: rows[k][1] for k in "ABCD"}

    # The VEP beats every direct configuration on reliability.
    for retailer, failures in direct_failures.items():
        assert vep_failures < failures, (
            f"VEP ({vep_failures:.1f}/1000) should beat retailer {retailer} "
            f"({failures:.1f}/1000)"
        )
    # In the paper the VEP is ~2.8x better than even the best retailer.
    assert vep_failures * 2 < min(direct_failures.values())

    # C is the most reliable direct retailer, A and D the worst pair.
    assert direct_failures["C"] == min(direct_failures.values())
    assert min(direct_failures["A"], direct_failures["D"]) > direct_failures["B"] * 0.9

    # Availability ordering mirrors reliability: C >= B > D > A.
    assert direct_availability["C"] >= direct_availability["B"]
    assert direct_availability["B"] > direct_availability["D"]
    assert direct_availability["D"] > direct_availability["A"]

    # The VEP's availability at least matches the best direct retailer's.
    assert vep_availability >= max(direct_availability.values()) - 0.01
