"""Running process instances.

The instance interprets its own copy of the activity tree on simulated time.
It exposes exactly the control points MASC needs from the runtime:

- **suspend/resume at activity boundaries** (dynamic adaptation suspends the
  instance, edits the tree, resumes it);
- **terminate**;
- **extensible deadlines** (messaging-layer recovery can push a pending
  timeout out while it retries);
- **transient copy + apply-changes** for dynamic modification (see
  :mod:`repro.orchestration.modification`);
- the MASC ProcessInstanceID correlation header on all outgoing invokes.
"""

from __future__ import annotations

import enum
from collections.abc import Generator
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.orchestration.activities import Activity, CompensationScope, Scope
from repro.orchestration.errors import ProcessFault, ProcessTerminated
from repro.simulation import Interrupt
from repro.soap import FaultCode, SoapFault, SoapFaultError
from repro.xmlutils import Element

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.orchestration.engine import WorkflowEngine

__all__ = ["CompensationEntry", "DeadlineHandle", "InstanceStatus", "ProcessInstance"]


class InstanceStatus(enum.Enum):
    RUNNING = "running"
    SUSPENDED = "suspended"
    COMPLETED = "completed"
    FAULTED = "faulted"
    TERMINATED = "terminated"

    @property
    def is_final(self) -> bool:
        return self in (
            InstanceStatus.COMPLETED,
            InstanceStatus.FAULTED,
            InstanceStatus.TERMINATED,
        )


@dataclass
class DeadlineHandle:
    """A pending timeout that cross-layer coordination may extend."""

    activity_name: str
    deadline: float
    active: bool = True

    def extend(self, extra_seconds: float) -> None:
        self.deadline += max(0.0, extra_seconds)


@dataclass
class CompensationEntry:
    """One registered compensation: undo ``step`` by running ``activity``.

    ``scope`` names the owning :class:`CompensationScope` (None when the
    registration happened outside any saga scope); scoped unwinds only pop
    entries tagged with their scope.
    """

    step: str
    activity: Activity
    scope: str | None = None


class ProcessInstance:
    """One execution of a process definition."""

    def __init__(
        self,
        engine: "WorkflowEngine",
        instance_id: str,
        definition_name: str,
        root: Activity,
        variables: dict[str, Any],
        input: Element | None = None,
    ) -> None:
        self.engine = engine
        self.env = engine.env
        self.id = instance_id
        self.definition_name = definition_name
        self.root = root
        self.variables = variables
        self.input = input
        self.result: Any = None
        self.status = InstanceStatus.RUNNING
        self.fault: SoapFault | None = None
        #: Names of activities that have started at least once.
        self.executed_activities: set[str] = set()
        #: Names currently executing (between started and completed).
        self.active_activities: set[str] = set()
        #: How many times each activity has completed (persistence state:
        #: the replay cursor for loop bodies and repeated activities).
        self.completion_counts: dict[str, int] = {}
        #: Remaining fast-forward skips per activity name while a rehydrated
        #: instance replays past already-completed work (None = live run).
        self._replay_credits: dict[str, int] | None = None
        #: Names that had already *started* before the checkpoint; their
        #: re-entry during replay does not re-emit ``activity_started``.
        self._replayed_started: frozenset[str] = frozenset()
        #: Names that were *in flight* at the checkpoint. A replayed-start
        #: activity outside this set already faulted (or was cancelled)
        #: pre-crash, so its deterministic re-fault is replay bookkeeping.
        self._replayed_active: frozenset[str] = frozenset()
        self._resume_event = None
        self._terminate_reason: str | None = None
        self._deadlines: dict[str, DeadlineHandle] = {}
        self._compensations: list[CompensationEntry] = []
        #: Enclosing CompensationScopes, innermost last (execution-time).
        self._saga_stack: list[CompensationScope] = []
        #: Pending policy-requested compensation: (reason, scope-or-None).
        #: Persisted in checkpoints so a crash mid-unwind replays the abort.
        self._compensation_request: tuple[str, str | None] | None = None
        #: Span to parent compensation spans under (the triggering
        #: violation/enactment span); transient.
        self._compensation_trace_parent = None
        #: True while running a compensation chain (suppresses re-triggering).
        self._compensating = False
        #: True once a pending request has been raised as a fault; transient
        #: on purpose — a rehydrated instance re-raises during replay.
        self._request_raised = False
        self.process = None  # the simulation Process, set by the engine
        #: The instance's trace span (None when tracing is disabled).
        self.span = None

    # -- tree lookup ------------------------------------------------------------

    def find_activity(self, name: str) -> Activity | None:
        for activity in self.root.iter_tree():
            if activity.name == name:
                return activity
        return None

    # -- lifecycle ---------------------------------------------------------------

    def run(self) -> Generator:
        """The instance's top-level simulated process."""
        try:
            yield from self.run_activity(self.root)
        except ProcessTerminated as terminated:
            self.status = InstanceStatus.TERMINATED
            self._terminate_reason = terminated.reason
            self._end_span("terminated")
            self.engine.notify("instance_terminated", self)
            return self.result
        except ProcessFault as fault:
            if self._terminate_reason is not None:
                # Termination was requested while the fault was in flight
                # (e.g. a messaging-layer policy ordered it): the explicit
                # terminate verdict wins over the incidental fault.
                self.status = InstanceStatus.TERMINATED
                self._end_span("terminated")
                self.engine.notify("instance_terminated", self)
                return self.result
            self.status = InstanceStatus.FAULTED
            self.fault = fault.fault
            self._end_span(f"fault:{fault.fault.code.value}")
            self.engine.notify("instance_faulted", self)
            raise
        self.status = InstanceStatus.COMPLETED
        self._end_span(None)
        self.engine.notify("instance_completed", self)
        return self.result

    def _end_span(self, status: str | None) -> None:
        self.engine.metrics.counter(f"engine.instances.{self.status.value}").inc()
        if self.span is not None:
            self.span.end(status=status)

    def run_activity(self, activity: Activity) -> Generator:
        """Execute one activity with gating, tracking and fault tagging.

        When the engine has a fault advisor (MASC's process-level
        corrective adaptation), a fault originating *at this activity* is
        offered to it before propagating: the advisor may order a retry
        (with delay), skip the activity, or substitute a replacement.
        """
        yield from self._gate()
        if self.engine.crashed:
            # A crashed engine schedules nothing further: the instance
            # freezes at this activity boundary, exactly the state the
            # latest checkpoint captured, until rehydrated elsewhere.
            yield self.env.event()
        credits = self._replay_credits
        if (
            credits is not None
            and credits.get(activity.name)
            and not activity.children()
            and not getattr(activity, "replay_composite", False)
        ):
            # Fast-forward: this leaf already completed before the
            # checkpoint; its effects live in the restored variables.
            self._consume_replay_credit(activity)
            return
        request = self._compensation_request
        if (
            request is not None
            and not self._request_raised
            and not self._compensating
            and not (credits is not None and credits.get(activity.name))
        ):
            # Policy-requested compensation surfaces as a fault at the next
            # *live* activity boundary (replayed work fast-forwards past the
            # guard, so a rehydrated instance re-raises at the same point).
            self._request_raised = True
            raise ProcessFault(
                SoapFault(
                    FaultCode.SERVER,
                    f"compensation requested: {request[0]}",
                    source="masc-adaptation",
                ),
                activity.name,
            )
        replayed_start = (
            self._replay_credits is not None and activity.name in self._replayed_started
        )
        self.executed_activities.add(activity.name)
        self.active_activities.add(activity.name)
        if not replayed_start:
            self.engine.notify("activity_started", self, activity)
        else:
            self.engine.notify("activity_restarted", self, activity)
        span = None
        if self.engine.tracer.enabled:
            span = self.engine.tracer.start_span(
                f"activity.{type(activity).__name__.lower()}",
                correlation_id=self.id,
                parent=self.span,
                attributes={"activity": activity.name},
            )
        attempts = 0
        try:
            while True:
                try:
                    yield from activity.execute(self)
                    break
                except ProcessFault as fault:
                    if fault.activity_name is None:
                        fault.activity_name = activity.name
                    if fault.activity_name != activity.name:
                        raise  # not ours: already consulted at the origin
                    verdict = self.engine.consult_fault_advisor(
                        self, activity, fault, attempts
                    )
                    if verdict is None or verdict.kind == "propagate":
                        if (
                            replayed_start
                            and activity.name not in self._replayed_active
                        ):
                            # The same fault already propagated (and was
                            # tracked) before the checkpoint.
                            self.engine.notify(
                                "activity_refaulted", self, activity, fault
                            )
                        else:
                            self.engine.notify(
                                "activity_faulted", self, activity, fault
                            )
                        if span is not None:
                            span.end(status=f"fault:{fault.fault.code.value}")
                        raise
                    if verdict.kind == "retry":
                        attempts += 1
                        self.engine.notify(
                            "activity_retried", self, activity, fault, attempts
                        )
                        if span is not None:
                            span.add_event(
                                "retried",
                                attempt=attempts,
                                fault=fault.fault.code.value,
                                policy=verdict.policy_name,
                            )
                        if verdict.delay_seconds > 0:
                            yield self.env.timeout(verdict.delay_seconds)
                        continue
                    if verdict.kind == "skip":
                        self.engine.notify("activity_skipped", self, activity, fault)
                        if span is not None:
                            span.set_attribute("skipped_by", verdict.policy_name)
                        break
                    if verdict.kind == "replace":
                        assert verdict.replacement is not None
                        self.engine.notify(
                            "activity_replaced", self, activity, verdict.replacement
                        )
                        if span is not None:
                            span.add_event(
                                "replaced",
                                replacement=verdict.replacement.name,
                                policy=verdict.policy_name,
                            )
                        yield from self.run_activity(verdict.replacement)
                        break
                    raise  # pragma: no cover - unknown verdict kinds propagate
        except BaseException as error:
            if span is not None and not span.ended:
                span.end(status="error")
            # The frame exited without completing — tell listeners (the
            # journal needs the active-set discard; flow-cancellation tests
            # pin the Interrupt ordering).
            self.engine.notify(
                "activity_cancelled", self, activity, isinstance(error, Interrupt)
            )
            raise
        finally:
            self.active_activities.discard(activity.name)
        if span is not None:
            span.end()
        credits = self._replay_credits
        if credits is not None and credits.get(activity.name):
            # A composite that had completed before the checkpoint just
            # re-interpreted itself (its leaves fast-forwarded): account
            # for it as replayed, not as a fresh completion.
            self._consume_replay_credit(activity)
        else:
            self.completion_counts[activity.name] = (
                self.completion_counts.get(activity.name, 0) + 1
            )
            self._maybe_register_saga_step(activity, replayed=False)
            self.engine.notify("activity_completed", self, activity)

    def _consume_replay_credit(self, activity: Activity) -> None:
        credits = self._replay_credits
        assert credits is not None
        remaining = credits[activity.name] - 1
        if remaining > 0:
            credits[activity.name] = remaining
        else:
            del credits[activity.name]
        if not credits:
            self._replay_credits = None
        self.executed_activities.add(activity.name)
        self.completion_counts[activity.name] = (
            self.completion_counts.get(activity.name, 0) + 1
        )
        self._maybe_register_saga_step(activity, replayed=True)
        self.engine.notify("activity_replayed", self, activity)

    def _gate(self) -> Generator:
        """Block while suspended; honor pending termination requests."""
        while True:
            if (
                self._terminate_reason is not None
                and self.status != InstanceStatus.TERMINATED
                and not self._compensating
            ):
                # A compensation chain already unwinding for this terminate
                # must run to completion; re-raising here would abort it.
                raise ProcessTerminated(self._terminate_reason)
            if self.status != InstanceStatus.SUSPENDED:
                return
            assert self._resume_event is not None
            yield self._resume_event

    # -- external control (used by MASC and wsBus coordination) ---------------------

    def suspend(self) -> None:
        """Pause at the next activity boundary (idempotent)."""
        if self.status.is_final or self.status == InstanceStatus.SUSPENDED:
            return
        self.status = InstanceStatus.SUSPENDED
        self._resume_event = self.env.event()
        if self.span is not None:
            self.span.add_event("suspended")
        self.engine.notify("instance_suspended", self)

    def resume(self) -> None:
        """Continue a suspended instance (idempotent)."""
        if self.status != InstanceStatus.SUSPENDED:
            return
        self.status = InstanceStatus.RUNNING
        event, self._resume_event = self._resume_event, None
        if event is not None:
            event.succeed()
        if self.span is not None:
            self.span.add_event("resumed")
        self.engine.notify("instance_resumed", self)

    def terminate(self, reason: str = "terminated externally") -> None:
        """Request termination at the next activity boundary."""
        if self.status.is_final:
            return
        self._terminate_reason = reason
        if self.status == InstanceStatus.SUSPENDED:
            self.resume()

    def extend_timeout(self, activity_name: str, extra_seconds: float) -> bool:
        """Push out a pending deadline (cross-layer coordination).

        Returns True if a pending deadline existed and was extended.
        """
        handle = self._deadlines.get(activity_name)
        if handle is None or not handle.active:
            return False
        handle.extend(extra_seconds)
        if self.span is not None:
            self.span.add_event(
                "timeout_extended", activity=activity_name, extra_seconds=extra_seconds
            )
        self.engine.notify("timeout_extended", self, activity_name, extra_seconds)
        return True

    # -- invocation with extensible deadline ----------------------------------------

    def invoke_partner(
        self,
        activity: Activity,
        to: str,
        operation: str,
        payload: Element,
        timeout_seconds: float | None,
        padding: int = 0,
    ) -> Generator:
        """Send a request on behalf of an Invoke activity.

        The timeout is enforced here (not in the transport) so that it can
        be extended mid-flight via :meth:`extend_timeout`.
        """
        invoker = self.engine.invoker
        call = self.env.process(
            invoker.invoke(
                to=to,
                operation=operation,
                payload=payload,
                # The engine enforces its own *extensible* deadline below;
                # inf disables the invoker's fixed timer.
                timeout=float("inf"),
                process_instance_id=self.id,
                padding=padding,
            ),
            name=f"{self.id}:{activity.name}",
        )
        try:
            if timeout_seconds is None:
                response = yield call
            else:
                response = yield from self._await_with_deadline(
                    call, activity.name, timeout_seconds
                )
        except SoapFaultError as error:
            raise ProcessFault(error.fault, activity.name) from error
        except (ProcessFault, ProcessTerminated):
            raise
        except BaseException:
            # Abrupt unwinding (interrupt, crashed engine tear-down): nobody
            # will observe the call's outcome any more — keep a late failure
            # from surfacing as an unhandled simulation error.
            self._abandon(call, interrupt=False)
            raise
        return response

    def run_with_deadline(
        self, scope: Scope, body: Activity, timeout_seconds: float
    ) -> Generator:
        """Run a scope body racing an extensible deadline."""
        body_process = self.env.process(
            self.run_activity(body), name=f"{self.id}:scope:{scope.name}"
        )
        try:
            yield from self._await_with_deadline(
                body_process, scope.name, timeout_seconds, interrupt_on_expiry=True
            )
        except SoapFaultError as error:
            raise ProcessFault(error.fault, scope.name) from error

    def _await_with_deadline(
        self,
        awaited,
        activity_name: str,
        timeout_seconds: float,
        interrupt_on_expiry: bool = False,
    ) -> Generator:
        handle = DeadlineHandle(activity_name, self.env.now + timeout_seconds)
        self._deadlines[activity_name] = handle
        try:
            while True:
                remaining = handle.deadline - self.env.now
                if remaining <= 0:
                    self._abandon(awaited, interrupt_on_expiry)
                    raise ProcessFault(
                        SoapFault(
                            FaultCode.TIMEOUT,
                            f"activity {activity_name!r} exceeded its "
                            f"{timeout_seconds}s deadline",
                            source="process-engine",
                        ),
                        activity_name,
                    )
                timer = self.env.timeout(remaining)
                composite = self.env.any_of([awaited, timer])
                try:
                    outcome = yield composite
                except SoapFaultError:
                    raise
                except BaseException:
                    # Abrupt unwinding while racing the deadline: defuse the
                    # composite and abandon the awaited work so their later
                    # outcomes don't raise unattended in the simulation core.
                    composite.defused = True
                    self._abandon(awaited, interrupt_on_expiry)
                    raise
                if awaited in outcome:
                    return outcome[awaited]
                # Timer fired; if the deadline moved, loop and keep waiting.
                if self.env.now >= handle.deadline:
                    self._abandon(awaited, interrupt_on_expiry)
                    raise ProcessFault(
                        SoapFault(
                            FaultCode.TIMEOUT,
                            f"activity {activity_name!r} exceeded its "
                            f"{timeout_seconds}s deadline",
                            source="process-engine",
                        ),
                        activity_name,
                    )
        finally:
            handle.active = False

    def _abandon(self, awaited, interrupt: bool) -> None:
        if awaited.is_alive:
            if interrupt:
                awaited.interrupt("deadline expired")
            else:
                awaited.callbacks.append(_defuse)
        elif not awaited.processed:
            awaited.defused = True

    # -- compensation ------------------------------------------------------------------

    def register_compensation(self, scope: Scope) -> None:
        """Register a completed scope's compensation activity."""
        owner = self._saga_stack[-1].name if self._saga_stack else None
        assert scope.compensation is not None
        self._compensations.append(
            CompensationEntry(scope.name, scope.compensation, owner)
        )
        replayed = bool(self._replay_credits and self._replay_credits.get(scope.name))
        self.engine.notify("saga_step_registered", self, owner, scope.name, replayed)

    def _maybe_register_saga_step(self, activity: Activity, replayed: bool) -> None:
        """Register ``activity``'s compensation if a saga scope maps it."""
        for saga in reversed(self._saga_stack):
            compensation = saga.compensations.get(activity.name)
            if compensation is not None:
                self._compensations.append(
                    CompensationEntry(activity.name, compensation, saga.name)
                )
                self.engine.notify(
                    "saga_step_registered", self, saga.name, activity.name, replayed
                )
                return

    def request_compensation(
        self, reason: str, scope: str | None = None, trace_parent=None
    ) -> bool:
        """Ask the instance to unwind its sagas (policy-driven backward
        recovery).

        The request surfaces as a ``ProcessFault`` at the next *live*
        activity boundary; the enclosing :class:`CompensationScope` turns
        it into a LIFO compensation chain. It is persisted in checkpoints,
        so a crash during the unwind replays the abort deterministically.
        Returns False if the instance already finished.
        """
        if self.status.is_final:
            return False
        self._compensation_request = (reason, scope)
        self._compensation_trace_parent = trace_parent
        if self.span is not None:
            self.span.add_event("compensation_requested", reason=reason)
        if self.status == InstanceStatus.SUSPENDED:
            self.resume()
        return True

    def compensate(self, scope: str | None = None, reason: str = "compensate") -> Generator:
        """Run registered compensations in reverse (LIFO) registration order.

        With ``scope`` set, only entries registered under that saga scope
        are popped. Compensation-activity spans nest under a
        ``process.compensation`` span parented on the triggering
        violation/enactment span when one is known.
        """
        span = None
        prev_span = self.span
        prev_compensating = self._compensating
        try:
            while True:
                index = None
                for i in range(len(self._compensations) - 1, -1, -1):
                    if scope is None or self._compensations[i].scope == scope:
                        index = i
                        break
                if index is None:
                    return
                entry = self._compensations.pop(index)
                if span is None and self.engine.tracer.enabled:
                    parent = self._compensation_trace_parent or self.span
                    span = self.engine.tracer.start_span(
                        "process.compensation",
                        correlation_id=self.id,
                        parent=parent,
                        attributes={"reason": reason, "scope": scope or ""},
                    )
                    self.span = span
                replayed = bool(
                    self._replay_credits
                    and self._replay_credits.get(entry.activity.name)
                )
                self.engine.notify("compensation_started", self, entry.step, replayed)
                self._compensating = True
                try:
                    yield from self.run_activity(entry.activity)
                finally:
                    self._compensating = prev_compensating
                self.engine.notify(
                    "activity_compensated", self, entry.step, entry.activity, replayed
                )
        finally:
            self._compensating = prev_compensating
            self.span = prev_span
            if span is not None and not span.ended:
                span.end()

    def compensate_completed_scopes(self, _requesting_scope: Scope) -> Generator:
        """Run registered compensations in reverse completion order."""
        yield from self.compensate(scope=None, reason=f"scope:{_requesting_scope.name}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ProcessInstance {self.id} {self.definition_name!r} {self.status.value}>"


def _defuse(event) -> None:
    event.defused = True
