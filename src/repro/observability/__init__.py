"""Cross-cutting observability: structured tracing and metrics.

The paper's wsBus *measures* QoS (the QoS Measurement Service and the
Monitoring Service of Section 3) but gives operators no way to see *why*
an adaptation fired — which VEP member was selected, which retry attempt
succeeded, which WS-Policy4MASC rule rewrote a running instance. This
package adds that missing layer:

- :mod:`repro.observability.tracing` — :class:`Tracer` / :class:`Span`
  with parent links and message-ID / process-instance-ID correlation, so
  one SCM request yields a single correlated trace spanning the messaging
  layer (VEP dispatch, retries, substitution) and the process layer
  (policy decisions, dynamic modification);
- :mod:`repro.observability.metrics` — :class:`MetricsRegistry` with
  counters and latency histograms;
- :mod:`repro.observability.exporters` — pluggable span sinks: in-memory
  (tests), JSONL files (offline analysis), and a human-readable console
  trace tree.

Everything defaults to the **no-op** :data:`NULL_TRACER` /
:data:`NULL_METRICS` singletons: instrumented hot paths guard on
``tracer.enabled`` and allocate nothing when tracing is off, so the
Figure 5 / Table 1 benchmarks are unaffected (see
``tests/test_observability.py::test_null_tracer_adds_zero_allocations``).
"""

from repro.observability.exporters import (
    ConsoleSummaryExporter,
    InMemoryExporter,
    JsonlExporter,
    SpanExporter,
    read_spans_jsonl,
    render_trace_tree,
)
from repro.observability.metrics import (
    NULL_METRICS,
    Counter,
    Histogram,
    MetricsRegistry,
    NullMetrics,
)
from repro.observability.tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    correlation_id_for,
)

__all__ = [
    "ConsoleSummaryExporter",
    "Counter",
    "Histogram",
    "InMemoryExporter",
    "JsonlExporter",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetrics",
    "NullTracer",
    "Span",
    "SpanExporter",
    "Tracer",
    "correlation_id_for",
    "read_spans_jsonl",
    "render_trace_tree",
]
