"""Gossip-style anti-entropy of QoS observations between buses.

Each bus only measures the invocations it mediated itself, so its
``best_response_time``/``best_reliability`` selection would otherwise see
a fraction of the fleet's evidence. Every gossip round each alive bus
push-pulls its per-endpoint :class:`~repro.services.InvocationRecord`
digest with a seeded-random peer; deltas are applied in a sorted order so
fleet-wide QoS views converge deterministically.
"""

from __future__ import annotations

from repro.observability import NULL_METRICS, NULL_TRACER
from repro.simulation import RandomSource

__all__ = ["GossipAgent", "QoSGossip"]


def _record_key(record):
    return (record.finished_at, record.started_at, record.target, record.caller, record.operation)


class GossipAgent:
    """One bus's view: its QoS service plus everything it has heard."""

    def __init__(self, name: str, qos) -> None:
        self.name = name
        self.qos = qos
        #: Per-endpoint identity sets of every record known (locally
        #: observed or merged), so re-gossip never double-counts.
        self.known: dict[str, set] = {}

    def sync_local(self) -> None:
        """Fold locally observed records into the known set."""
        for address, endpoint in self.qos.endpoints.items():
            self.known.setdefault(address, set()).update(endpoint.records)


class QoSGossip:
    """Runs periodic anti-entropy rounds over the fleet's QoS digests."""

    def __init__(
        self,
        env,
        interval_seconds: float = 2.0,
        fanout: int = 1,
        random_source: RandomSource | None = None,
        tracer=None,
        metrics=None,
    ) -> None:
        if interval_seconds <= 0:
            raise ValueError(f"gossip interval must be positive: {interval_seconds}")
        if fanout < 1:
            raise ValueError(f"gossip fanout must be positive: {fanout}")
        self.env = env
        self.interval_seconds = interval_seconds
        self.fanout = fanout
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self._rng = (random_source or RandomSource()).stream("federation.gossip")
        self.agents: dict[str, GossipAgent] = {}
        self.rounds = 0
        self.records_exchanged = 0
        self._running = False

    def register(self, name: str, qos) -> GossipAgent:
        agent = GossipAgent(name, qos)
        self.agents[name] = agent
        return agent

    def unregister(self, name: str) -> None:
        self.agents.pop(name, None)

    def start(self, membership) -> None:
        """Run the periodic gossip loop against a membership view."""
        if not self._running:
            self._running = True
            self.env.process(self._loop(membership), name="fleet-gossip")

    def _loop(self, membership):
        while True:
            yield self.env.timeout(self.interval_seconds)
            self.run_round(membership.alive())

    def run_round(self, alive: list[str]) -> int:
        """One anti-entropy round over the alive buses; returns records moved."""
        participants = sorted(name for name in alive if name in self.agents)
        if len(participants) < 2:
            return 0
        self.rounds += 1
        for name in participants:
            self.agents[name].sync_local()
        moved = 0
        for name in participants:
            peers = [p for p in participants if p != name]
            for _ in range(min(self.fanout, len(peers))):
                peer = self._rng.choice(peers)
                moved += self._exchange(self.agents[name], self.agents[peer])
        self.records_exchanged += moved
        if moved and self.metrics.enabled:
            self.metrics.counter("federation.gossip.records").inc(moved)
        return moved

    def _exchange(self, a: GossipAgent, b: GossipAgent) -> int:
        """Push-pull: each side merges what the other has and it lacks."""
        moved = 0
        for source, sink in ((a, b), (b, a)):
            for address in sorted(source.known):
                delta = source.known[address] - sink.known.get(address, set())
                if not delta:
                    continue
                fresh = sorted(delta, key=_record_key)
                sink.qos.merge_records(address, fresh)
                sink.known.setdefault(address, set()).update(delta)
                moved += len(fresh)
        return moved

    def summary(self) -> dict:
        return {
            "rounds": self.rounds,
            "records_exchanged": self.records_exchanged,
            "agents": sorted(self.agents),
        }
