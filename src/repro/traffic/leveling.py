"""Queue-based load leveling + token-bucket throttling for a VEP.

Shedding rejects everything past the knee; leveling *reshapes* the
arrival curve instead. The algorithm is the classic GCRA (the
cell-rate/token-bucket equivalence): the leveler tracks a theoretical
arrival time ``tat`` — the virtual instant at which the next request
conforms to the long-run rate. A request whose computed delay fits the
burst tolerance passes immediately; otherwise it waits in a bounded
*virtual* queue (a simulation timeout — a queued request occupies no
shedder or bulkhead slot while it waits). Only past the queue bounds —
too many already waiting, or a delay beyond ``max_wait_seconds`` — is the
request rejected with a retryable ``ServiceUnavailable`` fault.

Everything is clock-driven, so a fixed seed yields identical admission
decisions.
"""

from __future__ import annotations

from repro.policy.actions import LoadLevelingAction
from repro.soap import FaultCode, SoapFault, SoapFaultError

__all__ = ["LoadLeveler"]


class LoadLeveler:
    """Token-bucket smoothing for one VEP, driven by a :class:`LoadLevelingAction`."""

    def __init__(self, key: str, env, config: LoadLevelingAction) -> None:
        self.key = key
        self.env = env
        self.config = config
        self._interval = 1.0 / config.rate_per_second
        #: GCRA theoretical arrival time.
        self._tat = 0.0
        #: Requests currently sitting out their leveling delay.
        self.waiting = 0
        self.max_waiting = 0
        self.admitted_immediately = 0
        self.delayed = 0
        self.shed = 0
        self.total_delay_seconds = 0.0

    def admit(self):
        """Admit one request: None to proceed now, or a timeout to yield.

        The caller must call :meth:`release` after a returned timeout
        elapses (or fails). Raises :class:`SoapFaultError` when the
        request must be rejected instead.
        """
        now = self.env.now
        config = self.config
        interval = self._interval
        tat = self._tat
        if tat < now:
            tat = now
        # Burst tolerance tau = (burst - 1) * interval: up to ``burst``
        # back-to-back requests conform without any delay.
        wait = (tat - now) - (config.burst - 1) * interval
        if wait <= 1e-12:
            self._tat = tat + interval
            self.admitted_immediately += 1
            return None
        if self.waiting >= config.max_queue:
            reason = f"{self.waiting} requests already queued"
        elif wait > config.max_wait_seconds:
            reason = f"computed delay {wait:.3f}s exceeds {config.max_wait_seconds:g}s"
        else:
            reason = None
        if reason is not None:
            self.shed += 1
            raise SoapFaultError(
                SoapFault(
                    FaultCode.SERVICE_UNAVAILABLE,
                    f"wsbus load leveling at {self.key} ({reason}); retry later",
                    source="wsbus-traffic",
                )
            )
        self._tat = tat + interval
        self.waiting += 1
        if self.waiting > self.max_waiting:
            self.max_waiting = self.waiting
        self.delayed += 1
        self.total_delay_seconds += wait
        return self.env.timeout(wait)

    def release(self) -> None:
        """A delayed request finished (or abandoned) its wait."""
        if self.waiting > 0:
            self.waiting -= 1

    def stats(self) -> dict:
        return {
            "immediate": self.admitted_immediately,
            "delayed": self.delayed,
            "shed": self.shed,
            "waiting": self.waiting,
            "max_waiting": self.max_waiting,
            "total_delay_seconds": round(self.total_delay_seconds, 6),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LoadLeveler {self.key} waiting={self.waiting}>"
