"""Stock Trading case study (Section 2.2).

The base national-trading composition plus the four customization
experiments: dynamic addition of CurrencyConversion, PESTAnalysis and
CreditRating services, and removal of the MarketCompliance invocation —
all driven by externalized WS-Policy4MASC documents, with "no changes to
either the process definition or the constituent services implementations".
"""

from repro.casestudies.stocktrading.contracts import (
    CREDIT_RATING_CONTRACT,
    CURRENCY_CONVERSION_CONTRACT,
    FINANCIAL_ANALYSIS_CONTRACT,
    FUND_MANAGER_CONTRACT,
    MARKET_COMPLIANCE_CONTRACT,
    PAYMENT_CONTRACT,
    PEST_ANALYSIS_CONTRACT,
    STOCK_MARKET_CONTRACT,
    STOCK_NOTIFICATION_CONTRACT,
    STOCK_REGISTRY_CONTRACT,
)
from repro.casestudies.stocktrading.deployment import (
    TradingDeployment,
    build_trading_deployment,
)
from repro.casestudies.stocktrading.policies import (
    compliance_removal_policy_document,
    credit_rating_policy_document,
    currency_conversion_policy_document,
    pest_analysis_policy_document,
)
from repro.casestudies.stocktrading.process import (
    TRADING_ANCHORS,
    build_trading_process,
    build_trading_saga_process,
)
from repro.casestudies.stocktrading.services import (
    CreditRatingService,
    CurrencyConversionService,
    DEFAULT_STOCKS,
    FinancialAnalysisService,
    FundManagerService,
    MarketComplianceService,
    PaymentService,
    PESTAnalysisService,
    StockMarketService,
    StockNotificationService,
    StockRegistryService,
)

__all__ = [
    "CREDIT_RATING_CONTRACT",
    "CURRENCY_CONVERSION_CONTRACT",
    "CreditRatingService",
    "CurrencyConversionService",
    "DEFAULT_STOCKS",
    "FINANCIAL_ANALYSIS_CONTRACT",
    "FUND_MANAGER_CONTRACT",
    "FinancialAnalysisService",
    "FundManagerService",
    "MARKET_COMPLIANCE_CONTRACT",
    "MarketComplianceService",
    "PAYMENT_CONTRACT",
    "PEST_ANALYSIS_CONTRACT",
    "PESTAnalysisService",
    "PaymentService",
    "STOCK_MARKET_CONTRACT",
    "STOCK_NOTIFICATION_CONTRACT",
    "STOCK_REGISTRY_CONTRACT",
    "StockMarketService",
    "StockNotificationService",
    "StockRegistryService",
    "TRADING_ANCHORS",
    "TradingDeployment",
    "build_trading_deployment",
    "build_trading_process",
    "build_trading_saga_process",
    "compliance_removal_policy_document",
    "credit_rating_policy_document",
    "currency_conversion_policy_document",
    "pest_analysis_policy_document",
]
