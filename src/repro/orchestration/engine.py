"""Workflow engine and pluggable runtime services.

Mirrors the WF hosting model the paper builds on: "a lightweight WF runtime
engine that can be hosted in any .NET application... takes care of different
middleware concerns through an extensible set of WF runtime services (e.g.,
Tracking, Persistence and Transaction support are built-in)". MASC's
adaptation service is registered as exactly such a runtime service (see
:mod:`repro.core.adaptation_service`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.observability import NULL_METRICS, NULL_TRACER
from repro.orchestration.definition import ProcessDefinition
from repro.orchestration.errors import ProcessFault
from repro.orchestration.instance import ProcessInstance
from repro.services import Invoker, ServiceRegistry
from repro.simulation import Environment
from repro.soap import FaultCode, SoapFault
from repro.transport import Network
from repro.xmlutils import Element

__all__ = [
    "PersistenceService",
    "RuntimeService",
    "TrackingEvent",
    "TrackingService",
    "WorkflowEngine",
]


class RuntimeService:
    """Base class for engine plug-ins.

    Subclasses override the hooks they care about. Hook names double as the
    engine's notification topics.
    """

    def attached(self, engine: "WorkflowEngine") -> None:
        """Called when the service is registered with an engine."""

    def instance_created(self, instance: ProcessInstance) -> None: ...
    def instance_started(self, instance: ProcessInstance) -> None: ...
    def instance_completed(self, instance: ProcessInstance) -> None: ...
    def instance_faulted(self, instance: ProcessInstance) -> None: ...
    def instance_terminated(self, instance: ProcessInstance) -> None: ...
    def instance_suspended(self, instance: ProcessInstance) -> None: ...
    def instance_resumed(self, instance: ProcessInstance) -> None: ...
    def instance_rehydrated(self, instance: ProcessInstance) -> None: ...
    def instance_modified(self, instance: ProcessInstance, operations, bindings) -> None: ...
    def engine_crashed(self, engine: "WorkflowEngine") -> None: ...
    def activity_started(self, instance: ProcessInstance, activity) -> None: ...
    def activity_restarted(self, instance: ProcessInstance, activity) -> None: ...
    def activity_completed(self, instance: ProcessInstance, activity) -> None: ...
    def activity_replayed(self, instance: ProcessInstance, activity) -> None: ...
    def activity_cancelled(
        self, instance: ProcessInstance, activity, interrupted: bool
    ) -> None: ...
    def activity_faulted(self, instance: ProcessInstance, activity, fault) -> None: ...
    def activity_refaulted(self, instance: ProcessInstance, activity, fault) -> None: ...
    def activity_retried(
        self, instance: ProcessInstance, activity, fault, attempt: int
    ) -> None: ...
    def activity_skipped(self, instance: ProcessInstance, activity, fault) -> None: ...
    def activity_replaced(self, instance: ProcessInstance, activity, replacement) -> None: ...
    def timeout_extended(
        self, instance: ProcessInstance, activity_name: str, extra_seconds: float
    ) -> None: ...
    def saga_step_registered(
        self, instance: ProcessInstance, scope_name: str | None, step_name: str,
        replayed: bool,
    ) -> None: ...
    def compensation_started(
        self, instance: ProcessInstance, step_name: str, replayed: bool
    ) -> None: ...
    def activity_compensated(
        self, instance: ProcessInstance, step_name: str, activity, replayed: bool
    ) -> None: ...


@dataclass(frozen=True)
class FaultVerdict:
    """What a fault advisor orders the engine to do with an activity fault.

    ``kind``: ``propagate`` (default behaviour), ``retry`` (re-run the
    activity after ``delay_seconds``), ``skip`` (treat as completed), or
    ``replace`` (run ``replacement`` instead).
    """

    kind: str
    delay_seconds: float = 0.0
    replacement: Any = None
    policy_name: str | None = None


@dataclass(frozen=True)
class TrackingEvent:
    """One tracked lifecycle event."""

    time: float
    instance_id: str
    kind: str
    activity_name: str | None = None
    detail: str | None = None


class TrackingService(RuntimeService):
    """Built-in runtime service recording the full execution trace."""

    def __init__(self) -> None:
        self.events: list[TrackingEvent] = []
        self._engine: WorkflowEngine | None = None

    def attached(self, engine: "WorkflowEngine") -> None:
        self._engine = engine

    def _track(self, instance: ProcessInstance, kind: str, activity=None, detail=None) -> None:
        assert self._engine is not None
        self.events.append(
            TrackingEvent(
                time=self._engine.env.now,
                instance_id=instance.id,
                kind=kind,
                activity_name=activity.name if activity is not None else None,
                detail=detail,
            )
        )

    def instance_created(self, instance) -> None:
        self._track(instance, "instance_created")

    def instance_completed(self, instance) -> None:
        self._track(instance, "instance_completed")

    def instance_faulted(self, instance) -> None:
        self._track(instance, "instance_faulted", detail=str(instance.fault))

    def instance_terminated(self, instance) -> None:
        self._track(instance, "instance_terminated")

    def instance_suspended(self, instance) -> None:
        self._track(instance, "instance_suspended")

    def instance_resumed(self, instance) -> None:
        self._track(instance, "instance_resumed")

    def activity_started(self, instance, activity) -> None:
        self._track(instance, "activity_started", activity)

    def activity_completed(self, instance, activity) -> None:
        self._track(instance, "activity_completed", activity)

    def activity_replayed(self, instance, activity) -> None:
        self._track(instance, "activity_replayed", activity)

    def instance_rehydrated(self, instance) -> None:
        self._track(instance, "instance_rehydrated")

    def activity_faulted(self, instance, activity, fault) -> None:
        self._track(instance, "activity_faulted", activity, detail=str(fault.fault))

    def activity_retried(self, instance, activity, fault, attempt) -> None:
        self._track(
            instance, "activity_retried", activity, detail=f"attempt {attempt}: {fault.fault}"
        )

    def activity_skipped(self, instance, activity, fault) -> None:
        self._track(instance, "activity_skipped", activity, detail=str(fault.fault))

    def activity_replaced(self, instance, activity, replacement) -> None:
        self._track(
            instance, "activity_replaced", activity, detail=f"replaced by {replacement.name}"
        )

    def saga_step_registered(self, instance, scope_name, step_name, replayed) -> None:
        # Replayed registrations are replay bookkeeping, not new facts: a
        # recovered run's tail must contain only events the reference run
        # also produced at that point.
        if not replayed:
            self.events.append(
                TrackingEvent(
                    time=self._engine.env.now if self._engine else 0.0,
                    instance_id=instance.id,
                    kind="saga_step_registered",
                    activity_name=step_name,
                    detail=scope_name,
                )
            )

    def activity_compensated(self, instance, step_name, activity, replayed) -> None:
        if not replayed:
            self._track(
                instance, "activity_compensated", activity, detail=f"compensates {step_name}"
            )

    # -- query helpers used by tests and experiments -----------------------------

    def events_for(self, instance_id: str, kind: str | None = None) -> list[TrackingEvent]:
        return [
            event
            for event in self.events
            if event.instance_id == instance_id and (kind is None or event.kind == kind)
        ]

    def executed_activity_names(self, instance_id: str) -> list[str]:
        return [
            event.activity_name or ""
            for event in self.events_for(instance_id, "activity_completed")
        ]


@dataclass
class _Snapshot:
    time: float
    status: str
    variables: dict[str, Any] = field(default_factory=dict)


class PersistenceService(RuntimeService):
    """Built-in runtime service snapshotting instance state.

    Snapshots are taken at every activity completion and on suspension —
    the points where WF's persistence service would dehydrate an instance.
    """

    def __init__(self) -> None:
        self.snapshots: dict[str, list[_Snapshot]] = {}
        self._engine: WorkflowEngine | None = None

    def attached(self, engine: "WorkflowEngine") -> None:
        self._engine = engine

    def _snapshot(self, instance: ProcessInstance) -> None:
        assert self._engine is not None
        # Structured snapshot: every variable survives, including nested
        # containers, XML elements and faults, as an independent deep copy
        # (the old filter silently dropped anything non-scalar).
        from repro.persistence.encoding import snapshot_variables

        self.snapshots.setdefault(instance.id, []).append(
            _Snapshot(
                time=self._engine.env.now,
                status=instance.status.value,
                variables=snapshot_variables(instance.variables),
            )
        )

    def activity_completed(self, instance, activity) -> None:
        self._snapshot(instance)

    def instance_suspended(self, instance) -> None:
        self._snapshot(instance)

    def latest(self, instance_id: str) -> _Snapshot | None:
        snapshots = self.snapshots.get(instance_id)
        return snapshots[-1] if snapshots else None


class WorkflowEngine:
    """Hosts process definitions and runs instances on the simulation."""

    def __init__(
        self,
        env: Environment,
        network: Network | None = None,
        invoker: Invoker | None = None,
        registry: ServiceRegistry | None = None,
        tracer=None,
        metrics=None,
    ) -> None:
        if invoker is None:
            if network is None:
                raise ValueError("WorkflowEngine needs a network or an invoker")
            invoker = Invoker(env, network, caller="orchestration-engine")
        self.env = env
        self.invoker = invoker
        self.registry = registry
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.tracer.bind_clock(env)
        self.definitions: dict[str, ProcessDefinition] = {}
        self.instances: dict[str, ProcessInstance] = {}
        self._services: list[RuntimeService] = []
        self._ids = itertools.count(1)
        #: True once :meth:`crash` was called; instances freeze at their
        #: next activity boundary and no new instances can start.
        self.crashed = False
        #: Optional override for abstract service resolution (VEP binding).
        self.binder = None
        #: Optional process-level fault advisor:
        #: ``(instance, activity, fault, attempts) -> FaultVerdict | None``.
        #: MASC's process-layer corrective adaptation plugs in here.
        self.fault_advisor = None

    # -- configuration ------------------------------------------------------------

    def add_service(self, service: RuntimeService) -> RuntimeService:
        """Register a runtime service (Tracking, Persistence, MASC...)."""
        self._services.append(service)
        service.attached(self)
        return service

    def service_of_type(self, service_type: type) -> RuntimeService | None:
        for service in self._services:
            if isinstance(service, service_type):
                return service
        return None

    def register_definition(self, definition: ProcessDefinition) -> ProcessDefinition:
        self.definitions[definition.name] = definition
        return definition

    # -- notifications ---------------------------------------------------------------

    def notify(self, hook: str, *args) -> None:
        for service in self._services:
            getattr(service, hook)(*args)

    def consult_fault_advisor(self, instance, activity, fault, attempts: int):
        """Offer an activity fault to the advisor (None = propagate)."""
        if self.fault_advisor is None:
            return None
        return self.fault_advisor(instance, activity, fault, attempts)

    # -- execution ----------------------------------------------------------------------

    def start(
        self,
        definition: ProcessDefinition | str,
        input: Element | None = None,
        variables: dict[str, Any] | None = None,
    ) -> ProcessInstance:
        """Create and start an instance; returns it immediately.

        Run the simulation (``env.run(instance.process)``) to completion to
        obtain the result. Static customization happens inside this call:
        ``instance_created`` fires before the first activity executes, and
        MASC's adaptation service edits the fresh instance tree there.
        """
        if self.crashed:
            raise RuntimeError(
                "engine has crashed; rehydrate its instances into a fresh engine"
            )
        if isinstance(definition, str):
            definition = self.definitions[definition]
        instance_id = f"proc-{next(self._ids):06d}"
        merged_variables: dict[str, Any] = dict(definition.initial_variables)
        merged_variables.update(variables or {})
        instance = ProcessInstance(
            engine=self,
            instance_id=instance_id,
            definition_name=definition.name,
            root=definition.copy_tree(),
            variables=merged_variables,
            input=input,
        )
        self.instances[instance_id] = instance
        self.metrics.counter("engine.instances.started").inc()
        if self.tracer.enabled:
            # The root of the process-layer trace: every activity span and
            # cross-layer masc.enact span hangs off this one. Correlates on
            # the instance id — the same value carried in the MASC
            # ProcessInstanceID SOAP header, so bus-side spans for this
            # instance's invokes share the correlation id.
            instance.span = self.tracer.start_span(
                "process.instance",
                correlation_id=instance_id,
                attributes={"process": definition.name},
            )
        self.notify("instance_created", instance)
        instance.process = self.env.process(instance.run(), name=f"instance:{instance_id}")
        self.notify("instance_started", instance)
        return instance

    def run_to_completion(self, instance: ProcessInstance) -> Any:
        """Convenience: drive the simulation until the instance finishes."""
        return self.env.run(instance.process)

    # -- crash & recovery ---------------------------------------------------------------

    def crash(self, reason: str = "engine host failure") -> None:
        """Simulate an abrupt engine/host failure (idempotent).

        The engine stops scheduling: every live instance freezes at its
        next activity boundary — exactly the state its latest checkpoint
        captured — and :meth:`start` refuses new work. Recovery means
        rehydrating the instances from a checkpoint store into a *fresh*
        engine (:meth:`rehydrate`).
        """
        if self.crashed:
            return
        self.crashed = True
        self.metrics.counter("engine.crashes").inc()
        if self.tracer.enabled:
            span = self.tracer.start_span("engine.crash", attributes={"reason": reason})
            span.end(status="crashed")
        self.notify("engine_crashed", self)

    def rehydrate(self, store, instance_id: str) -> ProcessInstance:
        """Reconstruct a checkpointed instance in this engine and resume it.

        ``store`` is a :class:`repro.persistence.CheckpointStore` (or any
        object with its record-query API). The instance is rebuilt from its
        latest checkpoint plus the modification journal, registered with
        this engine under its original id, and scheduled; already-completed
        activities fast-forward via replay credits instead of re-executing.
        """
        from repro.persistence import rehydrate_instance

        return rehydrate_instance(self, store, instance_id)

    def resolve_service(self, service_type: str, instance: ProcessInstance) -> str:
        """Map an abstract service type to a concrete address."""
        if self.binder is not None:
            address = self.binder(service_type, instance)
            if address:
                return address
        if self.registry is not None:
            record = self.registry.find_one(service_type)
            if record is not None:
                return record.address
        raise ProcessFault(
            SoapFault(
                FaultCode.SERVICE_UNAVAILABLE,
                f"no implementation of service type {service_type!r} is known",
                source="orchestration-engine",
            )
        )
