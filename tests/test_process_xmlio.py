"""Unit tests for XML process definition serialization."""

import pytest

from conftest import EchoService
from repro.casestudies.scm import build_scm_process
from repro.orchestration import (
    Assign,
    Delay,
    Empty,
    Flow,
    IfElse,
    Invoke,
    ProcessDefinition,
    ProcessSerializationError,
    Receive,
    Reply,
    Scope,
    Sequence,
    Terminate,
    Throw,
    While,
    WorkflowEngine,
    parse_process_definition,
    serialize_process_definition,
)
from repro.soap import FaultCode


def full_definition() -> ProcessDefinition:
    return ProcessDefinition(
        "everything",
        Sequence(
            "main",
            [
                Receive("rcv", variable="incoming"),
                Assign("init", "counter", expression="0"),
                Delay("pause", 1.5),
                While(
                    "loop",
                    "counter < 3",
                    body=Assign("inc", "counter", expression="counter + 1"),
                    max_iterations=50,
                ),
                IfElse(
                    "branch",
                    "counter >= 3",
                    then=Empty("yes"),
                    orelse=Throw("no", FaultCode.SERVER, "impossible"),
                ),
                Flow("parallel", [Delay("p1", 0.1), Delay("p2", 0.2)]),
                Scope(
                    "guarded",
                    body=Invoke(
                        "call",
                        operation="echo",
                        to="http://test/echo",
                        inputs={"text": "$greeting"},
                        extract={"echoed": "text"},
                        output_variable="raw",
                        timeout_seconds=12.0,
                    ),
                    fault_handlers={
                        FaultCode.TIMEOUT: Empty("on-timeout"),
                        None: Empty("on-anything"),
                    },
                    compensation=Empty("undo"),
                    timeout_seconds=30.0,
                    compensate_on_fault=True,
                ),
                Terminate("halt", reason="end of demo"),
                Reply("answer", variable="echoed"),
            ],
        ),
        initial_variables={"greeting": "hi", "limit": 3, "rate": 1.5, "flag": True},
    )


class TestRoundTrip:
    def test_fixed_point(self):
        definition = full_definition()
        once = serialize_process_definition(definition)
        twice = serialize_process_definition(parse_process_definition(once))
        assert once == twice

    def test_structure_preserved(self):
        reparsed = parse_process_definition(serialize_process_definition(full_definition()))
        assert reparsed.activity_names() == full_definition().activity_names()

    def test_variables_typed(self):
        reparsed = parse_process_definition(serialize_process_definition(full_definition()))
        assert reparsed.initial_variables == {
            "greeting": "hi",
            "limit": 3,
            "rate": 1.5,
            "flag": True,
        }

    def test_scope_details_preserved(self):
        reparsed = parse_process_definition(serialize_process_definition(full_definition()))
        scope = reparsed.find("guarded")
        assert scope.timeout_seconds == 30.0
        assert scope.compensate_on_fault is True
        assert FaultCode.TIMEOUT in scope.fault_handlers
        assert None in scope.fault_handlers
        assert scope.compensation.name == "undo"

    def test_invoke_details_preserved(self):
        reparsed = parse_process_definition(serialize_process_definition(full_definition()))
        invoke = reparsed.find("call")
        assert invoke.inputs == {"text": "$greeting"}
        assert invoke.extract == {"echoed": "text"}
        assert invoke.output_variable == "raw"
        assert invoke.timeout_seconds == 12.0

    def test_scm_process_round_trips(self):
        definition = build_scm_process("http://retailer", "http://logging")
        reparsed = parse_process_definition(serialize_process_definition(definition))
        assert reparsed.activity_names() == definition.activity_names()

    def test_reparsed_definition_executes(self, env, network, container):
        container.deploy(EchoService(env, "echo1", "http://test/echo"))
        xml = serialize_process_definition(
            ProcessDefinition(
                "runnable",
                Sequence(
                    "main",
                    [
                        Invoke(
                            "call",
                            operation="echo",
                            to="http://test/echo",
                            inputs={"text": "$greeting"},
                            extract={"echoed": "text"},
                        ),
                        Reply("r", variable="echoed"),
                    ],
                ),
                initial_variables={"greeting": "parsed"},
            )
        )
        engine = WorkflowEngine(env, network=network)
        definition = parse_process_definition(xml)
        instance = engine.start(definition)
        assert engine.run_to_completion(instance) == "parsed@echo1"


class TestErrors:
    def test_callable_condition_rejected(self):
        definition = ProcessDefinition(
            "p",
            Sequence("main", [IfElse("if", lambda v: True, then=Empty("t"))]),
        )
        with pytest.raises(ProcessSerializationError):
            serialize_process_definition(definition)

    def test_input_builder_rejected(self):
        definition = ProcessDefinition(
            "p",
            Sequence(
                "main",
                [
                    Invoke(
                        "call",
                        operation="op",
                        to="http://x",
                        input_builder=lambda v: None,
                    )
                ],
            ),
        )
        with pytest.raises(ProcessSerializationError):
            serialize_process_definition(definition)

    def test_callable_assign_rejected(self):
        definition = ProcessDefinition(
            "p", Sequence("main", [Assign("a", "x", expression=lambda v: 1)])
        )
        with pytest.raises(ProcessSerializationError):
            serialize_process_definition(definition)

    def test_not_a_process_document(self):
        with pytest.raises(ProcessSerializationError):
            parse_process_definition("<SomethingElse/>")

    def test_missing_required_attribute(self):
        xml = (
            '<Process xmlns="http://masc.web.cse.unsw.edu.au/ns/process" name="p">'
            "<Sequence/></Process>"
        )
        with pytest.raises(ProcessSerializationError):
            parse_process_definition(xml)

    def test_unknown_activity_element(self):
        xml = (
            '<Process xmlns="http://masc.web.cse.unsw.edu.au/ns/process" name="p">'
            '<Teleport name="t"/></Process>'
        )
        with pytest.raises(ProcessSerializationError):
            parse_process_definition(xml)
