"""Built-in message inspectors.

"Among the handlers provided by this component is a Message Logger to log
the messages as they pass through the messaging layer. This is useful for
debugging problems, meter usage for subsequent billing to users, or trace
business-level events, such as transaction over a certain amount."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.soap import SoapEnvelope
from repro.wsbus.pipeline import ApplicabilityRule, MessageProcessingModule, PipelineContext
from repro.wsdl import ContractViolation, ServiceContract
from repro.xmlutils import XPath

__all__ = ["BusinessEventTracer", "ContractValidationInspector", "MessageLogger"]


@dataclass(frozen=True)
class LoggedMessage:
    time: float
    direction: str
    operation: str
    target: str | None
    size_bytes: int
    message_id: str


class MessageLogger(MessageProcessingModule):
    """Logs every passing message and meters usage per operation."""

    def __init__(self, name: str = "message-logger", rule: ApplicabilityRule | None = None):
        super().__init__(name, rule)
        self.entries: list[LoggedMessage] = []
        self.bytes_by_operation: dict[str, int] = {}

    def _log(self, envelope: SoapEnvelope, context: PipelineContext) -> SoapEnvelope:
        size = envelope.size_bytes
        self.entries.append(
            LoggedMessage(
                time=context.env.now,
                direction=context.direction,
                operation=context.operation,
                target=context.target,
                size_bytes=size,
                message_id=envelope.addressing.message_id,
            )
        )
        self.bytes_by_operation[context.operation] = (
            self.bytes_by_operation.get(context.operation, 0) + size
        )
        return envelope

    process_request = _log
    process_response = _log

    def metered_usage(self) -> dict[str, int]:
        """Total bytes transferred per operation (billing input)."""
        return dict(self.bytes_by_operation)


class ContractValidationInspector(MessageProcessingModule):
    """Validates messages against the VEP's abstract contract.

    "The monitoring policies could specify that exchanged messages between
    participant services must be validated to ensure conformance to the
    service contract expected by the service composition." Violations are
    recorded and raised as :class:`~repro.wsdl.ContractViolation`.
    """

    def __init__(
        self,
        contract: ServiceContract,
        name: str = "contract-validation",
        rule: ApplicabilityRule | None = None,
        strict: bool = True,
    ) -> None:
        super().__init__(name, rule)
        self.contract = contract
        self.strict = strict
        self.violations: list[str] = []

    def process_request(self, envelope: SoapEnvelope, context: PipelineContext) -> SoapEnvelope:
        if envelope.body is None or not self.contract.has_operation(context.operation):
            return envelope
        try:
            self.contract.validate_request(context.operation, envelope.body)
        except ContractViolation as violation:
            self.violations.extend(violation.violations)
            if self.strict:
                raise
        return envelope

    def process_response(self, envelope: SoapEnvelope, context: PipelineContext) -> SoapEnvelope:
        if (
            envelope.body is None
            or envelope.is_fault
            or not self.contract.has_operation(context.operation)
        ):
            return envelope
        try:
            self.contract.validate_response(context.operation, envelope.body)
        except ContractViolation as violation:
            self.violations.extend(violation.violations)
            if self.strict:
                raise
        return envelope


@dataclass(frozen=True)
class BusinessEvent:
    time: float
    name: str
    operation: str
    value: str | None


class BusinessEventTracer(MessageProcessingModule):
    """Traces business-level events, e.g. transactions over an amount.

    ``trigger_xpath`` selects the traced value; the event fires when the
    applicability rule matches (put the threshold in the rule's XPath, e.g.
    ``orderTotal[. > 10000]`` — or any predicate the XPath-lite supports).
    """

    def __init__(
        self,
        event_name: str,
        trigger_xpath: str,
        name: str = "business-event-tracer",
        rule: ApplicabilityRule | None = None,
    ) -> None:
        super().__init__(name, rule)
        self.event_name = event_name
        self._xpath = XPath(trigger_xpath)
        self.events: list[BusinessEvent] = []

    def process_request(self, envelope: SoapEnvelope, context: PipelineContext) -> SoapEnvelope:
        if envelope.body is None:
            return envelope
        value = self._xpath.value(envelope.body)
        if value is not None:
            self.events.append(
                BusinessEvent(
                    time=context.env.now,
                    name=self.event_name,
                    operation=context.operation,
                    value=value,
                )
            )
        return envelope
