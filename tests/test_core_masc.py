"""Unit tests for the MASC core: monitoring, store, decisions, adaptation."""

import pytest

from repro.core import (
    CorrelationRule,
    MASC,
    MASCEvent,
    MASCMonitoringService,
    MASCPolicyDecisionMaker,
    MonitoringStore,
    StoredMessage,
)
from repro.core.decision_maker import EnforcementPoint
from repro.policy import (
    AdaptationPolicy,
    BusinessValue,
    MessageCondition,
    MonitoringPolicy,
    PolicyDocument,
    PolicyRepository,
    PolicyScope,
    QoSThreshold,
    RetryAction,
)
from repro.simulation import Environment
from repro.soap import AddressingHeaders, FaultCode, SoapEnvelope
from repro.xmlutils import Element


def order_envelope(amount=500, country="US", process_instance_id=None):
    body = Element("getRecommendationRequest")
    body.add("amount", text=str(amount))
    body.add("country", text=country)
    addressing = AddressingHeaders(to="http://svc", action="urn:op:getRecommendation")
    if process_instance_id:
        addressing = addressing.with_process_instance(process_instance_id)
    return SoapEnvelope(addressing=addressing, body=body)


class RecordingPoint(EnforcementPoint):
    layer = "process"

    def __init__(self, result=True):
        self.result = result
        self.enacted = []

    def enact(self, action, policy, event):
        self.enacted.append((type(action).__name__, policy.name, event.name))
        return self.result


class TestMonitoringStore:
    def _message(self, time=0.0, operation="op", pid=None, direction="request"):
        return StoredMessage(
            time=time,
            direction=direction,
            operation=operation,
            target="http://svc",
            envelope=order_envelope(process_instance_id=pid),
            process_instance_id=pid,
        )

    def test_store_and_query_by_instance(self):
        store = MonitoringStore()
        store.store(self._message(pid="proc-1"))
        store.store(self._message(pid="proc-2"))
        assert len(store.for_instance("proc-1")) == 1

    def test_query_filters_compose(self):
        store = MonitoringStore()
        store.store(self._message(operation="a", direction="request"))
        store.store(self._message(operation="a", direction="response"))
        store.store(self._message(operation="b", direction="request"))
        assert len(store.messages(operation="a", direction="request")) == 1

    def test_capacity_evicts_fifo(self):
        store = MonitoringStore(capacity=2)
        store.store(self._message(time=1.0))
        store.store(self._message(time=2.0))
        store.store(self._message(time=3.0))
        assert len(store) == 2
        assert store.messages()[0].time == 2.0

    def test_correlation_rule_fires_across_messages(self):
        store = MonitoringStore()
        rule = CorrelationRule(
            name="three-requests",
            emits="burst.detected",
            predicate=lambda msg, history: {"count": len(history)} if len(history) >= 3 else None,
            operation="op",
        )
        store.add_rule(rule)
        assert store.store(self._message(time=1.0)) == []
        assert store.store(self._message(time=2.0)) == []
        fired = store.store(self._message(time=3.0))
        assert fired and fired[0][1] == {"count": 3}

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            MonitoringStore(capacity=0)


class TestMonitoringService:
    def _service(self, policies, qos_lookup=None):
        env = Environment()
        repo = PolicyRepository()
        document = PolicyDocument("d")
        document.monitoring_policies.extend(policies)
        repo.load(document)
        service = MASCMonitoringService(env, repo, qos_lookup=qos_lookup)
        events = []
        service.add_sink(events.append)
        return service, events

    def test_detection_policy_emits_with_context(self):
        service, events = self._service(
            [
                MonitoringPolicy(
                    name="detect",
                    events=("message.request",),
                    conditions=(MessageCondition("country", "ne", "AU"),),
                    extract={"amount": "amount", "country": "country"},
                    emits=("trade.international",),
                )
            ]
        )
        service.observe_message("request", order_envelope(country="US", amount=900), "getRecommendation", "http://svc")
        assert [e.name for e in events] == ["trade.international"]
        assert events[0].context == {"amount": 900, "country": "US"}

    def test_detection_policy_silent_when_conditions_fail(self):
        service, events = self._service(
            [
                MonitoringPolicy(
                    name="detect",
                    events=("message.request",),
                    conditions=(MessageCondition("country", "ne", "AU"),),
                    emits=("trade.international",),
                )
            ]
        )
        service.observe_message("request", order_envelope(country="AU"), "getRecommendation", "http://svc")
        assert events == []

    def test_constraint_policy_raises_classified_fault(self):
        service, events = self._service(
            [
                MonitoringPolicy(
                    name="constrain",
                    events=("message.request",),
                    conditions=(MessageCondition("amount", "lte", "100"),),
                    classify_as=FaultCode.SERVICE_FAILURE,
                )
            ]
        )
        service.observe_message("request", order_envelope(amount=5000), "op", "http://svc")
        assert [e.name for e in events] == ["fault.ServiceFailure"]
        assert service.violations_raised == 1

    def test_constraint_policy_silent_when_satisfied(self):
        service, events = self._service(
            [
                MonitoringPolicy(
                    name="constrain",
                    events=("message.request",),
                    conditions=(MessageCondition("amount", "lte", "100000"),),
                    classify_as=FaultCode.SERVICE_FAILURE,
                )
            ]
        )
        service.observe_message("request", order_envelope(amount=5), "op", "http://svc")
        assert events == []

    def test_relevance_condition_gates_policy(self):
        service, events = self._service(
            [
                MonitoringPolicy(
                    name="gated",
                    events=("message.request",),
                    condition="amount > 1000",
                    extract={"amount": "amount"},
                    emits=("big.order",),
                )
            ]
        )
        service.observe_message("request", order_envelope(amount=10), "op", "http://svc")
        assert events == []
        service.observe_message("request", order_envelope(amount=9999), "op", "http://svc")
        assert [e.name for e in events] == ["big.order"]

    def test_qos_threshold_violation(self):
        service, events = self._service(
            [
                MonitoringPolicy(
                    name="sla",
                    events=("message.response",),
                    qos_thresholds=(QoSThreshold("response_time", "lte", 1.0),),
                )
            ],
            qos_lookup=lambda metric, window, aggregate, endpoint: 2.5,
        )
        service.observe_message("response", order_envelope(), "op", "http://svc")
        assert [e.name for e in events] == ["fault.SLAViolation"]
        assert events[0].context["observed_value"] == 2.5

    def test_event_carries_process_instance_id(self):
        service, events = self._service(
            [
                MonitoringPolicy(
                    name="detect",
                    events=("message.request",),
                    emits=("seen",),
                )
            ]
        )
        service.observe_message(
            "request", order_envelope(process_instance_id="proc-8"), "op", "http://svc"
        )
        assert events[0].process_instance_id == "proc-8"

    def test_messages_counted(self):
        service, _ = self._service([])
        service.observe_message("request", order_envelope(), "op", "http://svc")
        assert service.messages_observed == 1


class TestDecisionMaker:
    def _setup(self, policies, point=None):
        env = Environment()
        repo = PolicyRepository()
        document = PolicyDocument("d")
        document.adaptation_policies.extend(policies)
        repo.load(document)
        maker = MASCPolicyDecisionMaker(env, repo)
        if point is not None:
            maker.register_enforcement_point(point)
        return maker, repo

    def _event(self, name="fault.Timeout", context=None, **kwargs):
        return MASCEvent(name=name, time=0.0, context=context or {}, **kwargs)

    def test_dispatches_to_enforcement_point(self):
        point = RecordingPoint()
        maker, _ = self._setup(
            [AdaptationPolicy(name="p", triggers=("fault.Timeout",), actions=(RetryAction(),))],
            point,
        )
        # RetryAction is messaging-layer; register the point for that layer.
        point.layer = "messaging"
        maker.register_enforcement_point(point)
        decisions = maker.handle(self._event())
        assert decisions[0].applied
        assert point.enacted == [("RetryAction", "p", "fault.Timeout")]

    def test_condition_blocks_application(self):
        point = RecordingPoint()
        point.layer = "messaging"
        maker, _ = self._setup(
            [
                AdaptationPolicy(
                    name="p",
                    triggers=("fault.Timeout",),
                    condition="severity > 5",
                    actions=(RetryAction(),),
                )
            ],
            point,
        )
        decisions = maker.handle(self._event(context={"severity": 1}))
        assert not decisions[0].applied
        assert "condition" in decisions[0].detail

    def test_state_gating_and_transition(self):
        point = RecordingPoint()
        point.layer = "messaging"
        maker, repo = self._setup(
            [
                AdaptationPolicy(
                    name="p",
                    triggers=("fault.Timeout",),
                    state_before="normal",
                    state_after="recovering",
                    actions=(RetryAction(),),
                )
            ],
            point,
        )
        event = self._event(endpoint="http://svc")
        first = maker.handle(event)
        assert first[0].applied
        assert repo.state_of("endpoint:http://svc") == "recovering"
        second = maker.handle(event)
        assert not second[0].applied  # state no longer matches

    def test_missing_enforcement_point_skips_action(self):
        maker, _ = self._setup(
            [AdaptationPolicy(name="p", triggers=("fault.Timeout",), actions=(RetryAction(),))]
        )
        decisions = maker.handle(self._event())
        assert not decisions[0].applied
        assert decisions[0].actions[0].startswith("SKIPPED")

    def test_business_value_recorded_on_success(self):
        point = RecordingPoint()
        point.layer = "messaging"
        maker, repo = self._setup(
            [
                AdaptationPolicy(
                    name="p",
                    triggers=("fault.Timeout",),
                    actions=(RetryAction(),),
                    business_value=BusinessValue(-3.0, "AUD"),
                )
            ],
            point,
        )
        maker.handle(self._event())
        assert repo.business_totals() == {"AUD": -3.0}

    def test_priority_order_in_decisions(self):
        point = RecordingPoint()
        point.layer = "messaging"
        maker, _ = self._setup(
            [
                AdaptationPolicy(name="late", triggers=("e",), actions=(RetryAction(),), priority=99),
                AdaptationPolicy(name="early", triggers=("e",), actions=(RetryAction(),), priority=1),
            ],
            point,
        )
        decisions = maker.handle(self._event(name="e"))
        assert [d.policy_name for d in decisions] == ["early", "late"]

    def test_decisions_query(self):
        point = RecordingPoint()
        point.layer = "messaging"
        maker, _ = self._setup(
            [AdaptationPolicy(name="p", triggers=("e",), actions=(RetryAction(),))], point
        )
        maker.handle(self._event(name="e"))
        assert len(maker.decisions_for("p", applied_only=True)) == 1
        assert maker.decisions_for("ghost") == []


class TestMASCFacade:
    def test_facade_wiring(self):
        masc = MASC(seed=1)
        assert masc.engine.registry is masc.registry
        assert masc.adaptation.engine is masc.engine
        # Monitoring feeds decisions.
        assert masc.decision_maker.handle in masc.monitoring._sinks

    def test_load_policies_via_facade(self):
        masc = MASC(seed=1)
        document = PolicyDocument("d")
        document.adaptation_policies.append(
            AdaptationPolicy(name="p", triggers=("e",), actions=(RetryAction(),))
        )
        from repro.policy import serialize_policy_document

        masc.load_policies(serialize_policy_document(document))
        assert masc.repository.find_policy("p") is not None


class TestDelayProcessAction:
    def test_delay_suspends_then_resumes(self):
        from repro.casestudies.stocktrading import build_trading_deployment
        from repro.policy import (
            AdaptationPolicy,
            DelayProcessAction,
            MonitoringPolicy,
            PolicyDocument,
            PolicyScope,
            serialize_policy_document,
        )
        from repro.orchestration.instance import InstanceStatus

        deployment = build_trading_deployment(seed=15)
        document = PolicyDocument("delay")
        document.monitoring_policies.append(
            MonitoringPolicy(
                name="watch-orders",
                events=("message.request",),
                scope=PolicyScope(operation="placeOrder"),
                emits=("order.observed",),
            )
        )
        document.adaptation_policies.append(
            AdaptationPolicy(
                name="cooling-off-period",
                triggers=("order.observed",),
                actions=(DelayProcessAction(delay_seconds=30.0),),
            )
        )
        deployment.masc.load_policies(serialize_policy_document(document))
        instance = deployment.run_order(amount=1000.0)
        assert instance.status is InstanceStatus.COMPLETED
        # The 30 s cooling-off delay dominates the run time.
        assert deployment.env.now >= 30.0
        suspends = deployment.masc.tracking.events_for(instance.id, "instance_suspended")
        resumes = deployment.masc.tracking.events_for(instance.id, "instance_resumed")
        assert len(suspends) == 1 and len(resumes) == 1

    def test_delay_action_xml_round_trip(self):
        from repro.policy import (
            AdaptationPolicy,
            DelayProcessAction,
            PolicyDocument,
            parse_policy_document,
            serialize_policy_document,
        )

        document = PolicyDocument("d")
        document.adaptation_policies.append(
            AdaptationPolicy(
                name="p", triggers=("e",), actions=(DelayProcessAction(7.5),)
            )
        )
        reparsed = parse_policy_document(serialize_policy_document(document))
        (action,) = reparsed.adaptation_policies[0].actions
        assert isinstance(action, DelayProcessAction)
        assert action.delay_seconds == 7.5

    def test_delay_must_be_positive(self):
        import pytest as _pytest

        from repro.policy import DelayProcessAction
        from repro.policy.actions import ActionError

        with _pytest.raises(ActionError):
            DelayProcessAction(delay_seconds=0.0)
