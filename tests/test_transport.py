"""Unit tests for the simulated network transport."""

import pytest

from conftest import ECHO_CONTRACT, run_process
from repro.soap import SoapEnvelope
from repro.transport import (
    ConnectionRefused,
    LatencyModel,
    Network,
    TransportTimeout,
)
from repro.simulation import RandomSource
from repro.xmlutils import Element


def echo_handler_factory(env, delay=0.0):
    def handler(request):
        if delay:
            yield env.timeout(delay)
        else:
            yield env.timeout(0)
        return request.reply(Element("ok"))

    return handler


def make_request(to="http://svc/a"):
    return SoapEnvelope.request(to, "urn:op:echo", Element("q"))


class TestLatencyModel:
    def test_zero_jitter_is_deterministic(self):
        model = LatencyModel(base_seconds=0.01, per_kb_seconds=0.001, jitter_fraction=0.0)
        rng = RandomSource(1).stream("t")
        assert model.sample(2048, rng) == pytest.approx(0.012)

    def test_size_increases_latency(self):
        model = LatencyModel(jitter_fraction=0.0)
        rng = RandomSource(1).stream("t")
        assert model.sample(64 * 1024, rng) > model.sample(1024, rng)

    def test_jitter_bounded(self):
        model = LatencyModel(base_seconds=0.01, per_kb_seconds=0.0, jitter_fraction=0.5)
        rng = RandomSource(1).stream("t")
        for _ in range(200):
            sample = model.sample(0, rng)
            assert 0.005 <= sample <= 0.015

    def test_never_negative(self):
        model = LatencyModel(base_seconds=0.0, per_kb_seconds=0.0, jitter_fraction=0.9)
        rng = RandomSource(1).stream("t")
        assert all(model.sample(0, rng) >= 0 for _ in range(50))


class TestNetwork:
    def test_round_trip(self, env, network):
        network.register("http://svc/a", echo_handler_factory(env))

        def client():
            response = yield from network.send(make_request())
            return response.body.name.local

        assert run_process(env, client()) == "ok"
        assert env.now > 0

    def test_unknown_endpoint_refused(self, env, network):
        def client():
            with pytest.raises(ConnectionRefused):
                yield from network.send(make_request("http://nowhere"))

        run_process(env, client())

    def test_unavailable_endpoint_refused_and_counted(self, env, network):
        endpoint = network.register("http://svc/a", echo_handler_factory(env))
        endpoint.available = False

        def client():
            with pytest.raises(ConnectionRefused):
                yield from network.send(make_request())

        run_process(env, client())
        assert endpoint.requests_refused == 1
        assert endpoint.requests_handled == 0

    def test_timeout_fires(self, env, network):
        network.register("http://svc/a", echo_handler_factory(env, delay=60.0))

        def client():
            with pytest.raises(TransportTimeout) as excinfo:
                yield from network.send(make_request(), timeout=1.0)
            return excinfo.value.timeout

        assert run_process(env, client()) == 1.0
        assert env.now >= 1.0

    def test_fast_response_beats_timeout(self, env, network):
        network.register("http://svc/a", echo_handler_factory(env))

        def client():
            response = yield from network.send(make_request(), timeout=10.0)
            return response.body.name.local

        assert run_process(env, client()) == "ok"

    def test_added_delay_slows_response(self, env, network):
        network.register("http://svc/a", echo_handler_factory(env))
        baseline_env_time = []

        def client():
            yield from network.send(make_request())
            baseline_env_time.append(env.now)

        run_process(env, client())
        endpoint = network.endpoint("http://svc/a")
        endpoint.added_delay_seconds = 5.0
        start = env.now

        def slow_client():
            yield from network.send(make_request())

        run_process(env, slow_client())
        assert env.now - start >= 5.0

    def test_unregister(self, env, network):
        network.register("http://svc/a", echo_handler_factory(env))
        network.unregister("http://svc/a")
        assert network.endpoint("http://svc/a") is None

    def test_reregister_replaces_handler(self, env, network):
        network.register("http://svc/a", echo_handler_factory(env))

        def other_handler(request):
            yield env.timeout(0)
            return request.reply(Element("other"))

        network.register("http://svc/a", other_handler)

        def client():
            response = yield from network.send(make_request())
            return response.body.name.local

        assert run_process(env, client()) == "other"

    def test_addresses_sorted(self, env, network):
        network.register("http://svc/b", echo_handler_factory(env))
        network.register("http://svc/a", echo_handler_factory(env))
        assert network.addresses == ["http://svc/a", "http://svc/b"]

    def test_handler_exception_propagates(self, env, network):
        def bad_handler(request):
            yield env.timeout(0)
            raise RuntimeError("handler broke")

        network.register("http://svc/a", bad_handler)

        def client():
            with pytest.raises(RuntimeError):
                yield from network.send(make_request())

        run_process(env, client())

    def test_larger_message_takes_longer(self, env, random_source):
        network = Network(
            env,
            random_source,
            latency=LatencyModel(base_seconds=0.001, per_kb_seconds=0.01, jitter_fraction=0.0),
        )
        network.register("http://svc/a", echo_handler_factory(env))
        durations = []

        def client(padding):
            start = env.now
            envelope = make_request()
            envelope.padding = padding
            yield from network.send(envelope)
            durations.append(env.now - start)

        run_process(env, client(0))
        run_process(env, client(100 * 1024))
        assert durations[1] > durations[0]
