"""The base (national) Trading Process.

"The base Trading Process is initiated when a human investor places an
investment or redemption order with their FundManagerService. The latter,
after verifying the order, invokes the FinancialAnalysisService to get a
recommendation... The FundManagerService makes a decision which stock to
buy/sell... Then, the FundManagerService sends the buying/selling request
to the StockMarketService."

The process carries **no** customization logic: currency conversion, PEST
analysis, credit rating and compliance removal are all injected/removed by
WS-Policy4MASC policies at runtime — the paper's headline separation of
concerns.
"""

from __future__ import annotations

from repro.orchestration import (
    Assign,
    CompensationScope,
    Expression,
    IfElse,
    Invoke,
    ProcessDefinition,
    Reply,
    Sequence,
    Throw,
)
from repro.soap import FaultCode

__all__ = ["TRADING_ANCHORS", "build_trading_process", "build_trading_saga_process"]

#: The activity names policies anchor to (kept stable as a public contract).
TRADING_ANCHORS = {
    "verify": "verify-order",
    "analysis": "get-analysis",
    "compliance": "market-compliance",
    "trade": "place-trade",
    "reply": "trade-result",
}


def build_trading_process(
    fund_manager_address: str,
    analysis_address: str,
    compliance_address: str,
    market_address: str,
    name: str = "trading-process",
) -> ProcessDefinition:
    """The base national-trading composition.

    Targets are concrete addresses or VEP addresses — the process does not
    care which (that is wsBus's virtualization at work).
    """
    root = Sequence(
        "trading-main",
        [
            Invoke(
                TRADING_ANCHORS["verify"],
                operation="placeOrder",
                to=fund_manager_address,
                inputs={
                    "investorId": "$investor_id",
                    "orderType": "$order_type",
                    "amount": "$amount",
                    "country": "$country",
                    "profile": "$profile",
                },
                extract={"order_id": "orderId", "order_status": "status"},
                timeout_seconds=15.0,
            ),
            Invoke(
                TRADING_ANCHORS["analysis"],
                operation="getRecommendation",
                to=analysis_address,
                inputs={
                    "orderType": "$order_type",
                    "amount": "$amount",
                    "country": "$country",
                },
                extract={"symbol": "symbol", "score": "score", "price": "price"},
                timeout_seconds=15.0,
            ),
            # Trade sizing: how many shares the requested amount buys. The
            # default quantity of 1 guards against a zero price.
            Assign(
                "size-trade",
                "quantity",
                expression="max(1, int(amount / price)) if price > 0 else 1",
            ),
            Invoke(
                TRADING_ANCHORS["compliance"],
                operation="verify",
                to=compliance_address,
                inputs={"orderId": "$order_id", "amount": "$amount"},
                extract={"compliant": "compliant"},
                timeout_seconds=15.0,
            ),
            Invoke(
                TRADING_ANCHORS["trade"],
                operation="placeTrade",
                to=market_address,
                inputs={
                    "orderId": "$order_id",
                    "symbol": "$symbol",
                    # Declarative (serializable) buy/sell decision: keeps the
                    # base process fully dehydratable for crash recovery.
                    "side": Expression("'buy' if order_type == 'invest' else 'sell'"),
                    "quantity": "$quantity",
                    "limitPrice": "$price",
                },
                extract={"trade_id": "tradeId", "trade_status": "status"},
                timeout_seconds=20.0,
            ),
            Reply(TRADING_ANCHORS["reply"], variable="trade_status"),
        ],
    )
    return ProcessDefinition(
        name,
        root,
        initial_variables={
            "investor_id": "investor-1",
            "order_type": "invest",
            "amount": 5000.0,
            "country": "AU",
            "currency": "AUD",
            "profile": "personal",
        },
    )


def build_trading_saga_process(
    fund_manager_address: str,
    analysis_address: str,
    market_address: str,
    payment_address: str,
    abort: bool = False,
    name: str = "trading-saga",
) -> ProcessDefinition:
    """The trading composition as an unwind-position saga.

    ``reserve-funds`` moves the investment amount from the investor to the
    broker and is undone by ``release-funds`` (the same transfer with the
    parties flipped); ``place-trade`` is undone by ``unwind-trade`` (the
    same trade with the side flipped). With ``abort=True`` a gate throws
    after the trade, the saga unwinds LIFO (unwind the position, then
    release the funds) and the catch-all handler replies ``unwound``.
    """
    body = Sequence(
        "trading-saga-main",
        [
            Invoke(
                "verify-order",
                operation="placeOrder",
                to=fund_manager_address,
                inputs={
                    "investorId": "$investor_id",
                    "orderType": "$order_type",
                    "amount": "$amount",
                    "country": "$country",
                    "profile": "$profile",
                },
                extract={"order_id": "orderId", "order_status": "status"},
                timeout_seconds=15.0,
            ),
            Invoke(
                "get-analysis",
                operation="getRecommendation",
                to=analysis_address,
                inputs={
                    "orderType": "$order_type",
                    "amount": "$amount",
                    "country": "$country",
                },
                extract={"symbol": "symbol", "score": "score", "price": "price"},
                timeout_seconds=15.0,
            ),
            Assign(
                "size-trade",
                "quantity",
                expression="max(1, int(amount / price)) if price > 0 else 1",
            ),
            Invoke(
                "reserve-funds",
                operation="transferFunds",
                to=payment_address,
                inputs={
                    "tradeId": "$order_id",
                    "amount": "$amount",
                    "fromParty": "$investor_id",
                    "toParty": "broker",
                },
                extract={"funds_reserved": "settled"},
                timeout_seconds=10.0,
            ),
            Invoke(
                "place-trade",
                operation="placeTrade",
                to=market_address,
                inputs={
                    "orderId": "$order_id",
                    "symbol": "$symbol",
                    "side": Expression("'buy' if order_type == 'invest' else 'sell'"),
                    "quantity": "$quantity",
                    "limitPrice": "$price",
                },
                extract={"trade_id": "tradeId", "trade_status": "status"},
                timeout_seconds=20.0,
            ),
            IfElse(
                "abort-gate",
                "abort == 'true'",
                then=Throw(
                    "abort-trade", FaultCode.SERVER, "position abandoned after trade"
                ),
            ),
            Reply("trade-result", variable="trade_status"),
        ],
    )
    root = CompensationScope(
        "trade-saga",
        body,
        compensations={
            "reserve-funds": Invoke(
                "release-funds",
                operation="transferFunds",
                to=payment_address,
                inputs={
                    "tradeId": "$order_id",
                    "amount": "$amount",
                    "fromParty": "broker",
                    "toParty": "$investor_id",
                },
                extract={"funds_released": "settled"},
                timeout_seconds=10.0,
            ),
            "place-trade": Invoke(
                "unwind-trade",
                operation="placeTrade",
                to=market_address,
                inputs={
                    "orderId": "$order_id",
                    "symbol": "$symbol",
                    "side": Expression("'sell' if order_type == 'invest' else 'buy'"),
                    "quantity": "$quantity",
                    "limitPrice": "$price",
                },
                extract={"unwind_trade_id": "tradeId", "unwind_status": "status"},
                timeout_seconds=20.0,
            ),
        },
        fault_handlers={
            None: Sequence(
                "unwind-flow",
                [
                    Assign("mark-unwound", "trade_status", value="unwound"),
                    Reply("unwound-result", variable="trade_status"),
                ],
            )
        },
    )
    return ProcessDefinition(
        name,
        root,
        initial_variables={
            "investor_id": "investor-1",
            "order_type": "invest",
            "amount": 5000.0,
            "country": "AU",
            "currency": "AUD",
            "profile": "personal",
            "abort": "true" if abort else "false",
        },
    )
