"""Durable process-instance persistence: dehydration and rehydration.

Reproduces the WF persistence-service role the paper's middleware depends
on: running compositions are dehydrated (checkpointed) at activity
boundaries and around suspend–modify–resume adaptation cycles, and can be
rehydrated into a fresh :class:`~repro.orchestration.WorkflowEngine` after
an engine crash, resuming mid-sequence with no lost or re-executed work.

- :class:`CheckpointStore` — append-only JSONL record log (memory or file).
- :class:`CheckpointingService` — engine runtime service appending a
  domain-event journal plus derived boundary checkpoints and a replayable
  modification journal, all in one log.
- :mod:`repro.persistence.journal` — event-sourcing core: replay the
  journal into a :class:`~repro.persistence.journal.DerivedState` and
  verify it byte-matches every stored checkpoint.
- :func:`rehydrate_instance` / ``WorkflowEngine.rehydrate`` — recovery.
- :mod:`repro.persistence.encoding` — structured variable encoding (the
  replacement for the old scalars-only snapshot filter).
"""

from repro.persistence.checkpoint import (
    CheckpointingService,
    PersistenceError,
    RestoredState,
    capture_checkpoint,
    rehydrate_instance,
    restore_state,
)
from repro.persistence.encoding import (
    StateEncodingError,
    decode_value,
    decode_variables,
    encode_value,
    encode_variables,
    snapshot_variables,
)
from repro.persistence.journal import (
    DerivedState,
    JournalError,
    apply_event,
    derive_snapshot,
    journal_events,
    verify_journal,
)
from repro.persistence.store import CHECKPOINT, EVENT, MODIFICATION, CheckpointStore

__all__ = [
    "CHECKPOINT",
    "EVENT",
    "MODIFICATION",
    "CheckpointStore",
    "CheckpointingService",
    "DerivedState",
    "JournalError",
    "PersistenceError",
    "RestoredState",
    "StateEncodingError",
    "apply_event",
    "capture_checkpoint",
    "decode_value",
    "decode_variables",
    "derive_snapshot",
    "encode_value",
    "encode_variables",
    "journal_events",
    "rehydrate_instance",
    "restore_state",
    "snapshot_variables",
    "verify_journal",
]
