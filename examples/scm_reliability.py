"""SCM reliability: a miniature Table 1 run you can read in one screen.

Deploys the WS-I Supply Chain Management application, injects the Table 1
fault mix (availability windows + application faults), and compares a
client talking directly to each Retailer against the same client going
through one wsBus VEP that virtualizes all four.

Run:  python examples/scm_reliability.py
"""

from repro.casestudies.scm import (
    RETAILER_CONTRACT,
    build_scm_deployment,
    retailer_recovery_policy_document,
)
from repro.metrics import Table, reliability_report
from repro.policy import PolicyRepository
from repro.workload import RequestPlan, WorkloadRunner
from repro.wsbus import WsBus


def catalog_plan(target, timeout):
    return RequestPlan(
        target=target,
        operation="getCatalog",
        payload_factory=lambda c, i: RETAILER_CONTRACT.operation("getCatalog").input.build(),
        timeout=timeout,
        think_time_seconds=2.0,
    )


def run_direct(retailer: str, seed: int = 19):
    deployment = build_scm_deployment(seed=seed, log_events=False)
    deployment.inject_table1_mix()
    runner = WorkloadRunner(deployment.env, deployment.network)
    result = runner.run(
        catalog_plan(deployment.retailers[retailer].address, timeout=5.0),
        clients=4,
        requests_per_client=150,
    )
    return reliability_report(f"direct Retailer {retailer}", result.records)


def run_via_bus(seed: int = 19):
    deployment = build_scm_deployment(seed=seed, log_events=False)
    deployment.inject_table1_mix()
    repository = PolicyRepository()
    repository.load(retailer_recovery_policy_document())  # retry x3, 2s, then failover
    bus = WsBus(
        deployment.env,
        deployment.network,
        repository=repository,
        registry=deployment.registry,
        member_timeout=5.0,
        colocated_with_clients=True,
    )
    vep = bus.create_vep(
        "retailers",
        RETAILER_CONTRACT,
        members=deployment.retailer_addresses,
        selection_strategy="round_robin",
    )
    runner = WorkloadRunner(deployment.env, deployment.network)
    result = runner.run(catalog_plan(vep.address, timeout=60.0), clients=4, requests_per_client=150)
    return reliability_report("all 4 Retailers as 1 wsBus VEP", result.records), bus


def main() -> None:
    table = Table(
        ["Configuration", "Requests", "Failures", "Failures/1000", "Availability"],
        title="getCatalog reliability under injected faults (cf. paper Table 1)",
    )
    for retailer in "ABCD":
        report = run_direct(retailer)
        table.add_row(
            [
                report.configuration,
                report.requests,
                report.failures,
                f"{report.failures_per_1000:.0f}",
                f"{report.availability:.3f}",
            ]
        )
    vep_report, bus = run_via_bus()
    table.add_row(
        [
            vep_report.configuration,
            vep_report.requests,
            vep_report.failures,
            f"{vep_report.failures_per_1000:.0f}",
            f"{vep_report.availability:.3f}",
        ]
    )
    print(table.render())

    stats = bus.stats_summary()
    print(
        f"\nwsBus recovered {stats['veps']['retailers']['recovered']} requests "
        f"({stats['retry_queue']['succeeded']} via the retry queue, "
        f"{len(bus.adaptation.outcomes)} recovery decisions, "
        f"{stats['dead_letters']} dead-lettered)."
    )


if __name__ == "__main__":
    main()
