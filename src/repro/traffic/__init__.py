"""Policy-driven traffic shaping for wsBus mediation.

The tier ROADMAP item 3 asks for, in three pieces configured entirely by
WS-Policy4MASC assertions on the conventional ``traffic.configure``
trigger:

- **idempotency keys** (:mod:`repro.traffic.idempotency`): the VEP stamps
  scope-matched requests with a key derived from the envelope's message
  ID; the service container's dedupe store executes each key at most once
  and answers every redelivery (retry, dead-letter replay, broadcast,
  choreography compensation) with the recorded first response;
- **response cache** (:mod:`repro.traffic.cache`): cache-aside with TTL
  and LRU bounds at the VEP, invalidated by MASC events named in the
  policy (the same event fabric that drives adaptation);
- **load leveling** (:mod:`repro.traffic.leveling`): token-bucket
  smoothing with a bounded virtual wait queue in front of VEP admission —
  the gentler alternative to shed-only overload control.

:class:`~repro.traffic.service.TrafficService` scans the repository and
serves scope-matched configuration to the VEPs; with no traffic policies
loaded it is inert and the mediation path is byte-for-byte unchanged.
"""

from repro.traffic.idempotency import (
    IDEMPOTENCY_HEADER,
    IdempotencyStore,
    idempotency_key_of,
    stamp_idempotency_key,
)

__all__ = [
    "IDEMPOTENCY_HEADER",
    "IdempotencyStore",
    "LoadLeveler",
    "ResponseCache",
    "TrafficService",
    "idempotency_key_of",
    "stamp_idempotency_key",
]

#: Lazily exported (PEP 562): these pull in :mod:`repro.policy`, which in
#: turn imports :mod:`repro.services` → this package — eager imports here
#: would close that cycle. :mod:`repro.traffic.idempotency` stays eager
#: because the service container needs it and it only touches SOAP/XML.
_LAZY = {
    "LoadLeveler": "repro.traffic.leveling",
    "ResponseCache": "repro.traffic.cache",
    "TrafficService": "repro.traffic.service",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    return getattr(import_module(module_name), name)
