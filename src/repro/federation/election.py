"""Lease-based leader election for the fleet's adaptation plane.

Exactly one bus may enact fleet-wide policy reactions. The election is a
simulated lease: the lowest-named alive bus holds a lease it renews while
alive; when it dies, followers must wait for the lease to *expire* before
the next candidate takes over (the realistic failover gap), then the new
leader is installed and listeners re-wire event forwarding.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.observability import NULL_METRICS, NULL_TRACER

__all__ = ["LeaderElection", "LeaderLease"]


@dataclass
class LeaderLease:
    """The current leadership grant."""

    holder: str
    epoch: int
    granted_at: float
    expires_at: float


class LeaderElection:
    """Grants and transfers the fleet's adaptation leadership."""

    def __init__(
        self,
        env,
        membership,
        lease_seconds: float = 3.0,
        tracer=None,
        metrics=None,
    ) -> None:
        if lease_seconds <= 0:
            raise ValueError(f"lease_seconds must be positive: {lease_seconds}")
        self.env = env
        self.membership = membership
        self.lease_seconds = lease_seconds
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.lease: LeaderLease | None = None
        self.epoch = 0
        #: ``(time, previous, new)`` per change, oldest first.
        self.changes: list[tuple[float, str | None, str]] = []
        #: ``listener(previous, new)`` fired on every leadership change.
        self._listeners: list[Callable[[str | None, str], None]] = []
        self._running = False

    @property
    def leader(self) -> str | None:
        return self.lease.holder if self.lease is not None else None

    def add_listener(self, listener: Callable[[str | None, str], None]) -> None:
        self._listeners.append(listener)

    def start(self) -> None:
        """Run the periodic lease check (idempotent)."""
        if not self._running:
            self._running = True
            self.evaluate()
            self.env.process(self._loop(), name="fleet-election")

    def _loop(self):
        # Check at a fraction of the lease so renewal always lands before
        # expiry and takeover happens promptly after it.
        interval = self.lease_seconds / 3.0
        while True:
            yield self.env.timeout(interval)
            self.evaluate()

    def evaluate(self) -> None:
        """Renew, expire, or grant the lease against the membership view."""
        alive = self.membership.alive()
        lease = self.lease
        if lease is not None and lease.holder in alive:
            lease.expires_at = self.env.now + self.lease_seconds
            return
        if lease is not None and self.env.now < lease.expires_at:
            # The holder is suspected dead but its lease has not expired:
            # no follower may usurp an unexpired grant.
            return
        if not alive:
            return
        self._elect(alive[0])

    def _elect(self, new: str) -> None:
        previous = self.leader
        if new == previous:
            return
        self.epoch += 1
        self.lease = LeaderLease(
            holder=new,
            epoch=self.epoch,
            granted_at=self.env.now,
            expires_at=self.env.now + self.lease_seconds,
        )
        self.changes.append((self.env.now, previous, new))
        if self.metrics.enabled:
            self.metrics.counter("federation.leader.changes").inc()
        if self.tracer.enabled:
            span = self.tracer.start_span(
                "federation.leader.elected" if previous is None else "federation.leader.transfer",
                attributes={
                    "leader": new,
                    "previous": previous or "",
                    "epoch": str(self.epoch),
                },
            )
            span.end(status="elected")
        for listener in list(self._listeners):
            listener(previous, new)

    def summary(self) -> dict:
        return {
            "leader": self.leader,
            "epoch": self.epoch,
            "changes": [
                {"time": time, "previous": previous, "new": new}
                for time, previous, new in self.changes
            ],
        }
