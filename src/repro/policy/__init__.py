"""WS-Policy4MASC: the policy language.

The paper's novel WS-Policy extension for "specification of policies for
monitoring of functional and QoS aspects... and different types of
adaptation". A policy document is a WS-Policy ``Policy`` element carrying
MASC assertions of two kinds:

- **monitoring policies** (ECA sensors): triggering events, relevance
  conditions, message pre/post-conditions expressed as XPath constraints,
  QoS thresholds against SLAs — classifying violations into fault types
  and/or emitting higher-level events;
- **adaptation policies** (effectors): triggered by events/faults, guarded
  by conditions and required subject states, executing ordered adaptation
  actions (process-layer: add/remove/replace activities, suspend/resume/
  terminate, extend timeouts; messaging-layer: retry, substitute,
  concurrent invocation, skip), moving the subject to a new state and
  accounting a business-value delta.

Documents round-trip to real XML (:mod:`repro.policy.xml`), are stored in a
:class:`~repro.policy.repository.PolicyRepository` with priority-ordered
lookup and hot reload, and are checked by :mod:`repro.policy.validation`.
"""

from repro.policy.actions import (
    ActionError,
    AdaptiveTimeoutAction,
    BulkheadAction,
    BurnRateAlertAction,
    CircuitBreakerAction,
    CompensateInstanceAction,
    DelayProcessAction,
    LoadSheddingAction,
    PreferBestAction,
    QuarantineAction,
    AdaptationAction,
    AddActivityAction,
    ConcurrentInvokeAction,
    ExtendTimeoutAction,
    FederationAction,
    IdempotencyAction,
    InvokeSpec,
    LoadLevelingAction,
    RemoveActivityAction,
    ReplaceActivityAction,
    ResilienceAction,
    ResponseCacheAction,
    RetryAction,
    SelectionStrategyAction,
    ShardRoutingAction,
    SkipAction,
    SloAction,
    SubstituteAction,
    SuspendProcessAction,
    TerminateProcessAction,
    TracingAction,
    TrafficAction,
)
from repro.policy.assertions import (
    MessageCondition,
    QoSThreshold,
)
from repro.policy.model import (
    AdaptationPolicy,
    GoalPolicy,
    BusinessValue,
    MonitoringPolicy,
    PolicyDocument,
    PolicyError,
    PolicyScope,
)
from repro.policy.repository import PolicyRepository
from repro.policy.validation import PolicyValidationError, validate_document
from repro.policy.xml import MASC_POLICY_NS, WSP_NS, parse_policy_document, serialize_policy_document

__all__ = [
    "ActionError",
    "AdaptationAction",
    "AdaptationPolicy",
    "AdaptiveTimeoutAction",
    "AddActivityAction",
    "BulkheadAction",
    "BurnRateAlertAction",
    "BusinessValue",
    "CircuitBreakerAction",
    "CompensateInstanceAction",
    "ConcurrentInvokeAction",
    "DelayProcessAction",
    "ExtendTimeoutAction",
    "FederationAction",
    "GoalPolicy",
    "IdempotencyAction",
    "InvokeSpec",
    "LoadLevelingAction",
    "LoadSheddingAction",
    "MASC_POLICY_NS",
    "MessageCondition",
    "MonitoringPolicy",
    "PolicyDocument",
    "PolicyError",
    "PolicyRepository",
    "PolicyScope",
    "PolicyValidationError",
    "PreferBestAction",
    "QuarantineAction",
    "QoSThreshold",
    "RemoveActivityAction",
    "ReplaceActivityAction",
    "ResilienceAction",
    "ResponseCacheAction",
    "RetryAction",
    "SelectionStrategyAction",
    "ShardRoutingAction",
    "SkipAction",
    "SloAction",
    "SubstituteAction",
    "SuspendProcessAction",
    "TerminateProcessAction",
    "TracingAction",
    "TrafficAction",
    "WSP_NS",
    "parse_policy_document",
    "serialize_policy_document",
    "validate_document",
]
