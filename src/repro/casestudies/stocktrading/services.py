"""Stock trading service implementations.

Business logic follows the paper's description, including its simplicity
disclaimers: "for our prototype, we used very simple models" for the
financial analysis, and "this decision is very simple, e.g., buy one best
stock" for the fund manager. The StockMarketService "performs a simple
trade matching between the buy orders and the sell orders. When a trade
match is formed, the StockMarketService invokes **in parallel** the
StockRegistryService to transfer the stock share ownership and the
PaymentService to transfer funds."
"""

from __future__ import annotations

import itertools
from collections.abc import Generator
from dataclasses import dataclass

from repro.casestudies.stocktrading.contracts import (
    CREDIT_RATING_CONTRACT,
    CURRENCY_CONVERSION_CONTRACT,
    FINANCIAL_ANALYSIS_CONTRACT,
    FUND_MANAGER_CONTRACT,
    MARKET_COMPLIANCE_CONTRACT,
    PAYMENT_CONTRACT,
    PEST_ANALYSIS_CONTRACT,
    STOCK_MARKET_CONTRACT,
    STOCK_NOTIFICATION_CONTRACT,
    STOCK_REGISTRY_CONTRACT,
)
from repro.services import SimulatedService
from repro.simulation import AllOf
from repro.soap import FaultCode, SoapFault, SoapFaultError
from repro.xmlutils import Element

__all__ = [
    "CreditRatingService",
    "CurrencyConversionService",
    "DEFAULT_STOCKS",
    "FinancialAnalysisService",
    "FundManagerService",
    "MarketComplianceService",
    "PaymentService",
    "PESTAnalysisService",
    "StockMarketService",
    "StockNotificationService",
    "StockRegistryService",
]

#: Listed stocks and their base prices.
DEFAULT_STOCKS: dict[str, float] = {
    "ACME": 42.0,
    "GLOBEX": 87.5,
    "INITECH": 15.25,
    "UMBRELLA": 120.0,
    "WAYNE": 250.0,
    "STARK": 310.0,
    "TYRELL": 64.0,
    "WONKA": 28.5,
}


class StockNotificationService(SimulatedService):
    """Publishes periodic stock-value notifications to subscribers.

    "The FinancialAnalysisService gets periodic notifications from the
    StockNotificationService about the current stock values and real-time
    market surveillance."
    """

    contract = STOCK_NOTIFICATION_CONTRACT

    def __init__(
        self,
        *args,
        stocks: dict[str, float] | None = None,
        notification_interval: float = 30.0,
        volatility: float = 0.02,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.prices: dict[str, float] = dict(stocks or DEFAULT_STOCKS)
        self.notification_interval = notification_interval
        self.volatility = volatility
        self.subscribers: list[str] = []
        self.notifications_sent = 0
        self._publisher_started = False

    def start_publishing(self) -> None:
        """Begin the periodic notification cycle (idempotent)."""
        if not self._publisher_started:
            self._publisher_started = True
            self.env.process(self._publish_cycle(), name=f"{self.name}:publisher")

    def _publish_cycle(self) -> Generator:
        while True:
            yield self.env.timeout(self.notification_interval)
            self._move_prices()
            quotes = ";".join(f"{s}:{p:.2f}" for s, p in sorted(self.prices.items()))
            request = FINANCIAL_ANALYSIS_CONTRACT.operation("updateQuotes").input.build(
                quotes=quotes
            )
            for address in list(self.subscribers):
                try:
                    yield from self.invoker.invoke(
                        address, "updateQuotes", request.copy(), timeout=5.0
                    )
                    self.notifications_sent += 1
                except SoapFaultError:
                    pass  # subscriber unreachable; next cycle retries

    def _move_prices(self) -> None:
        rng = self.rng
        for symbol in self.prices:
            drift = rng.uniform(-self.volatility, self.volatility)
            self.prices[symbol] = max(0.01, self.prices[symbol] * (1.0 + drift))

    def op_getQuote(self, payload: Element, ctx) -> Generator:
        yield ctx.work()
        symbol = payload.child_text("symbol", "") or ""
        if symbol not in self.prices:
            raise SoapFaultError(
                SoapFault(FaultCode.SERVICE_FAILURE, f"unknown symbol {symbol!r}")
            )
        return STOCK_NOTIFICATION_CONTRACT.operation("getQuote").output.build(
            symbol=symbol, price=round(self.prices[symbol], 2)
        )

    def op_subscribe(self, payload: Element, ctx) -> Generator:
        yield ctx.work()
        address = payload.child_text("address", "") or ""
        if address and address not in self.subscribers:
            self.subscribers.append(address)
        return STOCK_NOTIFICATION_CONTRACT.operation("subscribe").output.build(
            subscribed=True
        )


class FinancialAnalysisService(SimulatedService):
    """Recommends stocks from quotes, history, and a simple model."""

    contract = FINANCIAL_ANALYSIS_CONTRACT

    def __init__(self, *args, stocks: dict[str, float] | None = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.quotes: dict[str, float] = dict(stocks or DEFAULT_STOCKS)
        self.history: dict[str, list[float]] = {s: [p] for s, p in self.quotes.items()}

    def op_updateQuotes(self, payload: Element, ctx) -> Generator:
        yield ctx.work()
        text = payload.child_text("quotes", "") or ""
        for chunk in text.split(";"):
            symbol, _, price = chunk.partition(":")
            if symbol and price:
                value = float(price)
                self.quotes[symbol] = value
                self.history.setdefault(symbol, []).append(value)
        return FINANCIAL_ANALYSIS_CONTRACT.operation("updateQuotes").output.build(
            accepted=True
        )

    def _momentum(self, symbol: str) -> float:
        """The 'very simple predictive model': short-horizon momentum."""
        series = self.history.get(symbol, [])
        if len(series) < 2:
            return 0.0
        window = series[-5:]
        return (window[-1] - window[0]) / window[0] if window[0] else 0.0

    def op_getRecommendation(self, payload: Element, ctx) -> Generator:
        yield ctx.work()
        order_type = payload.child_text("orderType", "invest") or "invest"
        scored = sorted(
            ((self._momentum(symbol), symbol) for symbol in self.quotes),
            reverse=(order_type == "invest"),
        )
        if not scored:
            raise SoapFaultError(
                SoapFault(FaultCode.SERVICE_FAILURE, "no market data available")
            )
        score, symbol = scored[0]
        return FINANCIAL_ANALYSIS_CONTRACT.operation("getRecommendation").output.build(
            symbol=symbol, score=round(score, 6), price=round(self.quotes[symbol], 2)
        )


@dataclass
class _BookOrder:
    trade_id: str
    symbol: str
    side: str
    quantity: int
    limit_price: float


class StockMarketService(SimulatedService):
    """Order book with simple matching and parallel settlement."""

    contract = STOCK_MARKET_CONTRACT

    def __init__(
        self,
        *args,
        registry_address: str | None = None,
        payment_address: str | None = None,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.registry_address = registry_address
        self.payment_address = payment_address
        self._ids = itertools.count(1)
        self.book: list[_BookOrder] = []
        self.trades_matched = 0
        self.settlement_failures = 0

    def op_placeTrade(self, payload: Element, ctx) -> Generator:
        yield ctx.work()
        order = _BookOrder(
            trade_id=f"trade-{next(self._ids):06d}",
            symbol=payload.child_text("symbol", "") or "",
            side=payload.child_text("side", "buy") or "buy",
            quantity=int(payload.child_text("quantity", "0") or 0),
            limit_price=float(payload.child_text("limitPrice", "0") or 0),
        )
        if order.quantity <= 0:
            raise SoapFaultError(
                SoapFault(FaultCode.CLIENT, f"invalid quantity {order.quantity}")
            )
        match = self._match(order)
        if match is None:
            self.book.append(order)
            return STOCK_MARKET_CONTRACT.operation("placeTrade").output.build(
                tradeId=order.trade_id, status="queued"
            )
        self.book.remove(match)
        self.trades_matched += 1
        executed_price = (order.limit_price + match.limit_price) / 2.0
        yield from self._settle(order, match, executed_price)
        return STOCK_MARKET_CONTRACT.operation("placeTrade").output.build(
            tradeId=order.trade_id,
            status="matched",
            executedPrice=round(executed_price, 2),
        )

    def _match(self, order: _BookOrder) -> _BookOrder | None:
        """Price-compatible opposite-side order for the same symbol."""
        for resting in self.book:
            if resting.symbol != order.symbol or resting.side == order.side:
                continue
            buy, sell = (order, resting) if order.side == "buy" else (resting, order)
            if buy.limit_price >= sell.limit_price:
                return resting
        return None

    def _settle(
        self, order: _BookOrder, match: _BookOrder, executed_price: float
    ) -> Generator:
        """Invoke registry and payment **in parallel**."""
        if self.registry_address is None or self.payment_address is None:
            return
        buy = order if order.side == "buy" else match
        sell = match if order.side == "buy" else order
        transfer = STOCK_REGISTRY_CONTRACT.operation("transferOwnership").input.build(
            tradeId=order.trade_id,
            symbol=order.symbol,
            quantity=min(order.quantity, match.quantity),
            fromParty=sell.trade_id,
            toParty=buy.trade_id,
        )
        funds = PAYMENT_CONTRACT.operation("transferFunds").input.build(
            tradeId=order.trade_id,
            amount=round(executed_price * min(order.quantity, match.quantity), 2),
            fromParty=buy.trade_id,
            toParty=sell.trade_id,
        )
        registry_call = self.env.process(
            self.invoker.invoke(self.registry_address, "transferOwnership", transfer, timeout=10.0),
            name=f"{self.name}:registry",
        )
        payment_call = self.env.process(
            self.invoker.invoke(self.payment_address, "transferFunds", funds, timeout=10.0),
            name=f"{self.name}:payment",
        )
        try:
            yield AllOf(self.env, [registry_call, payment_call])
        except SoapFaultError as error:
            self.settlement_failures += 1
            raise SoapFaultError(
                SoapFault(
                    FaultCode.SERVICE_FAILURE,
                    f"settlement failed for {order.trade_id}: {error.fault.reason}",
                )
            ) from error


class StockRegistryService(SimulatedService):
    contract = STOCK_REGISTRY_CONTRACT

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.transfers: list[str] = []

    def op_transferOwnership(self, payload: Element, ctx) -> Generator:
        yield ctx.work()
        self.transfers.append(payload.child_text("tradeId", "") or "")
        return STOCK_REGISTRY_CONTRACT.operation("transferOwnership").output.build(
            transferred=True
        )


class PaymentService(SimulatedService):
    contract = PAYMENT_CONTRACT

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.settled_amounts: list[float] = []

    def op_transferFunds(self, payload: Element, ctx) -> Generator:
        yield ctx.work()
        self.settled_amounts.append(float(payload.child_text("amount", "0") or 0))
        return PAYMENT_CONTRACT.operation("transferFunds").output.build(settled=True)


class FundManagerService(SimulatedService):
    """Front service verifying investor orders (the composition root)."""

    contract = FUND_MANAGER_CONTRACT

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._ids = itertools.count(1)
        self.orders_verified = 0

    def op_placeOrder(self, payload: Element, ctx) -> Generator:
        yield ctx.work()
        amount = float(payload.child_text("amount", "0") or 0)
        if amount <= 0:
            raise SoapFaultError(
                SoapFault(FaultCode.CLIENT, f"invalid order amount {amount}")
            )
        order_type = payload.child_text("orderType", "") or ""
        if order_type not in ("invest", "redeem"):
            raise SoapFaultError(
                SoapFault(FaultCode.CLIENT, f"unknown order type {order_type!r}")
            )
        self.orders_verified += 1
        return FUND_MANAGER_CONTRACT.operation("placeOrder").output.build(
            orderId=f"order-{next(self._ids):06d}", status="verified", symbol=""
        )


# ---------------------------------------------------------------------------
# Variation services (added/removed by customization policies)
# ---------------------------------------------------------------------------


class CurrencyConversionService(SimulatedService):
    """Converts foreign stock prices to the local currency (CC_1..CC_n)."""

    contract = CURRENCY_CONVERSION_CONTRACT

    #: Exchange rates into AUD.
    RATES: dict[str, float] = {
        "AUD": 1.0,
        "USD": 1.52,
        "EUR": 1.64,
        "GBP": 1.91,
        "JPY": 0.0105,
        "SGD": 1.12,
    }

    def op_convert(self, payload: Element, ctx) -> Generator:
        yield ctx.work()
        amount = float(payload.child_text("amount", "0") or 0)
        from_currency = payload.child_text("fromCurrency", "AUD") or "AUD"
        to_currency = payload.child_text("toCurrency", "AUD") or "AUD"
        if from_currency not in self.RATES or to_currency not in self.RATES:
            raise SoapFaultError(
                SoapFault(
                    FaultCode.SERVICE_FAILURE,
                    f"unsupported currency pair {from_currency}->{to_currency}",
                )
            )
        rate = self.RATES[from_currency] / self.RATES[to_currency]
        return CURRENCY_CONVERSION_CONTRACT.operation("convert").output.build(
            converted=round(amount * rate, 2), rate=round(rate, 6)
        )


class PESTAnalysisService(SimulatedService):
    """Assesses political/economic/social/technological risk by country."""

    contract = PEST_ANALYSIS_CONTRACT

    #: Per-country base risk (lower = safer); unknown countries score 0.6.
    COUNTRY_RISK: dict[str, float] = {
        "AU": 0.10,
        "US": 0.15,
        "GB": 0.18,
        "DE": 0.16,
        "JP": 0.17,
        "SG": 0.14,
        "BR": 0.45,
        "RU": 0.75,
    }

    def op_assess(self, payload: Element, ctx) -> Generator:
        yield ctx.work()
        country = payload.child_text("country", "") or ""
        base = self.COUNTRY_RISK.get(country, 0.6)
        rng = self.rng
        factors = {
            "political": min(1.0, base * rng.uniform(0.8, 1.2)),
            "economic": min(1.0, base * rng.uniform(0.8, 1.2)),
            "social": min(1.0, base * rng.uniform(0.7, 1.1)),
            "technological": min(1.0, base * rng.uniform(0.6, 1.0)),
        }
        overall = sum(factors.values()) / len(factors)
        return PEST_ANALYSIS_CONTRACT.operation("assess").output.build(
            political=round(factors["political"], 3),
            economic=round(factors["economic"], 3),
            social=round(factors["social"], 3),
            technological=round(factors["technological"], 3),
            overallRisk=round(overall, 3),
        )


class CreditRatingService(SimulatedService):
    """Checks investor creditworthiness before large trades (CR_1..CR_n)."""

    contract = CREDIT_RATING_CONTRACT

    RATINGS = ("AAA", "AA", "A", "BBB", "BB", "B")

    def op_check(self, payload: Element, ctx) -> Generator:
        yield ctx.work()
        investor = payload.child_text("investorId", "") or ""
        amount = float(payload.child_text("amount", "0") or 0)
        # Deterministic per investor: hash to a rating bucket.
        bucket = sum(ord(ch) for ch in investor) % len(self.RATINGS)
        rating = self.RATINGS[bucket]
        approved = bucket <= 3 or amount < 50_000
        return CREDIT_RATING_CONTRACT.operation("check").output.build(
            rating=rating, approved=approved
        )


class MarketComplianceService(SimulatedService):
    """Verifies large trades against market-compliance rules."""

    contract = MARKET_COMPLIANCE_CONTRACT

    def __init__(self, *args, rejection_threshold: float = 10_000_000.0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.rejection_threshold = rejection_threshold
        self.checks_performed = 0

    def op_verify(self, payload: Element, ctx) -> Generator:
        yield ctx.work()
        self.checks_performed += 1
        amount = float(payload.child_text("amount", "0") or 0)
        return MARKET_COMPLIANCE_CONTRACT.operation("verify").output.build(
            compliant=amount < self.rejection_threshold
        )
