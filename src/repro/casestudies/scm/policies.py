"""WS-Policy4MASC documents used by the SCM experiments.

These are the policies Section 3.2 describes: "For timeout faults, these
policies configured the VEP for the Retailers to first retry the invocation
of the faulty services three times with a delay between retry cycles of two
seconds. After exhausting the maximum number of allowed retries, the
policies configured the VEP to route the request message to a different
Retailer based on the response time gathered from prior interactions. ...
For the Logging service we have configured a skip policy since the
functionality provided by the Logging service is not business critical."

Each builder returns both the in-memory document and (via the XML module)
round-trips through the wire format, so the experiments exercise the full
parse path rather than hand-built objects.
"""

from __future__ import annotations

from repro.policy import (
    AdaptationPolicy,
    ConcurrentInvokeAction,
    PolicyDocument,
    PolicyScope,
    RetryAction,
    SkipAction,
    SubstituteAction,
    parse_policy_document,
    serialize_policy_document,
)

__all__ = [
    "broadcast_policy_document",
    "logging_skip_policy_document",
    "retailer_recovery_policy_document",
]


def _round_trip(document: PolicyDocument) -> PolicyDocument:
    """Serialize + re-parse so experiments use the real XML path."""
    return parse_policy_document(serialize_policy_document(document))


def retailer_recovery_policy_document(
    max_retries: int = 3,
    retry_delay_seconds: float = 2.0,
    substitute_strategy: str = "best_response_time",
) -> PolicyDocument:
    """Retry n times with a fixed delay, then fail over by response time."""
    document = PolicyDocument("scm-retailer-recovery")
    document.adaptation_policies.append(
        AdaptationPolicy(
            name="retailer-retry-then-failover",
            triggers=("fault.Timeout", "fault.ServiceUnavailable", "fault.ServiceFailure"),
            scope=PolicyScope(service_type="Retailer"),
            actions=(
                RetryAction(max_retries=max_retries, delay_seconds=retry_delay_seconds),
                SubstituteAction(strategy=substitute_strategy),
            ),
            priority=10,
            adaptation_type="correction",
        )
    )
    return _round_trip(document)


def logging_skip_policy_document() -> PolicyDocument:
    """Skip failed Logging calls — the service is not business critical."""
    document = PolicyDocument("scm-logging-skip")
    document.adaptation_policies.append(
        AdaptationPolicy(
            name="logging-skip",
            triggers=("fault.*",),
            scope=PolicyScope(service_type="LoggingFacility"),
            actions=(SkipAction(reason="logging is not business critical"),),
            priority=10,
            adaptation_type="correction",
        )
    )
    return _round_trip(document)


def broadcast_policy_document(max_targets: int = 0) -> PolicyDocument:
    """Concurrent invocation of equivalent Retailers, first response wins."""
    document = PolicyDocument("scm-retailer-broadcast")
    document.adaptation_policies.append(
        AdaptationPolicy(
            name="retailer-concurrent-invocation",
            triggers=("fault.Timeout", "fault.ServiceUnavailable", "fault.ServiceFailure"),
            scope=PolicyScope(service_type="Retailer"),
            actions=(ConcurrentInvokeAction(max_targets=max_targets),),
            priority=10,
            adaptation_type="correction",
        )
    )
    return _round_trip(document)
