"""MASC: policy-driven middleware for self-adaptation of Web services
compositions.

A complete Python reproduction of Erradi, Maheshwari & Tosic,
*Policy-Driven Middleware for Self-adaptation of Web Services
Compositions* (Middleware 2006): the MASC process-customization middleware,
the wsBus messaging intermediary with Virtual End Points, the
WS-Policy4MASC policy language, both evaluation case studies, and a
deterministic discrete-event substrate replacing the original .NET/Java
SOAP stacks.

Package map (see DESIGN.md for the full inventory):

- :mod:`repro.simulation` — discrete-event kernel, seeded randomness
- :mod:`repro.xmlutils`, :mod:`repro.soap`, :mod:`repro.wsdl`,
  :mod:`repro.transport`, :mod:`repro.services` — the Web services substrate
- :mod:`repro.orchestration` — the workflow engine (WF/BPEL role)
- :mod:`repro.policy` — WS-Policy4MASC
- :mod:`repro.core` — MASC monitoring/decision/adaptation + the
  :class:`~repro.core.MASC` facade
- :mod:`repro.wsbus` — the messaging middleware
- :mod:`repro.casestudies` — Stock Trading and WS-I SCM
- :mod:`repro.faultinjection`, :mod:`repro.workload`, :mod:`repro.metrics`,
  :mod:`repro.experiments` — the evaluation harness

Quick start::

    from repro.core import MASC

    masc = MASC(seed=42)
    masc.deploy(my_service)
    masc.load_policies(policy_xml)
    instance = masc.start_process(my_definition)
    masc.run()

or run the paper's experiments: ``python -m repro quickcheck``.
"""

__version__ = "1.0.0"
__all__ = ["__version__"]
