"""The wsBus intermediary.

"wsBus can be deployed either as a gateway to a Process Orchestration
Engine or it can act as a transparent HTTP Proxy. In the first case the
Process Orchestration Engine should be configured to explicitly direct
service calls to the virtual endpoints configured in wsBus and the
la[t]ter routes request messages to the real services."

- :meth:`WsBus.create_vep` + addressing the returned VEP address is the
  gateway deployment;
- :meth:`WsBus.deploy_as_proxy` takes over an existing service address so
  unmodified clients transparently go through the bus.
"""

from __future__ import annotations

from collections import deque

from repro.observability import NULL_METRICS, NULL_TRACER, correlation_id_for
from repro.observability.sampling import TracingService
from repro.observability.slo import SloService
from repro.observability.trace_context import (
    context_of_span,
    stamp_trace_context,
    trace_context_of,
)
from repro.policy import PolicyRepository
from repro.resilience import ResilienceService
from repro.services import Invoker, ServiceRegistry
from repro.simulation import Environment, RandomSource
from repro.soap import SoapFaultError
from repro.traffic import TrafficService
from repro.transport import Network
from repro.wsbus.adaptation import AdaptationManager
from repro.wsbus.monitoring import BusMonitoringService
from repro.wsbus.pipeline import MessagePipeline
from repro.wsbus.qos import QoSMeasurementService
from repro.wsbus.retry import DeadLetterQueue, RetryQueue
from repro.wsbus.selection import SelectionService
from repro.wsbus.vep import VirtualEndpoint
from repro.wsdl import ServiceContract

__all__ = ["WsBus"]


class _MediationGate:
    """FIFO admission gate bounding concurrent mediations on one bus.

    Models the finite processing capacity of a single bus instance: a
    mediation slot is held for the full VEP handling of one request, and
    arrivals beyond ``capacity`` wait in FIFO order. This is the resource
    a federated fleet shards — N buses bring N times the slots.
    """

    __slots__ = ("env", "capacity", "inflight", "waiters", "peak_waiting", "total_admitted")

    def __init__(self, env, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"mediation capacity must be positive: {capacity}")
        self.env = env
        self.capacity = capacity
        self.inflight = 0
        self.waiters: deque = deque()
        self.peak_waiting = 0
        self.total_admitted = 0

    def acquire(self):
        self.total_admitted += 1
        if self.inflight < self.capacity:
            self.inflight += 1
            return
        waiter = self.env.event()
        self.waiters.append(waiter)
        if len(self.waiters) > self.peak_waiting:
            self.peak_waiting = len(self.waiters)
        yield waiter

    def release(self) -> None:
        if self.waiters:
            # The slot passes directly to the oldest waiter; ``inflight``
            # stays constant.
            self.waiters.popleft().succeed(None)
        else:
            self.inflight -= 1

    def stats(self) -> dict:
        return {
            "capacity": self.capacity,
            "inflight": self.inflight,
            "waiting": len(self.waiters),
            "peak_waiting": self.peak_waiting,
            "admitted": self.total_admitted,
        }


class WsBus:
    """The deployable messaging intermediary hosting Virtual End Points."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        repository: PolicyRepository | None = None,
        registry: ServiceRegistry | None = None,
        random_source: RandomSource | None = None,
        process_enforcement=None,
        base_address: str = "http://wsbus",
        member_timeout: float | None = 10.0,
        qos_window: int = 500,
        colocated_with_clients: bool = False,
        tracer=None,
        metrics=None,
        name: str = "wsbus",
        mediation_capacity: int | None = None,
    ) -> None:
        self.env = env
        self.network = network
        self.repository = repository if repository is not None else PolicyRepository()
        self.registry = registry
        #: Display name; distinguishes instances in a federated fleet.
        self.name = name
        self.base_address = base_address
        self.member_timeout = member_timeout
        #: Observability hooks; the no-op defaults cost one branch per site.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.tracer.bind_clock(env)
        #: The paper's client-side deployment: "JMeter stress tool (acting
        #: as the client) and wsBus were deployed at a Windows XP laptop" —
        #: the client→bus hop is loopback, not LAN. When set, VEP endpoints
        #: get a near-zero latency override.
        self.colocated_with_clients = colocated_with_clients

        self.invoker = Invoker(env, network, caller="wsbus", default_timeout=member_timeout)
        self.qos = QoSMeasurementService(window=qos_window)
        self.qos.attach_to_invoker(self.invoker)
        #: Policy-driven protection machinery (circuit breakers, bulkheads,
        #: adaptive timeouts, load shedding); inert until resilience
        #: policies are loaded into the repository.
        self.resilience = ResilienceService(
            env, self.qos, self.repository, tracer=self.tracer, metrics=self.metrics
        )
        self.resilience.attach_to_invoker(self.invoker)
        self.selection = SelectionService(
            self.qos, random_source, metrics=self.metrics, resilience=self.resilience
        )
        self.monitoring = BusMonitoringService(
            env, self.repository, self.qos, tracer=self.tracer, metrics=self.metrics
        )
        self.dead_letters = DeadLetterQueue()
        self.retry_queue = RetryQueue(
            env,
            self._send,
            self.dead_letters,
            tracer=self.tracer,
            metrics=self.metrics,
            random_source=random_source,
        )
        self.resilience.retry_queue = self.retry_queue
        self.adaptation = AdaptationManager(
            env,
            self.repository,
            self.selection,
            self.retry_queue,
            self.dead_letters,
            self._send,
            process_enforcement=process_enforcement,
            tracer=self.tracer,
            metrics=self.metrics,
            resilience=self.resilience,
        )
        self.veps: dict[str, VirtualEndpoint] = {}
        #: Event-triggered (non-message) adaptation needs the live VEP map
        #: so selection-strategy switches can find their subjects.
        self.adaptation.veps = self.veps
        #: SLO engine: inert until ``observability.slo`` policies are
        #: loaded *and* a real metrics registry is attached. Its events
        #: flow both to the Monitoring Service's sinks (cross-layer
        #: decision makers) and to the bus's own Adaptation Manager.
        self.slo = SloService(env, self.repository, metrics=self.metrics, tracer=self.tracer)
        self.slo.add_sink(self.adaptation.handle_event)
        self.slo.add_sink(self.monitoring.raise_event)
        self.slo.ensure_started()
        #: Policy-driven trace sampling: inert until an
        #: ``observability.tracing`` policy is loaded (record-everything
        #: default). The network is handed the tracer so the service-side
        #: legs of mediated calls appear in the same trace.
        self.tracing = TracingService(self.tracer, self.repository)
        if self.tracer.enabled:
            network.tracer = self.tracer
        #: Policy-driven traffic shaping (response cache, idempotency
        #: keys, load leveling); inert until ``traffic.configure``
        #: policies are loaded. Subscribed to the Monitoring Service's
        #: event stream (which SLO events also flow through, above) so
        #: cache invalidation is event-driven.
        self.traffic = TrafficService(
            env, self.repository, tracer=self.tracer, metrics=self.metrics
        )
        self.monitoring.add_sink(self.traffic.handle_event)
        #: Per-message mediation processing cost applied inside each VEP;
        #: calibrated so mediation adds roughly the paper's ~10% RTT.
        from repro.transport import LatencyModel as _LatencyModel

        self.mediation_overhead = _LatencyModel(
            base_seconds=0.0006, per_kb_seconds=0.00004, jitter_fraction=0.1
        )
        self._overhead_rng = (random_source or RandomSource()).stream("wsbus.mediation")
        #: Optional bound on concurrent mediations across this bus's VEPs
        #: (the capacity one instance can sustain). ``None`` keeps the
        #: pre-federation unbounded behavior byte-identical.
        self.mediation_capacity = mediation_capacity
        self._gate = _MediationGate(env, mediation_capacity) if mediation_capacity else None

    # -- outbound sending (shared by VEPs, retry queue, adaptation manager) --------

    def _send(self, envelope, operation: str, target: str, timeout: float | None = None):
        """One delivery attempt to a concrete member service."""
        outbound = envelope
        if envelope.addressing.to != target:
            outbound = envelope.copy()
            outbound.addressing = envelope.addressing.retargeted(target)
        effective = timeout if timeout is not None else self.member_timeout
        if self.resilience.active:
            return self._resilient_send(envelope, outbound, operation, target, effective)
        if self.tracer.enabled or self.metrics.enabled:
            return self._traced_send(envelope, outbound, operation, target, effective)
        return self.invoker.send(outbound, operation=operation, timeout=effective)

    def _resilient_send(self, original, outbound, operation: str, target: str, timeout):
        """One delivery attempt under the resilience machinery.

        Order matters: the breaker fails fast *before* the bulkhead so a
        quarantined endpoint costs neither time nor a concurrency slot;
        the adaptive timeout is derived last, when the request is actually
        about to go out.
        """
        resilience = self.resilience
        rejection = resilience.breaker_rejection(target)
        if rejection is not None:
            raise SoapFaultError(rejection)
        bulkhead = resilience.endpoint_bulkhead(target)
        waiter = None
        if bulkhead is not None:
            try:
                waiter = bulkhead.try_acquire()
            except SoapFaultError:
                if self.metrics.enabled:
                    self.metrics.counter("wsbus.resilience.bulkhead.rejected").inc()
                raise
            if waiter is not None:
                yield waiter
        effective = resilience.timeout_for(target, timeout)
        try:
            if self.tracer.enabled or self.metrics.enabled:
                return (
                    yield from self._traced_send(
                        original, outbound, operation, target, effective
                    )
                )
            return (
                yield from self.invoker.send(
                    outbound, operation=operation, timeout=effective
                )
            )
        finally:
            if bulkhead is not None:
                bulkhead.release()

    def _traced_send(self, original, outbound, operation: str, target: str, timeout):
        """The tracing/metrics wrapper of one delivery attempt.

        The span correlates on the *original* envelope (the re-routed copy
        carries a fresh message ID) so every attempt for one request joins
        the same correlated trace.
        """
        span = None
        if self.tracer.enabled:
            span = self.tracer.start_span(
                "wsbus.send",
                correlation_id=correlation_id_for(original),
                parent=trace_context_of(original),
                attributes={"target": target, "operation": operation},
            )
            if outbound is original:
                outbound = original.copy()
            stamp_trace_context(outbound, context_of_span(span))
        started = self.env.now
        self.metrics.counter("wsbus.send.attempts").inc()
        try:
            response = yield from self.invoker.send(
                outbound, operation=operation, timeout=timeout
            )
        except SoapFaultError as error:
            self.metrics.counter("wsbus.send.failures").inc()
            if self.slo.active:
                self.slo.record(
                    target,
                    self.env.now - started,
                    ok=False,
                    trace_id=span.trace_id if span is not None else None,
                    correlation_id=span.correlation_id if span is not None else None,
                    span_id=span.span_id if span is not None else None,
                )
            if span is not None:
                span.end(status=f"fault:{error.fault.code.value}")
            raise
        self.metrics.histogram("wsbus.send.seconds").observe(self.env.now - started)
        if self.slo.active:
            self.slo.record(
                target,
                self.env.now - started,
                ok=True,
                trace_id=span.trace_id if span is not None else None,
                correlation_id=span.correlation_id if span is not None else None,
                span_id=span.span_id if span is not None else None,
            )
        if span is not None:
            span.end()
        return response

    # -- VEP management --------------------------------------------------------------

    def create_vep(
        self,
        name: str,
        contract: ServiceContract,
        members: list[str] | None = None,
        selection_strategy: str = "round_robin",
        invocation_timeout: float | None = None,
        broadcast: bool = False,
        pipeline: MessagePipeline | None = None,
        address: str | None = None,
        from_registry: bool = False,
    ) -> VirtualEndpoint:
        """Create and deploy a VEP (gateway deployment)."""
        if name in self.veps:
            raise ValueError(f"VEP {name!r} already exists")
        vep = VirtualEndpoint(
            name=name,
            contract=contract,
            env=self.env,
            sender=self._send,
            selection=self.selection,
            monitoring=self.monitoring,
            adaptation=self.adaptation,
            members=members,
            selection_strategy=selection_strategy,
            invocation_timeout=(
                invocation_timeout if invocation_timeout is not None else self.member_timeout
            ),
            broadcast=broadcast,
            registry=self.registry,
            pipeline=pipeline,
            mediation_overhead=self.mediation_overhead,
            overhead_rng=self._overhead_rng,
            tracer=self.tracer,
            metrics=self.metrics,
            resilience=self.resilience,
            traffic=self.traffic,
        )
        if from_registry:
            vep.refresh_members_from_registry()
        for member in vep.members:
            self.slo.register_endpoint(member, contract.service_type)
        vep.address = address or f"{self.base_address}/{name}"
        handler = vep.handle if self._gate is None else self._gated(vep.handle)
        endpoint = self.network.register(vep.address, handler)
        if self.colocated_with_clients:
            from repro.transport import LatencyModel

            endpoint.latency = LatencyModel(
                base_seconds=0.0001, per_kb_seconds=0.00001, jitter_fraction=0.05
            )
        self.veps[name] = vep
        return vep

    def _gated(self, handler):
        """Wrap a VEP handler behind the bus's mediation-capacity gate.

        When tracing is on the whole gated pass runs under a
        ``wsbus.mediate`` span whose self-time (everything not covered by
        the child ``vep.handle`` span) is the admission-queue wait — the
        quantity trace analytics attributes as *queue-wait*.
        """
        gate = self._gate

        def mediate(envelope):
            span = None
            if self.tracer.enabled:
                span = self.tracer.start_span(
                    "wsbus.mediate",
                    correlation_id=correlation_id_for(envelope),
                    parent=trace_context_of(envelope),
                    attributes={"bus": self.name},
                )
                envelope = envelope.copy()
                stamp_trace_context(envelope, context_of_span(span))
            queued_at = self.env.now
            yield from gate.acquire()
            if self.metrics.enabled:
                self.metrics.histogram("wsbus.mediation.queue_seconds").observe(
                    self.env.now - queued_at
                )
            if span is not None:
                span.set_attribute("queue_seconds", round(self.env.now - queued_at, 9))
            try:
                return (yield from handler(envelope))
            finally:
                gate.release()
                if span is not None:
                    span.end()

        return mediate

    def vep(self, name: str) -> VirtualEndpoint | None:
        return self.veps.get(name)

    def remove_vep(self, name: str) -> None:
        vep = self.veps.pop(name, None)
        if vep is not None and vep.address is not None:
            self.network.unregister(vep.address)

    # -- transparent proxy deployment ---------------------------------------------------

    def deploy_as_proxy(
        self,
        name: str,
        contract: ServiceContract,
        address: str,
        extra_members: list[str] | None = None,
        **vep_kwargs,
    ) -> VirtualEndpoint:
        """Interpose a VEP at an existing service address.

        The original endpoint is *relocated* to ``<address>#origin`` —
        the same :class:`~repro.transport.NetworkEndpoint` object, keeping
        its availability/delay state and its identity for fault injectors
        that already hold it — and becomes the VEP's first member; clients
        keep using ``address`` unmodified (the transparent HTTP proxy
        deployment). Fault injection aimed at the proxied address *after*
        deployment resolves through the VEP to the relocated origin (see
        :meth:`~repro.transport.Network.fault_injection_target`), so the
        backend genuinely shares its pre-proxy fate while the proxy keeps
        mediating.
        """
        if self.network.endpoint(address) is None:
            raise ValueError(f"no service to proxy at {address!r}")
        origin_address = f"{address}#origin"
        self.network.relocate(address, origin_address)
        members = [origin_address] + list(extra_members or ())
        vep = self.create_vep(
            name, contract, members=members, address=address, **vep_kwargs
        )
        front = self.network.endpoint(address)
        if front is not None:
            front.fault_target = origin_address
        return vep

    # -- gateway deployment ---------------------------------------------------------------

    def bind_engine(self, engine) -> None:
        """Gateway deployment: route the engine's abstract invokes via VEPs.

        "wsBus can be deployed either as a gateway to a Process
        Orchestration Engine... the Process Orchestration Engine should be
        configured to explicitly direct service calls to the virtual
        endpoints configured in wsBus." After binding, any Invoke that
        names a ``service_type`` for which a VEP exists resolves to that
        VEP's address; other types fall back to the engine's registry.
        """
        previous_binder = engine.binder

        def binder(service_type: str, instance):
            for vep in self.veps.values():
                if vep.contract.service_type == service_type:
                    return vep.address
            if previous_binder is not None:
                return previous_binder(service_type, instance)
            return None

        engine.binder = binder

    # -- dead-letter replay -------------------------------------------------------------

    def replay_dead_letters(self, entries=None, policy=None):
        """Re-enqueue dead letters for redelivery with a fresh budget.

        ``entries`` selects which dead letters to revive (default: all);
        ``policy`` overrides the :class:`~repro.policy.actions.RetryAction`
        governing the fresh attempts. Returns the completion events, one
        per replayed message.
        """
        return self.dead_letters.replay(self.retry_queue, entries=entries, policy=policy)

    # -- reporting ---------------------------------------------------------------------

    def stats_summary(self) -> dict[str, dict]:
        """Per-VEP and queue statistics for experiment reports."""
        summary = {
            "veps": {name: vars(vep.stats) for name, vep in self.veps.items()},
            "retry_queue": {
                "attempted": self.retry_queue.redeliveries_attempted,
                "succeeded": self.retry_queue.redeliveries_succeeded,
                "depth": self.retry_queue.depth,
                "replayed": self.dead_letters.replayed,
            },
            "dead_letters": len(self.dead_letters),
        }
        if self._gate is not None:
            summary["mediation_gate"] = self._gate.stats()
        if self.resilience.active:
            summary["resilience"] = self.resilience.summary()
        if self.traffic.active:
            summary["traffic"] = self.traffic.summary()
        if self.slo.active:
            summary["slo"] = self.slo.summary()
        if self.metrics.enabled:
            summary["metrics"] = self.metrics.snapshot()
        return summary
