"""Unit tests for WSDL document generation and parsing."""

import pytest

from conftest import ECHO_CONTRACT, EchoService
from repro.casestudies.scm import RETAILER_CONTRACT
from repro.policy import PolicyRepository
from repro.soap import FaultCode
from repro.wsbus import WsBus
from repro.wsdl import WsdlError, contract_to_wsdl, wsdl_to_contract


class TestContractWsdlRoundTrip:
    def test_round_trip_preserves_operations(self):
        contract, address = wsdl_to_contract(contract_to_wsdl(RETAILER_CONTRACT))
        assert contract.service_type == "Retailer"
        assert address is None
        assert {op.name for op in contract.operations} == {
            "getCatalog",
            "submitOrder",
            "cancelOrder",
            "collectPayment",
            "refundPayment",
        }

    def test_round_trip_preserves_part_types(self):
        contract, _ = wsdl_to_contract(contract_to_wsdl(RETAILER_CONTRACT))
        submit = contract.operation("submitOrder")
        original = RETAILER_CONTRACT.operation("submitOrder")
        assert submit.input == original.input
        assert submit.output == original.output

    def test_optional_parts_preserved(self):
        from repro.casestudies.scm import LOGGING_CONTRACT

        contract, _ = wsdl_to_contract(contract_to_wsdl(LOGGING_CONTRACT))
        get_events = contract.operation("getEvents")
        (source_part,) = get_events.input.parts
        assert source_part.required is False

    def test_declared_faults_preserved(self):
        contract, _ = wsdl_to_contract(contract_to_wsdl(ECHO_CONTRACT))
        assert FaultCode.SERVER in contract.operation("echo").declared_faults

    def test_endpoint_address_carried(self):
        wsdl = contract_to_wsdl(RETAILER_CONTRACT, endpoint_address="http://wsbus/retailers")
        _, address = wsdl_to_contract(wsdl)
        assert address == "http://wsbus/retailers"

    def test_reparsed_contract_validates_messages(self):
        contract, _ = wsdl_to_contract(contract_to_wsdl(RETAILER_CONTRACT))
        payload = contract.operation("submitOrder").input.build(
            orderId="o", items="TVx1", customerId="c"
        )
        contract.validate_request("submitOrder", payload)  # no raise


class TestWsdlErrors:
    def test_not_wsdl(self):
        with pytest.raises(WsdlError):
            wsdl_to_contract("<other/>")

    def test_missing_port_type(self):
        xml = (
            '<definitions xmlns="http://schemas.xmlsoap.org/wsdl/" name="X" '
            'targetNamespace=""/>'
        )
        with pytest.raises(WsdlError):
            wsdl_to_contract(xml)

    def test_unknown_message_reference(self):
        xml = (
            '<definitions xmlns="http://schemas.xmlsoap.org/wsdl/" name="X" targetNamespace="">'
            '<portType name="XPortType"><operation name="op">'
            '<input message="ghost"/><output message="ghost"/>'
            "</operation></portType></definitions>"
        )
        with pytest.raises(WsdlError):
            wsdl_to_contract(xml)


class TestVepWsdlExposure:
    def test_vep_publishes_abstract_wsdl(self, env, network, container):
        container.deploy(EchoService(env, "echo1", "http://svc/echo"))
        bus = WsBus(env, network, repository=PolicyRepository())
        vep = bus.create_vep("echo", ECHO_CONTRACT, members=["http://svc/echo"])
        wsdl = vep.abstract_wsdl()
        contract, address = wsdl_to_contract(wsdl)
        # The WSDL advertises the VEP, not the member.
        assert address == vep.address
        assert "http://svc/echo" not in wsdl
        assert contract.has_operation("echo")
