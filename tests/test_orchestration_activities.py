"""Unit tests for the activity model and basic process execution."""

import pytest

from conftest import ECHO_CONTRACT, EchoService
from repro.orchestration import (
    Assign,
    CompensationPair,
    DefinitionError,
    Delay,
    Empty,
    Flow,
    IfElse,
    Invoke,
    ProcessDefinition,
    ProcessFault,
    Receive,
    Reply,
    Scope,
    Sequence,
    Terminate,
    Throw,
    TrackingService,
    While,
    WorkflowEngine,
)
from repro.orchestration.instance import InstanceStatus
from repro.soap import FaultCode
from repro.xmlutils import Element


@pytest.fixture
def engine(env, network, container):
    service = EchoService(env, "echo1", "http://test/echo")
    container.deploy(service)
    engine = WorkflowEngine(env, network=network)
    engine.add_service(TrackingService())
    return engine


def run(engine, definition, **kwargs):
    instance = engine.start(definition, **kwargs)
    engine.run_to_completion(instance)
    return instance


class TestBasicActivities:
    def test_assign_literal(self, engine):
        definition = ProcessDefinition(
            "p", Sequence("main", [Assign("a", "x", value=5), Reply("r", variable="x")])
        )
        assert run(engine, definition).result == 5

    def test_assign_expression(self, engine):
        definition = ProcessDefinition(
            "p",
            Sequence(
                "main",
                [Assign("a", "y", expression="x * 2"), Reply("r", variable="y")],
            ),
            initial_variables={"x": 21},
        )
        assert run(engine, definition).result == 42

    def test_assign_callable(self, engine):
        definition = ProcessDefinition(
            "p",
            Sequence(
                "main",
                [Assign("a", "y", expression=lambda v: v["x"] + 1), Reply("r", variable="y")],
            ),
            initial_variables={"x": 1},
        )
        assert run(engine, definition).result == 2

    def test_delay_advances_time(self, engine):
        definition = ProcessDefinition("p", Sequence("main", [Delay("d", 5.0)]))
        instance = run(engine, definition)
        assert instance.status is InstanceStatus.COMPLETED
        assert engine.env.now >= 5.0

    def test_delay_from_expression(self, engine):
        definition = ProcessDefinition(
            "p",
            Sequence("main", [Delay("d", "wait * 2")]),
            initial_variables={"wait": 1.5},
        )
        run(engine, definition)
        assert engine.env.now >= 3.0

    def test_negative_delay_rejected(self):
        with pytest.raises(DefinitionError):
            Delay("d", -1.0)

    def test_empty_is_noop(self, engine):
        definition = ProcessDefinition("p", Sequence("main", [Empty("e")]))
        assert run(engine, definition).status is InstanceStatus.COMPLETED

    def test_receive_binds_input(self, engine):
        definition = ProcessDefinition(
            "p",
            Sequence(
                "main",
                [
                    Receive("rcv", variable="msg"),
                    Reply("r", expression=lambda v: v["msg"].text),
                ],
            ),
        )
        assert run(engine, definition, input=Element("in", text="hello")).result == "hello"

    def test_reply_requires_exactly_one_source(self):
        with pytest.raises(DefinitionError):
            Reply("r")
        with pytest.raises(DefinitionError):
            Reply("r", expression="x", variable="x")


class TestControlFlow:
    def test_if_then(self, engine):
        definition = ProcessDefinition(
            "p",
            Sequence(
                "main",
                [
                    IfElse("if", "x > 5", then=Assign("t", "r", value="big"),
                           orelse=Assign("f", "r", value="small")),
                    Reply("reply", variable="r"),
                ],
            ),
            initial_variables={"x": 10},
        )
        assert run(engine, definition).result == "big"

    def test_if_else(self, engine):
        definition = ProcessDefinition(
            "p",
            Sequence(
                "main",
                [
                    IfElse("if", "x > 5", then=Assign("t", "r", value="big"),
                           orelse=Assign("f", "r", value="small")),
                    Reply("reply", variable="r"),
                ],
            ),
            initial_variables={"x": 1},
        )
        assert run(engine, definition).result == "small"

    def test_if_without_else_skips(self, engine):
        definition = ProcessDefinition(
            "p",
            Sequence("main", [IfElse("if", "False", then=Assign("t", "r", value=1))]),
        )
        instance = run(engine, definition)
        assert "r" not in instance.variables

    def test_while_loop_counts(self, engine):
        definition = ProcessDefinition(
            "p",
            Sequence(
                "main",
                [
                    While(
                        "loop",
                        "i < 5",
                        body=Assign("inc", "i", expression="i + 1"),
                    ),
                    Reply("r", variable="i"),
                ],
            ),
            initial_variables={"i": 0},
        )
        assert run(engine, definition).result == 5

    def test_while_runaway_guard(self, engine):
        definition = ProcessDefinition(
            "p",
            Sequence(
                "main",
                [While("loop", "True", body=Empty("noop"), max_iterations=10)],
            ),
        )
        instance = engine.start(definition)
        with pytest.raises(ProcessFault):
            engine.run_to_completion(instance)
        assert instance.status is InstanceStatus.FAULTED

    def test_flow_runs_branches_concurrently(self, engine):
        definition = ProcessDefinition(
            "p",
            Sequence(
                "main",
                [Flow("flow", [Delay("d1", 5.0), Delay("d2", 5.0), Delay("d3", 5.0)])],
            ),
        )
        run(engine, definition)
        # Concurrent: total time ~5s, not 15s.
        assert engine.env.now == pytest.approx(5.0, abs=0.5)

    def test_flow_fault_aborts_siblings(self, engine):
        definition = ProcessDefinition(
            "p",
            Sequence(
                "main",
                [
                    Flow(
                        "flow",
                        [
                            Throw("bad", FaultCode.SERVER, "branch failed"),
                            Delay("slow", 100.0),
                        ],
                    )
                ],
            ),
        )
        instance = engine.start(definition)
        with pytest.raises(ProcessFault):
            engine.run_to_completion(instance)
        assert engine.env.now < 100.0

    def test_empty_flow_completes(self, engine):
        definition = ProcessDefinition("p", Sequence("main", [Flow("flow", [])]))
        assert run(engine, definition).status is InstanceStatus.COMPLETED


class TestInvoke:
    def test_invoke_with_extraction(self, engine):
        definition = ProcessDefinition(
            "p",
            Sequence(
                "main",
                [
                    Invoke(
                        "call",
                        operation="add",
                        to="http://test/echo",
                        inputs={"a": "$x", "b": 4},
                        extract={"total": "sum"},
                    ),
                    Reply("r", variable="total"),
                ],
            ),
            initial_variables={"x": 3},
        )
        assert run(engine, definition).result == 7

    def test_invoke_output_variable_holds_payload(self, engine):
        definition = ProcessDefinition(
            "p",
            Sequence(
                "main",
                [
                    Invoke(
                        "call",
                        operation="echo",
                        to="http://test/echo",
                        inputs={"text": "hi"},
                        output_variable="resp",
                    ),
                    Reply("r", expression=lambda v: v["resp"].child_text("text")),
                ],
            ),
        )
        assert run(engine, definition).result == "hi@echo1"

    def test_invoke_unbound_variable_faults(self, engine):
        definition = ProcessDefinition(
            "p",
            Sequence(
                "main",
                [Invoke("call", operation="echo", to="http://test/echo", inputs={"text": "$ghost"})],
            ),
        )
        instance = engine.start(definition)
        with pytest.raises(ProcessFault) as excinfo:
            engine.run_to_completion(instance)
        assert excinfo.value.code is FaultCode.CLIENT

    def test_invoke_unavailable_target_faults(self, engine):
        definition = ProcessDefinition(
            "p",
            Sequence("main", [Invoke("call", operation="echo", to="http://ghost", inputs={"text": "x"})]),
        )
        instance = engine.start(definition)
        with pytest.raises(ProcessFault) as excinfo:
            engine.run_to_completion(instance)
        assert excinfo.value.code is FaultCode.SERVICE_UNAVAILABLE

    def test_invoke_requires_target(self):
        with pytest.raises(DefinitionError):
            Invoke("call", operation="echo")

    def test_invoke_input_builder(self, engine):
        definition = ProcessDefinition(
            "p",
            Sequence(
                "main",
                [
                    Invoke(
                        "call",
                        operation="echo",
                        to="http://test/echo",
                        input_builder=lambda v: ECHO_CONTRACT.operation("echo").input.build(
                            text=v["greeting"]
                        ),
                        extract={"echoed": "text"},
                    ),
                    Reply("r", variable="echoed"),
                ],
            ),
            initial_variables={"greeting": "yo"},
        )
        assert run(engine, definition).result == "yo@echo1"


class TestScopesAndFaults:
    def test_throw_caught_by_matching_handler(self, engine):
        definition = ProcessDefinition(
            "p",
            Sequence(
                "main",
                [
                    Scope(
                        "scope",
                        body=Throw("bad", FaultCode.TIMEOUT, "too slow"),
                        fault_handlers={
                            FaultCode.TIMEOUT: Assign("handle", "handled", value="timeout"),
                        },
                    ),
                    Reply("r", variable="handled"),
                ],
            ),
        )
        assert run(engine, definition).result == "timeout"

    def test_catch_all_handler(self, engine):
        definition = ProcessDefinition(
            "p",
            Sequence(
                "main",
                [
                    Scope(
                        "scope",
                        body=Throw("bad", FaultCode.SERVER, "x"),
                        fault_handlers={None: Assign("handle", "handled", value="any")},
                    ),
                    Reply("r", variable="handled"),
                ],
            ),
        )
        assert run(engine, definition).result == "any"

    def test_unhandled_fault_escapes(self, engine):
        definition = ProcessDefinition(
            "p",
            Sequence(
                "main",
                [
                    Scope(
                        "scope",
                        body=Throw("bad", FaultCode.SERVER, "x"),
                        fault_handlers={FaultCode.TIMEOUT: Empty("nope")},
                    )
                ],
            ),
        )
        instance = engine.start(definition)
        with pytest.raises(ProcessFault):
            engine.run_to_completion(instance)

    def test_handler_sees_fault_variable(self, engine):
        definition = ProcessDefinition(
            "p",
            Sequence(
                "main",
                [
                    Scope(
                        "scope",
                        body=Throw("bad", FaultCode.SERVER, "the reason"),
                        fault_handlers={
                            None: Reply("r", expression=lambda v: v["_fault"].reason)
                        },
                    )
                ],
            ),
        )
        assert run(engine, definition).result == "the reason"

    def test_scope_timeout_raises_timeout_fault(self, engine):
        definition = ProcessDefinition(
            "p",
            Sequence(
                "main",
                [
                    Scope(
                        "scope",
                        body=Delay("slow", 100.0),
                        timeout_seconds=2.0,
                        fault_handlers={
                            FaultCode.TIMEOUT: Assign("handle", "handled", value=True)
                        },
                    ),
                    Reply("r", variable="handled"),
                ],
            ),
        )
        instance = run(engine, definition)
        assert instance.result is True
        assert engine.env.now == pytest.approx(2.0, abs=0.1)

    def test_terminate_stops_instance(self, engine):
        definition = ProcessDefinition(
            "p",
            Sequence("main", [Terminate("stop", reason="done early"), Assign("a", "x", value=1)]),
        )
        instance = run(engine, definition)
        assert instance.status is InstanceStatus.TERMINATED
        assert "x" not in instance.variables

    def test_compensation_runs_in_reverse_on_fault(self, engine):
        definition = ProcessDefinition(
            "p",
            Sequence(
                "main",
                [
                    Scope(
                        "outer",
                        compensate_on_fault=True,
                        fault_handlers={None: Empty("absorb")},
                        body=Sequence(
                            "steps",
                            [
                                CompensationPair(
                                    "step1",
                                    Assign("do1", "log", expression=lambda v: v["log"] + ["do1"]),
                                    Assign("undo1", "log", expression=lambda v: v["log"] + ["undo1"]),
                                ),
                                CompensationPair(
                                    "step2",
                                    Assign("do2", "log", expression=lambda v: v["log"] + ["do2"]),
                                    Assign("undo2", "log", expression=lambda v: v["log"] + ["undo2"]),
                                ),
                                Throw("bad", FaultCode.SERVER, "fail after both"),
                            ],
                        ),
                    )
                ],
            ),
            initial_variables={"log": []},
        )
        instance = run(engine, definition)
        assert instance.variables["log"] == ["do1", "do2", "undo2", "undo1"]


class TestDefinitionValidation:
    def test_duplicate_names_rejected(self):
        with pytest.raises(DefinitionError):
            ProcessDefinition("p", Sequence("main", [Empty("x"), Empty("x")]))

    def test_find_activity(self):
        definition = ProcessDefinition("p", Sequence("main", [Empty("x")]))
        assert definition.find("x").name == "x"
        assert definition.find("ghost") is None

    def test_copy_tree_is_independent(self):
        definition = ProcessDefinition("p", Sequence("main", [Empty("x")]))
        tree = definition.copy_tree()
        assert tree is not definition.root
        assert [a.name for a in tree.iter_tree()] == ["main", "x"]

    def test_empty_activity_name_rejected(self):
        with pytest.raises(DefinitionError):
            Empty("")


class TestInvokeExpressionInputs:
    def test_expression_input_evaluated_against_variables(self, engine):
        from repro.orchestration import Expression

        definition = ProcessDefinition(
            "p",
            Sequence(
                "main",
                [
                    Invoke(
                        "call",
                        operation="add",
                        to="http://test/echo",
                        inputs={"a": Expression("base * 2"), "b": 1},
                        extract={"total": "sum"},
                    ),
                    Reply("r", variable="total"),
                ],
            ),
            initial_variables={"base": 10},
        )
        assert run(engine, definition).result == 21

    def test_callable_input(self, engine):
        definition = ProcessDefinition(
            "p",
            Sequence(
                "main",
                [
                    Invoke(
                        "call",
                        operation="add",
                        to="http://test/echo",
                        inputs={"a": lambda v: v["base"] + 5, "b": 0},
                        extract={"total": "sum"},
                    ),
                    Reply("r", variable="total"),
                ],
            ),
            initial_variables={"base": 1},
        )
        assert run(engine, definition).result == 6
