"""Tests for the Stock Trading case study: services and the four
customization experiments of Section 2.2."""

import pytest

from repro.casestudies.stocktrading import (
    CREDIT_RATING_CONTRACT,
    CURRENCY_CONVERSION_CONTRACT,
    FINANCIAL_ANALYSIS_CONTRACT,
    MARKET_COMPLIANCE_CONTRACT,
    PEST_ANALYSIS_CONTRACT,
    STOCK_MARKET_CONTRACT,
    STOCK_NOTIFICATION_CONTRACT,
    TRADING_ANCHORS,
    build_trading_deployment,
    compliance_removal_policy_document,
    credit_rating_policy_document,
    currency_conversion_policy_document,
    pest_analysis_policy_document,
)
from repro.orchestration.instance import InstanceStatus
from repro.policy import serialize_policy_document, validate_document
from repro.services import Invoker
from repro.soap import SoapFaultError


@pytest.fixture
def trading():
    return build_trading_deployment(seed=3)


def invoke(deployment, address, operation, payload, timeout=15.0):
    invoker = Invoker(deployment.env, deployment.masc.network, caller="test")

    def client():
        response = yield from invoker.invoke(address, operation, payload, timeout=timeout)
        return response.body

    return deployment.env.run(deployment.env.process(client()))


def load_all_policies(deployment):
    for document in (
        currency_conversion_policy_document(),
        pest_analysis_policy_document(),
        credit_rating_policy_document(),
        compliance_removal_policy_document(),
    ):
        deployment.masc.load_policies(serialize_policy_document(document))


class TestTradingServices:
    def test_quote_lookup(self, trading):
        body = invoke(
            trading,
            trading.notification.address,
            "getQuote",
            STOCK_NOTIFICATION_CONTRACT.operation("getQuote").input.build(symbol="ACME"),
        )
        assert float(body.child_text("price")) > 0

    def test_unknown_symbol_faults(self, trading):
        with pytest.raises(SoapFaultError):
            invoke(
                trading,
                trading.notification.address,
                "getQuote",
                STOCK_NOTIFICATION_CONTRACT.operation("getQuote").input.build(symbol="NOPE"),
            )

    def test_notifications_update_analysis(self, trading):
        trading.env.run(until=120.0)  # several 30s notification cycles
        assert trading.notification.notifications_sent > 0
        analysis = trading.analysis_services[0]
        assert any(len(history) > 1 for history in analysis.history.values())

    def test_recommendation_returns_listed_symbol(self, trading):
        trading.env.run(until=120.0)
        body = invoke(
            trading,
            trading.analysis_services[0].address,
            "getRecommendation",
            FINANCIAL_ANALYSIS_CONTRACT.operation("getRecommendation").input.build(
                orderType="invest", amount=1000.0, country="AU"
            ),
        )
        assert body.child_text("symbol") in trading.analysis_services[0].quotes

    def test_market_queues_then_matches(self, trading):
        buy = STOCK_MARKET_CONTRACT.operation("placeTrade").input.build(
            orderId="o-b", symbol="ACME", side="buy", quantity=10, limitPrice=50.0
        )
        body = invoke(trading, trading.market.address, "placeTrade", buy)
        assert body.child_text("status") == "queued"
        sell = STOCK_MARKET_CONTRACT.operation("placeTrade").input.build(
            orderId="o-s", symbol="ACME", side="sell", quantity=10, limitPrice=40.0
        )
        body = invoke(trading, trading.market.address, "placeTrade", sell)
        assert body.child_text("status") == "matched"
        assert float(body.child_text("executedPrice")) == pytest.approx(45.0)
        # Parallel settlement reached both back-end services.
        assert trading.registry_service.transfers
        assert trading.payment.settled_amounts

    def test_currency_conversion_rates(self, trading):
        body = invoke(
            trading,
            trading.conversion_services[0].address,
            "convert",
            CURRENCY_CONVERSION_CONTRACT.operation("convert").input.build(
                amount=100.0, fromCurrency="USD", toCurrency="AUD"
            ),
        )
        assert float(body.child_text("converted")) == pytest.approx(152.0)

    def test_unsupported_currency_faults(self, trading):
        with pytest.raises(SoapFaultError):
            invoke(
                trading,
                trading.conversion_services[0].address,
                "convert",
                CURRENCY_CONVERSION_CONTRACT.operation("convert").input.build(
                    amount=1.0, fromCurrency="DOGE", toCurrency="AUD"
                ),
            )

    def test_pest_risk_ranking(self, trading):
        def risk(country):
            body = invoke(
                trading,
                trading.pest_services[0].address,
                "assess",
                PEST_ANALYSIS_CONTRACT.operation("assess").input.build(country=country),
            )
            return float(body.child_text("overallRisk"))

        assert risk("RU") > risk("AU")

    def test_credit_rating_deterministic(self, trading):
        def rating(investor):
            body = invoke(
                trading,
                trading.credit_services[0].address,
                "check",
                CREDIT_RATING_CONTRACT.operation("check").input.build(
                    investorId=investor, amount=1000.0
                ),
            )
            return body.child_text("rating")

        assert rating("alice") == rating("alice")

    def test_compliance_threshold(self, trading):
        body = invoke(
            trading,
            trading.compliance.address,
            "verify",
            MARKET_COMPLIANCE_CONTRACT.operation("verify").input.build(
                orderId="o", amount=99_000_000.0
            ),
        )
        assert body.child_text("compliant") == "false"


class TestBaseProcess:
    def test_national_trade_runs_unmodified(self, trading):
        instance = trading.run_order(amount=5000.0, country="AU")
        assert instance.status is InstanceStatus.COMPLETED
        assert instance.result in ("queued", "matched")
        assert "market-compliance" in instance.executed_activities
        assert "convert-currency" not in instance.executed_activities

    def test_policy_documents_validate_against_process(self, trading):
        definition = trading.engine.definitions["trading-process"]
        known_types = set(trading.masc.registry.service_types)
        for document in (
            currency_conversion_policy_document(),
            pest_analysis_policy_document(),
            credit_rating_policy_document(),
            compliance_removal_policy_document(),
        ):
            issues = validate_document(
                document, process=definition, known_service_types=known_types
            )
            assert not [issue for issue in issues if issue.severity == "error"]


class TestCustomizationExperiments:
    """The four experiments of Section 2.2."""

    def test_experiment1_currency_conversion_added(self, trading):
        load_all_policies(trading)
        instance = trading.run_order(amount=20_000.0, country="US", currency="USD")
        assert instance.status is InstanceStatus.COMPLETED
        assert "convert-currency" in instance.executed_activities
        assert instance.variables["local_amount"] == pytest.approx(30_400.0)
        assert instance.variables["fx_rate"] == pytest.approx(1.52)

    def test_experiment2_pest_analysis_by_country(self, trading):
        load_all_policies(trading)
        standard = trading.run_order(amount=1000.0, country="US", currency="USD")
        assert "pest-analysis" in standard.executed_activities
        # High-risk country routed to the premium service (pest1).
        emerging = trading.run_order(amount=1000.0, country="BR", currency="USD")
        assert "pest-analysis" in emerging.executed_activities
        applied = [
            report.policy_name for report in trading.masc.adaptation.reports
        ]
        assert "add-pest-analysis-standard" in applied
        assert "add-pest-analysis-high-risk" in applied

    def test_experiment3_credit_rating_for_large_or_corporate(self, trading):
        load_all_policies(trading)
        large = trading.run_order(amount=250_000.0, profile="personal")
        assert "credit-rating" in large.executed_activities
        assert large.variables["credit_approved"] in (True, False)
        corporate = trading.run_order(amount=500.0, profile="corporate")
        assert "credit-rating" in corporate.executed_activities
        small_personal = trading.run_order(amount=500.0, profile="personal")
        assert "credit-rating" not in small_personal.executed_activities

    def test_experiment4_compliance_removed_below_threshold(self, trading):
        load_all_policies(trading)
        checks_before = trading.compliance.checks_performed
        small = trading.run_order(amount=500.0)
        assert "market-compliance" not in small.executed_activities
        assert trading.compliance.checks_performed == checks_before
        large = trading.run_order(amount=50_000.0)
        assert "market-compliance" in large.executed_activities

    def test_no_changes_to_process_definition(self, trading):
        """The headline claim: the registered definition is untouched."""
        load_all_policies(trading)
        definition = trading.engine.definitions["trading-process"]
        names_before = definition.activity_names()
        trading.run_order(amount=20_000.0, country="US", currency="USD")
        assert definition.activity_names() == names_before

    def test_customizations_are_per_instance(self, trading):
        load_all_policies(trading)
        international = trading.run_order(amount=20_000.0, country="US", currency="USD")
        national = trading.run_order(amount=20_000.0, country="AU")
        assert "convert-currency" in international.executed_activities
        assert "convert-currency" not in national.executed_activities

    def test_hot_reload_changes_behavior_without_restart(self, trading):
        load_all_policies(trading)
        first = trading.run_order(amount=500.0)
        assert "market-compliance" not in first.executed_activities
        # Reload the same document name with a lower threshold: behaviour
        # changes on the very next instance, no component restarted.
        trading.masc.load_policies(
            serialize_policy_document(compliance_removal_policy_document(amount_threshold=100.0))
        )
        second = trading.run_order(amount=500.0)
        assert "market-compliance" in second.executed_activities

    def test_business_value_ledger_accumulates(self, trading):
        load_all_policies(trading)
        trading.run_order(amount=20_000.0, country="US", currency="USD")
        totals = trading.masc.repository.business_totals()
        # currency conversion (+3.5) and standard PEST (-4.0)
        assert totals["AUD"] == pytest.approx(-0.5)

    def test_adaptation_reports_marked_dynamic(self, trading):
        load_all_policies(trading)
        trading.run_order(amount=20_000.0, country="US", currency="USD")
        conversion_reports = [
            report
            for report in trading.masc.adaptation.reports
            if report.policy_name == "add-currency-conversion"
        ]
        assert conversion_reports and conversion_reports[0].dynamic
        trading.run_order(amount=500.0)
        removal_reports = [
            report
            for report in trading.masc.adaptation.reports
            if report.policy_name == "remove-compliance-small-trades"
        ]
        assert removal_reports and not removal_reports[0].dynamic
