"""Preventive and optimizing adaptation — the paper's 'future work', built.

Demonstrates the two adaptation types the paper names as ongoing work
(Section 5):

- **prevention**: a QoS trend detector watches response times through the
  bus; when a service *starts degrading* (no fault yet!), a preventive
  policy quarantines it and traffic shifts to a healthy member;
- **optimization**: a utility/goal policy makes the decision maker choose
  between competing recovery policies by estimated business value instead
  of fixed priority.

Run:  python examples/preventive_adaptation.py
"""

from repro.core import (
    MASCEvent,
    MASCPolicyDecisionMaker,
    QoSTrendDetector,
    UtilityDrivenDecisionMaker,
    estimate_utility,
)
from repro.policy import (
    AdaptationPolicy,
    BusinessValue,
    ConcurrentInvokeAction,
    GoalPolicy,
    PolicyDocument,
    PolicyRepository,
    QuarantineAction,
    RetryAction,
)
from repro.services import Invoker, ServiceContainer, SimulatedService
from repro.simulation import Environment, RandomSource
from repro.transport import Network
from repro.wsbus import BusEnforcementPoint, WsBus
from repro.wsdl import MessageSchema, Operation, PartSchema, ServiceContract

QUOTE_CONTRACT = ServiceContract(
    service_type="QuoteService",
    operations=(
        Operation(
            name="quote",
            input=MessageSchema("quoteRequest", (PartSchema("symbol"),)),
            output=MessageSchema(
                "quoteResponse", (PartSchema("price"), PartSchema("source"))
            ),
        ),
    ),
)


class QuoteService(SimulatedService):
    contract = QUOTE_CONTRACT

    def op_quote(self, payload, ctx):
        yield ctx.work()
        return QUOTE_CONTRACT.operation("quote").output.build(
            price="42.00", source=self.name
        )


def preventive_demo() -> None:
    print("== Prevention: quarantine a degrading service before it fails ==\n")
    env = Environment()
    network = Network(env, RandomSource(1))
    container = ServiceContainer(env, network, RandomSource(1))
    container.deploy(QuoteService(env, "quotes-primary", "http://q/primary"))
    container.deploy(QuoteService(env, "quotes-backup", "http://q/backup"))

    repository = PolicyRepository()
    document = PolicyDocument("prevention")
    document.adaptation_policies.append(
        AdaptationPolicy(
            name="quarantine-degrading-endpoint",
            triggers=("qos.trend.degrading",),
            adaptation_type="prevention",
            actions=(QuarantineAction(duration_seconds=120.0),),
        )
    )
    repository.load(document)

    bus = WsBus(env, network, repository=repository, member_timeout=30.0)
    vep = bus.create_vep(
        "quotes", QUOTE_CONTRACT,
        members=["http://q/primary", "http://q/backup"],
        selection_strategy="primary",
    )
    decision_maker = MASCPolicyDecisionMaker(env, repository)
    decision_maker.register_enforcement_point(BusEnforcementPoint(bus))
    detector = QoSTrendDetector(env, slope_threshold=0.005, min_samples=8)
    detector.add_sink(decision_maker.handle)
    detector.attach_to_invoker(bus.invoker)

    primary = network.endpoint("http://q/primary")
    client = Invoker(env, network, caller="trader")

    def drive():
        for index in range(25):
            primary.added_delay_seconds = 0.012 * index  # memory leak brewing...
            payload = QUOTE_CONTRACT.operation("quote").input.build(symbol="ACME")
            response = yield from client.invoke(vep.address, "quote", payload, timeout=30.0)
            source = response.body.child_text("source")
            if index % 6 == 0 or (detector.reports and index < 20):
                print(f"  t={env.now:6.2f}s request {index:2d} served by {source}")
            yield env.timeout(1.0)

    env.run(env.process(drive()))
    report = detector.reports[0]
    print(
        f"\n  trend detected at t={report.time:.1f}s "
        f"(RTT slope {report.slope * 1000:.2f} ms/s over {report.samples} samples)"
    )
    print(f"  faults seen by clients: {vep.stats.failures} (prevention acted first)")


def optimizing_demo() -> None:
    print("\n== Optimization: utility/goal policy picks the best recovery ==\n")
    env = Environment()
    repository = PolicyRepository()
    document = PolicyDocument("competing-recoveries")
    patient = AdaptationPolicy(
        name="patient-retry",
        triggers=("fault.Timeout",),
        actions=(RetryAction(max_retries=5, delay_seconds=4.0),),
        business_value=BusinessValue(0.0, "AUD"),
        priority=1,  # classic mode would pick this first
    )
    aggressive = AdaptationPolicy(
        name="broadcast-everything",
        triggers=("fault.Timeout",),
        actions=(ConcurrentInvokeAction(),),
        business_value=BusinessValue(1.0, "AUD", "faster answer keeps the customer"),
        priority=2,
    )
    document.adaptation_policies.extend([patient, aggressive])
    goal = GoalPolicy(
        name="maximize-trading-value",
        goal="maximize_business_value",
        time_value_per_second=0.5,      # latency is expensive on a trading desk
        bandwidth_cost_per_message=0.05,
    )
    document.goal_policies.append(goal)
    repository.load(document)

    for policy in (patient, aggressive):
        estimate = estimate_utility(policy, goal, member_count=4)
        print(
            f"  {policy.name:22s} value {estimate.business_value:+.2f} "
            f"- cost {estimate.estimated_cost:5.2f} = utility {estimate.utility:+.2f}"
        )

    maker = UtilityDrivenDecisionMaker(env, repository)

    class PrintingPoint:
        layer = "messaging"

        def enact(self, action, policy, event):
            print(f"\n  decision maker enacted: {policy.name} -> {action.describe()}")
            return True

    maker.register_enforcement_point(PrintingPoint())
    maker.handle(MASCEvent(name="fault.Timeout", time=0.0))
    print(f"  rationale: {maker.decisions[-1].detail}")


if __name__ == "__main__":
    preventive_demo()
    optimizing_demo()
