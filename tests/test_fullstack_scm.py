"""Full-stack integration: SCM process → wsBus gateway → services, with
fault injection — the complete deployment of the paper's Figure 3/4."""

import pytest

from repro.casestudies.scm import (
    LOGGING_CONTRACT,
    RETAILER_CONTRACT,
    build_scm_deployment,
    logging_skip_policy_document,
    retailer_recovery_policy_document,
)
from repro.orchestration import (
    Invoke,
    ProcessDefinition,
    Reply,
    Sequence,
    TrackingService,
    WorkflowEngine,
)
from repro.orchestration.instance import InstanceStatus
from repro.policy import PolicyRepository
from repro.wsbus import WsBus


@pytest.fixture
def stack():
    deployment = build_scm_deployment(seed=41, log_events=False)
    repository = PolicyRepository()
    repository.load(retailer_recovery_policy_document())
    repository.load(logging_skip_policy_document())
    bus = WsBus(
        deployment.env,
        deployment.network,
        repository=repository,
        registry=deployment.registry,
        member_timeout=5.0,
    )
    bus.create_vep(
        "retailers",
        RETAILER_CONTRACT,
        members=deployment.retailer_addresses,
        selection_strategy="round_robin",
    )
    bus.create_vep(
        "logging", LOGGING_CONTRACT, members=[deployment.logging.address]
    )
    engine = WorkflowEngine(
        deployment.env, network=deployment.network, registry=deployment.registry
    )
    engine.add_service(TrackingService())
    bus.bind_engine(engine)
    return deployment, bus, engine


def purchase_process():
    """An SCM purchase composition using *abstract* service types only."""
    return ProcessDefinition(
        "scm-via-bus",
        Sequence(
            "main",
            [
                Invoke(
                    "get-catalog",
                    operation="getCatalog",
                    service_type="Retailer",
                    extract={"catalog": "catalog"},
                    timeout_seconds=60.0,
                ),
                Invoke(
                    "submit-order",
                    operation="submitOrder",
                    service_type="Retailer",
                    inputs={"orderId": "$order_id", "items": "TVx1", "customerId": "c-1"},
                    extract={"order_status": "status"},
                    timeout_seconds=60.0,
                ),
                Invoke(
                    "log-purchase",
                    operation="logEvent",
                    service_type="LoggingFacility",
                    inputs={"source": "process", "event": "purchase-complete"},
                    extract={"logged": "logged"},
                    timeout_seconds=60.0,
                ),
                Reply("result", variable="order_status"),
            ],
        ),
        initial_variables={"order_id": "order-77"},
    )


class TestGatewayDeployment:
    def test_engine_binds_abstract_types_to_veps(self, stack):
        deployment, bus, engine = stack
        definition = purchase_process()
        instance = engine.start(definition)
        assert engine.run_to_completion(instance) == "fulfilled"
        # Requests actually went through the bus, not point-to-point.
        assert bus.veps["retailers"].stats.requests == 2
        assert bus.veps["logging"].stats.requests == 1

    def test_binder_falls_back_to_registry(self, stack):
        deployment, bus, engine = stack
        definition = ProcessDefinition(
            "config-query",
            Sequence(
                "main",
                [
                    Invoke(
                        "list-retailers",
                        operation="getImplementations",
                        service_type="Configuration",  # no VEP for this type
                        inputs={"serviceType": "Retailer"},
                        extract={"count": "count"},
                    ),
                    Reply("r", variable="count"),
                ],
            ),
        )
        instance = engine.start(definition)
        assert engine.run_to_completion(instance) == 4

    def test_process_survives_retailer_outages(self, stack):
        deployment, bus, engine = stack
        # Kill three of the four retailers; recovery policies route around.
        for name in ("A", "B", "D"):
            deployment.network.endpoint(deployment.retailers[name].address).available = False
        instance = engine.start(purchase_process())
        assert engine.run_to_completion(instance) == "fulfilled"
        assert instance.status is InstanceStatus.COMPLETED

    def test_process_survives_logging_outage_via_skip(self, stack):
        deployment, bus, engine = stack
        deployment.network.endpoint(deployment.logging.address).available = False
        instance = engine.start(purchase_process())
        assert engine.run_to_completion(instance) == "fulfilled"
        # The skip policy answered the logging call synthetically.
        outcomes = [o for o in bus.adaptation.outcomes if o.operation == "logEvent"]
        assert outcomes and outcomes[0].final_target == "skipped"

    def test_many_concurrent_instances(self, stack):
        deployment, bus, engine = stack
        deployment.inject_table1_mix()
        definition = purchase_process()
        engine.register_definition(definition)
        instances = [
            engine.start("scm-via-bus", variables={"order_id": f"order-{index}"})
            for index in range(20)
        ]
        gate = deployment.env.all_of([instance.process for instance in instances])
        deployment.env.run(gate)
        statuses = {instance.status for instance in instances}
        assert statuses == {InstanceStatus.COMPLETED}
        assert all(instance.result == "fulfilled" for instance in instances)
