"""Integration-style tests for wsBus: VEPs, recovery, selection, queues."""

import pytest

from conftest import ECHO_CONTRACT, EchoService, SlowEchoService, run_process
from repro.policy import (
    AdaptationPolicy,
    ConcurrentInvokeAction,
    MonitoringPolicy,
    PolicyDocument,
    PolicyRepository,
    PolicyScope,
    QoSThreshold,
    RetryAction,
    SkipAction,
    SubstituteAction,
)
from repro.services import Invoker
from repro.soap import FaultCode, SoapFaultError
from repro.wsbus import WsBus
from repro.wsbus.selection import ContentRule
from repro.wsbus.pipeline import ApplicabilityRule


@pytest.fixture
def world(env, network, container):
    """Three echo services + a policy repository + a bus."""
    for name in ("a", "b", "c"):
        container.deploy(EchoService(env, f"echo-{name}", f"http://svc/{name}"))
    repository = PolicyRepository()
    bus = WsBus(env, network, repository=repository, member_timeout=5.0)
    return bus, repository


def call(env, network, address, text="hi", timeout=60.0):
    invoker = Invoker(env, network, caller="client")

    def client():
        payload = ECHO_CONTRACT.operation("echo").input.build(text=text)
        response = yield from invoker.invoke(address, "echo", payload, timeout=timeout)
        return response.body.child_text("text")

    return run_process(env, client())


def load_recovery(repository, actions, triggers=("fault.*",), name="recovery"):
    document = PolicyDocument(name)
    document.adaptation_policies.append(
        AdaptationPolicy(name=name, triggers=triggers, actions=actions, priority=10)
    )
    repository.load(document)


class TestVepBasics:
    def test_round_robin_rotation(self, env, network, world):
        bus, _ = world
        vep = bus.create_vep(
            "echo", ECHO_CONTRACT, members=[f"http://svc/{n}" for n in "abc"],
            selection_strategy="round_robin",
        )
        answers = [call(env, network, vep.address) for _ in range(3)]
        assert answers == ["hi@echo-a", "hi@echo-b", "hi@echo-c"]

    def test_primary_strategy_sticks(self, env, network, world):
        bus, _ = world
        vep = bus.create_vep(
            "echo", ECHO_CONTRACT, members=["http://svc/b", "http://svc/a"],
            selection_strategy="primary",
        )
        assert {call(env, network, vep.address) for _ in range(2)} == {"hi@echo-b"}

    def test_no_members_faults(self, env, network, world):
        bus, _ = world
        vep = bus.create_vep("empty", ECHO_CONTRACT, members=[])
        with pytest.raises(SoapFaultError) as excinfo:
            call(env, network, vep.address)
        assert excinfo.value.fault.code is FaultCode.SERVICE_UNAVAILABLE

    def test_unmappable_operation_faults(self, env, network, world):
        bus, _ = world
        vep = bus.create_vep("echo", ECHO_CONTRACT, members=["http://svc/a"])
        invoker = Invoker(env, network)

        def client():
            from repro.xmlutils import Element

            with pytest.raises(SoapFaultError) as excinfo:
                yield from invoker.invoke(vep.address, "mystery", Element("mystery"))
            return excinfo.value.fault.code

        assert run_process(env, client()) is FaultCode.CLIENT

    def test_duplicate_vep_name_rejected(self, env, network, world):
        bus, _ = world
        bus.create_vep("echo", ECHO_CONTRACT, members=["http://svc/a"])
        with pytest.raises(ValueError):
            bus.create_vep("echo", ECHO_CONTRACT, members=["http://svc/b"])

    def test_remove_vep_unregisters(self, env, network, world):
        bus, _ = world
        vep = bus.create_vep("echo", ECHO_CONTRACT, members=["http://svc/a"])
        bus.remove_vep("echo")
        assert network.endpoint(vep.address) is None

    def test_refresh_members_from_registry(self, env, network, world):
        from repro.services import ServiceRegistry

        bus, _ = world
        registry = ServiceRegistry()
        registry.register("Echo", "a", "http://svc/a")
        registry.register("Echo", "b", "http://svc/b")
        bus.registry = registry
        vep = bus.create_vep("echo", ECHO_CONTRACT, members=[], from_registry=False)
        vep.registry = registry
        vep.refresh_members_from_registry()
        assert set(vep.members) == {"http://svc/a", "http://svc/b"}


class TestRecovery:
    def test_retry_recovers_after_endpoint_returns(self, env, network, world):
        bus, repository = world
        load_recovery(repository, (RetryAction(max_retries=5, delay_seconds=1.0),))
        vep = bus.create_vep("echo", ECHO_CONTRACT, members=["http://svc/a"])
        endpoint = network.endpoint("http://svc/a")
        endpoint.available = False

        def repairer():
            yield env.timeout(2.5)
            endpoint.available = True

        env.process(repairer())
        assert call(env, network, vep.address) == "hi@echo-a"
        assert bus.retry_queue.redeliveries_succeeded >= 1
        assert vep.stats.recovered == 1

    def test_substitute_fails_over(self, env, network, world):
        bus, repository = world
        load_recovery(
            repository,
            (RetryAction(max_retries=1, delay_seconds=0.5), SubstituteAction("round_robin")),
        )
        vep = bus.create_vep(
            "echo", ECHO_CONTRACT, members=["http://svc/a", "http://svc/b"],
            selection_strategy="primary",
        )
        network.endpoint("http://svc/a").available = False
        assert call(env, network, vep.address) == "hi@echo-b"

    def test_backup_substitute(self, env, network, world):
        bus, repository = world
        load_recovery(
            repository,
            (SubstituteAction(strategy="backup", backup_address="http://svc/c"),),
        )
        vep = bus.create_vep("echo", ECHO_CONTRACT, members=["http://svc/a"])
        network.endpoint("http://svc/a").available = False
        assert call(env, network, vep.address) == "hi@echo-c"

    def test_skip_returns_synthetic_reply(self, env, network, world):
        bus, repository = world
        load_recovery(repository, (SkipAction(reason="not critical"),))
        vep = bus.create_vep("echo", ECHO_CONTRACT, members=["http://svc/a"])
        network.endpoint("http://svc/a").available = False
        invoker = Invoker(env, network)

        def client():
            payload = ECHO_CONTRACT.operation("echo").input.build(text="x")
            response = yield from invoker.invoke(vep.address, "echo", payload)
            return response.body.child_text("skipped")

        assert run_process(env, client()) == "true"

    def test_concurrent_invoke_action_recovers(self, env, network, world):
        bus, repository = world
        load_recovery(repository, (ConcurrentInvokeAction(),))
        vep = bus.create_vep(
            "echo", ECHO_CONTRACT,
            members=["http://svc/a", "http://svc/b", "http://svc/c"],
            selection_strategy="primary",
        )
        network.endpoint("http://svc/a").available = False
        answer = call(env, network, vep.address)
        assert answer in ("hi@echo-b", "hi@echo-c")

    def test_no_policy_dead_letters(self, env, network, world):
        bus, repository = world  # no policies loaded
        vep = bus.create_vep("echo", ECHO_CONTRACT, members=["http://svc/a"])
        network.endpoint("http://svc/a").available = False
        with pytest.raises(SoapFaultError):
            call(env, network, vep.address)
        assert len(bus.dead_letters) == 1
        assert vep.stats.failures == 1

    def test_exhausted_recovery_dead_letters_once(self, env, network, world):
        bus, repository = world
        load_recovery(repository, (RetryAction(max_retries=2, delay_seconds=0.1),))
        vep = bus.create_vep("echo", ECHO_CONTRACT, members=["http://svc/a"])
        network.endpoint("http://svc/a").available = False
        with pytest.raises(SoapFaultError):
            call(env, network, vep.address)
        assert len(bus.dead_letters) == 1
        assert bus.retry_queue.redeliveries_attempted == 2

    def test_policy_condition_gates_recovery(self, env, network, world):
        bus, repository = world
        document = PolicyDocument("gated")
        document.adaptation_policies.append(
            AdaptationPolicy(
                name="only-timeouts",
                triggers=("fault.*",),
                condition="fault_code == 'Timeout'",
                actions=(SubstituteAction("round_robin"),),
            )
        )
        repository.load(document)
        vep = bus.create_vep(
            "echo", ECHO_CONTRACT, members=["http://svc/a", "http://svc/b"],
            selection_strategy="primary",
        )
        network.endpoint("http://svc/a").available = False
        # ServiceUnavailable does not satisfy the condition: no recovery.
        with pytest.raises(SoapFaultError):
            call(env, network, vep.address)

    def test_recovery_outcomes_recorded(self, env, network, world):
        bus, repository = world
        load_recovery(repository, (SubstituteAction("round_robin"),))
        vep = bus.create_vep(
            "echo", ECHO_CONTRACT, members=["http://svc/a", "http://svc/b"],
            selection_strategy="primary",
        )
        network.endpoint("http://svc/a").available = False
        call(env, network, vep.address)
        (outcome,) = bus.adaptation.outcomes
        assert outcome.recovered
        assert outcome.fault_code == "ServiceUnavailable"
        assert outcome.final_target == "http://svc/b"


class TestBroadcastVep:
    def test_first_response_wins(self, env, network, container, world):
        bus, _ = world
        container.deploy(SlowEchoService(env, "slowpoke", "http://svc/slow", delay=30))
        vep = bus.create_vep(
            "echo", ECHO_CONTRACT,
            members=["http://svc/slow", "http://svc/a"],
            broadcast=True,
        )
        assert call(env, network, vep.address) == "hi@echo-a"
        assert env.now < 10

    def test_broadcast_survives_partial_failure(self, env, network, world):
        bus, _ = world
        vep = bus.create_vep(
            "echo", ECHO_CONTRACT,
            members=["http://svc/a", "http://svc/b"],
            broadcast=True,
        )
        network.endpoint("http://svc/a").available = False
        assert call(env, network, vep.address) == "hi@echo-b"

    def test_broadcast_total_failure(self, env, network, world):
        bus, _ = world
        vep = bus.create_vep(
            "echo", ECHO_CONTRACT, members=["http://svc/a", "http://svc/b"], broadcast=True
        )
        network.endpoint("http://svc/a").available = False
        network.endpoint("http://svc/b").available = False
        with pytest.raises(SoapFaultError):
            call(env, network, vep.address)


class TestSelectionStrategies:
    def test_best_response_time_uses_history(self, env, network, container, world):
        bus, _ = world
        container.deploy(SlowEchoService(env, "tortoise", "http://svc/slow", delay=2.0))
        vep = bus.create_vep(
            "echo", ECHO_CONTRACT,
            members=["http://svc/slow", "http://svc/a"],
            selection_strategy="round_robin",
        )
        # Build QoS history across both members.
        for _ in range(4):
            call(env, network, vep.address)
        vep.selection_strategy = "best_response_time"
        assert call(env, network, vep.address) == "hi@echo-a"

    def test_content_based_routing(self, env, network, world):
        bus, _ = world
        bus.selection.add_content_rule(
            "echo",
            ContentRule(ApplicabilityRule(xpath="text[. = 'route-me']"), "http://svc/c"),
        )
        vep = bus.create_vep(
            "echo", ECHO_CONTRACT,
            members=["http://svc/a", "http://svc/b", "http://svc/c"],
            selection_strategy="content",
        )
        assert call(env, network, vep.address, text="route-me") == "route-me@echo-c"
        assert call(env, network, vep.address, text="other") == "other@echo-a"

    def test_random_strategy_is_seeded(self, env, network, world):
        bus, _ = world
        vep = bus.create_vep(
            "echo", ECHO_CONTRACT,
            members=["http://svc/a", "http://svc/b", "http://svc/c"],
            selection_strategy="random",
        )
        answers = {call(env, network, vep.address) for _ in range(12)}
        assert len(answers) > 1  # actually randomizes

    def test_unknown_strategy_rejected(self, env, network, world):
        bus, _ = world
        with pytest.raises(ValueError):
            bus.create_vep("echo", ECHO_CONTRACT, members=["http://svc/a"],
                           selection_strategy="astrology")


class TestProxyDeployment:
    def test_transparent_proxy_preserves_address(self, env, network, world):
        bus, repository = world
        load_recovery(repository, (SubstituteAction("round_robin"),))
        bus.deploy_as_proxy(
            "proxy-a", ECHO_CONTRACT, "http://svc/a", extra_members=["http://svc/b"]
        )
        # Clients keep calling the original address...
        assert call(env, network, "http://svc/a") == "hi@echo-a"
        # ...and transparently fail over when the origin dies.
        network.endpoint("http://svc/a#origin").available = False
        assert call(env, network, "http://svc/a") == "hi@echo-b"

    def test_proxy_requires_existing_service(self, env, network, world):
        bus, _ = world
        with pytest.raises(ValueError):
            bus.deploy_as_proxy("ghost", ECHO_CONTRACT, "http://nothing")

    def test_fault_injection_resolves_through_proxy_to_origin(self, env, network, world):
        bus, repository = world
        load_recovery(repository, (SubstituteAction("round_robin"),))
        bus.deploy_as_proxy(
            "proxy-a", ECHO_CONTRACT, "http://svc/a", extra_members=["http://svc/b"]
        )
        # Operators keep aiming fault injection at the service's public
        # address; it must degrade the relocated origin, not the proxy
        # that is supposed to mediate the failure. (Regression: the proxy
        # used to mirror the origin's availability once at deploy time and
        # post-deployment injection knocked out the proxy itself.)
        target = network.fault_injection_target("http://svc/a")
        assert target is network.endpoint("http://svc/a#origin")
        target.available = False
        assert network.endpoint("http://svc/a").available  # front door stays up
        assert call(env, network, "http://svc/a") == "hi@echo-b"

    def test_availability_injector_at_public_address_spares_proxy(
        self, env, network, world
    ):
        from repro.faultinjection import AvailabilityFaultInjector, EndpointFaultProfile
        from repro.simulation import RandomSource

        bus, repository = world
        load_recovery(repository, (SubstituteAction("round_robin"),))
        bus.deploy_as_proxy(
            "proxy-a", ECHO_CONTRACT, "http://svc/a", extra_members=["http://svc/b"]
        )
        injector = AvailabilityFaultInjector(env, network, RandomSource(3))
        injector.inject(
            EndpointFaultProfile(
                "http://svc/a",
                mean_time_between_failures=2.0,
                mean_time_to_recover=1.0,
            )
        )
        env.run(until=30.0)
        injector.finalize()
        # The storm toggled the relocated origin, never the proxy front
        # door, so clients calling the original address keep being served.
        assert injector.logs["http://svc/a"].failure_count >= 1
        assert network.endpoint("http://svc/a").available
        assert call(env, network, "http://svc/a").startswith("hi@echo-")


class TestBusMonitoringIntegration:
    def test_qos_threshold_violation_blocks_response(self, env, network, container, world):
        bus, repository = world
        document = PolicyDocument("sla")
        document.monitoring_policies.append(
            MonitoringPolicy(
                name="rtt-sla",
                events=("message.response",),
                scope=PolicyScope(service_type="Echo"),
                qos_thresholds=(QoSThreshold("response_time", "lte", 0.001, window=10),),
            )
        )
        repository.load(document)
        vep = bus.create_vep("echo", ECHO_CONTRACT, members=["http://svc/a"])
        # The (absurdly tight) SLA is violated as soon as the first QoS
        # sample lands, and the violation surfaces to the client.
        with pytest.raises(SoapFaultError) as excinfo:
            call(env, network, vep.address)
        assert excinfo.value.fault.code is FaultCode.SLA_VIOLATION
        assert bus.monitoring.violations_detected >= 1

    def test_stats_summary_shape(self, env, network, world):
        bus, _ = world
        vep = bus.create_vep("echo", ECHO_CONTRACT, members=["http://svc/a"])
        call(env, network, vep.address)
        summary = bus.stats_summary()
        assert summary["veps"]["echo"]["successes"] == 1
        assert summary["dead_letters"] == 0


class TestMessageValidation:
    def test_validate_messages_rejects_bad_requests(self, env, network, world):
        from repro.xmlutils import Element

        bus, _ = world
        vep = VirtualEndpointFactoryHelper = bus.create_vep(
            "echo", ECHO_CONTRACT, members=["http://svc/a"]
        )
        # Recreate with validation enabled (separate VEP name).
        validated = bus.create_vep(
            "echo-validated", ECHO_CONTRACT, members=["http://svc/a"]
        )
        validated.validate_messages = True
        from repro.wsbus.inspectors import ContractValidationInspector

        validated.pipeline.insert(0, ContractValidationInspector(ECHO_CONTRACT))
        invoker = Invoker(env, network)

        def client():
            bad = Element("echoRequest")  # missing required 'text'
            with pytest.raises(SoapFaultError) as excinfo:
                yield from invoker.invoke(validated.address, "echo", bad)
            return excinfo.value.fault.code

        assert run_process(env, client()) is FaultCode.CLIENT
        assert validated.stats.violations == 1

    def test_validation_flag_wires_inspector(self, env, network, world):
        bus, _ = world
        # Use the constructor path rather than create_vep (which does not
        # expose the flag) to verify the automatic wiring.
        from repro.wsbus import VirtualEndpoint

        vep = VirtualEndpoint(
            name="inline",
            contract=ECHO_CONTRACT,
            env=env,
            sender=bus._send,
            selection=bus.selection,
            monitoring=bus.monitoring,
            adaptation=bus.adaptation,
            members=["http://svc/a"],
            validate_messages=True,
        )
        assert any(m.name == "contract-validation" for m in vep.pipeline.modules)
