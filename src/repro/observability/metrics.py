"""Counters and latency histograms.

A :class:`MetricsRegistry` is a flat namespace of named instruments:

- :class:`Counter` — a monotonically increasing count (requests served,
  violations detected, retries attempted);
- :class:`Histogram` — a distribution of observations (VEP mediation
  latency, instance durations), keeping exact running aggregates plus a
  bounded window of recent samples for percentiles. Histograms may
  additionally be created with explicit bucket bounds, in which case each
  bucket keeps a bounded ring of **exemplars** — ``(value, trace_id,
  correlation_id, span_id)`` samples linking an outlier observation back
  to its cross-layer trace (and the exact span inside it).

Instrument names may carry Prometheus-style labels inline —
``wsbus.endpoint.requests{endpoint="http://scm/retailerA"}`` (see
:func:`labeled_name`) — which :meth:`MetricsRegistry.render_prometheus`
splits back into label sets on the exposition format.

Like the tracer, the default everywhere is the no-op
:data:`NULL_METRICS`; instrumented code guards on ``metrics.enabled``
before building metric names so the disabled path allocates nothing.
"""

from __future__ import annotations

import re
from bisect import bisect_right
from collections import deque
from collections.abc import Iterable

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NullMetrics",
    "labeled_name",
    "merge_metric_snapshots",
]


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash, double quote and newline are the three characters the
    format requires escaping (in that order — escaping the escapes
    first). Values are stored escaped inside the composed instrument
    name, so the fragment is exposition-valid verbatim and the inline
    ``key="value"`` encoding stays unambiguous even for hostile values.
    """
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def labeled_name(base: str, **labels: str) -> str:
    """Compose an instrument name carrying an inline label set.

    Labels are sorted so the same logical series always maps to the same
    registry key; :meth:`MetricsRegistry.render_prometheus` splits them
    back out into the exposition format. Label *values* are escaped here
    (see :func:`_escape_label_value`), never at render time.
    """
    if not labels:
        return base
    rendered = ",".join(
        f'{key}="{_escape_label_value(labels[key])}"' for key in sorted(labels)
    )
    return f"{base}{{{rendered}}}"


_LABELED = re.compile(r"^(?P<base>[^{]+)\{(?P<labels>.*)\}$")


def split_labeled_name(name: str) -> tuple[str, str]:
    """``(base, "{labels}")`` of an instrument name; labels may be ``""``."""
    match = _LABELED.match(name)
    if match is None:
        return name, ""
    return match.group("base"), "{" + match.group("labels") + "}"


def _prom_name(base: str) -> str:
    """Sanitize a dotted instrument name to the Prometheus charset."""
    return re.sub(r"[^a-zA-Z0-9_:]", "_", base)


class Counter:
    """A named monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Histogram:
    """A named distribution with exact aggregates + windowed percentiles.

    ``count``/``total``/``min``/``max`` cover *every* observation ever
    made; percentiles are computed over the most recent ``window``
    samples so memory stays bounded under production-scale traffic.

    When ``buckets`` (sorted upper bounds) is given, observations are
    additionally counted per bucket, and each bucket keeps a bounded ring
    of recent exemplars — ``(value, trace_id, correlation_id, span_id)`` — so an
    operator can jump from a p99 outlier straight to the trace that
    produced it. Histograms created without buckets pay nothing for the
    feature beyond a single ``is None`` check per observation.
    """

    __slots__ = (
        "name",
        "count",
        "total",
        "min",
        "max",
        "_recent",
        "bucket_bounds",
        "bucket_counts",
        "_exemplars",
    )

    #: Exemplars retained per bucket (most recent win).
    EXEMPLARS_PER_BUCKET = 2

    def __init__(
        self,
        name: str,
        window: int = 8192,
        buckets: Iterable[float] | None = None,
    ) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._recent: deque[float] = deque(maxlen=window)
        if buckets is None:
            self.bucket_bounds: tuple[float, ...] | None = None
            self.bucket_counts: list[int] | None = None
            self._exemplars: list[deque] | None = None
        else:
            self.bucket_bounds = tuple(sorted(buckets))
            # One extra bucket for observations beyond the last bound (+Inf).
            self.bucket_counts = [0] * (len(self.bucket_bounds) + 1)
            self._exemplars = [
                deque(maxlen=self.EXEMPLARS_PER_BUCKET)
                for _ in range(len(self.bucket_bounds) + 1)
            ]

    def observe(
        self,
        value: float,
        trace_id: str | None = None,
        correlation_id: str | None = None,
        span_id: str | None = None,
    ) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self._recent.append(value)
        bounds = self.bucket_bounds
        if bounds is not None:
            index = bisect_right(bounds, value)
            self.bucket_counts[index] += 1
            if trace_id is not None:
                self._exemplars[index].append((value, trace_id, correlation_id, span_id))

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float | None:
        """The ``q``-th percentile (0–100) of the recent window.

        Interpolation rule: **nearest rank** — the window is sorted and
        the sample at index ``round(q/100 * (n-1))`` is returned, clamped
        to the window. Consequences worth relying on:

        - an empty histogram returns ``None`` (never raises);
        - a single-sample histogram returns that sample for every ``q``
          (p50 == p99 == the value);
        - percentiles are always actual observed samples, never values
          interpolated between two samples.
        """
        if not self._recent:
            return None
        ordered = sorted(self._recent)
        index = min(len(ordered) - 1, max(0, round(q / 100.0 * (len(ordered) - 1))))
        return ordered[index]

    def exemplars(self) -> list[dict]:
        """Recorded exemplars, one dict per sample, highest buckets last."""
        if self._exemplars is None:
            return []
        bounds = self.bucket_bounds
        out = []
        for index, ring in enumerate(self._exemplars):
            bound = bounds[index] if index < len(bounds) else float("inf")
            for value, trace_id, correlation_id, span_id in ring:
                out.append(
                    {
                        "bucket_le": bound,
                        "value": value,
                        "trace_id": trace_id,
                        "correlation_id": correlation_id,
                        "span_id": span_id,
                    }
                )
        return out

    def summary(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
        }


class MetricsRegistry:
    """A namespace of counters and histograms, created on first use."""

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def histogram(
        self, name: str, window: int = 8192, buckets: Iterable[float] | None = None
    ) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(
                name, window=window, buckets=buckets
            )
        return histogram

    # -- reporting -----------------------------------------------------------

    def snapshot(self) -> dict:
        """All instrument values as plain data (experiment reports)."""
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "histograms": {
                name: h.summary() for name, h in sorted(self._histograms.items())
            },
        }

    def render(self) -> str:
        """A human-readable dump of every instrument."""
        lines = []
        for name, counter in sorted(self._counters.items()):
            lines.append(f"{name}: {counter.value}")
        for name, histogram in sorted(self._histograms.items()):
            s = histogram.summary()
            p95 = "n/a" if s["p95"] is None else f"{s['p95']:.6f}"
            lines.append(
                f"{name}: n={s['count']} mean={s['mean']:.6f} "
                f"p95={p95} max={s['max']:.6f}"
            )
        return "\n".join(lines)

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format of every instrument.

        Counters become ``<name>_total`` samples; histograms emit
        ``_count``/``_sum``, summary quantiles over the recent window,
        and — when the histogram has buckets — cumulative ``_bucket``
        series with OpenMetrics-style exemplar annotations
        (``# {trace_id="...",correlation_id="..."} value``).
        """
        lines: list[str] = []
        typed: set[str] = set()

        def type_line(base: str, kind: str) -> None:
            if base not in typed:
                typed.add(base)
                lines.append(f"# TYPE {base} {kind}")

        for name, counter in sorted(self._counters.items()):
            base, labels = split_labeled_name(name)
            prom = _prom_name(base) + "_total"
            type_line(prom, "counter")
            lines.append(f"{prom}{labels} {counter.value}")

        for name, histogram in sorted(self._histograms.items()):
            base, labels = split_labeled_name(name)
            prom = _prom_name(base)
            type_line(prom, "histogram" if histogram.bucket_bounds else "summary")
            label_body = labels[1:-1] if labels else ""

            def with_label(extra: str) -> str:
                if not label_body and not extra:
                    return ""
                joined = ",".join(part for part in (label_body, extra) if part)
                return "{" + joined + "}"

            if histogram.bucket_bounds is not None:
                cumulative = 0
                for index, bound in enumerate(histogram.bucket_bounds):
                    cumulative += histogram.bucket_counts[index]
                    le = 'le="%g"' % bound
                    sample = f"{prom}_bucket{with_label(le)} {cumulative}"
                    sample += _exemplar_suffix(histogram._exemplars[index])
                    lines.append(sample)
                cumulative += histogram.bucket_counts[-1]
                inf_label = 'le="+Inf"'
                sample = f"{prom}_bucket{with_label(inf_label)} {cumulative}"
                sample += _exemplar_suffix(histogram._exemplars[-1])
                lines.append(sample)
            else:
                for q in (50, 95, 99):
                    value = histogram.percentile(q)
                    if value is not None:
                        quantile = 'quantile="%g"' % (q / 100)
                        lines.append(f"{prom}{with_label(quantile)} {value:.6f}")
            lines.append(f"{prom}_count{labels} {histogram.count}")
            lines.append(f"{prom}_sum{labels} {histogram.total:.6f}")
        return "\n".join(lines) + ("\n" if lines else "")


def _exemplar_suffix(ring) -> str:
    """The OpenMetrics exemplar annotation for one bucket (latest sample)."""
    if not ring:
        return ""
    value, trace_id, correlation_id, span_id = ring[-1]
    label = f'trace_id="{_escape_label_value(trace_id)}"'
    if span_id is not None:
        label += f',span_id="{_escape_label_value(span_id)}"'
    if correlation_id is not None:
        label += f',correlation_id="{_escape_label_value(correlation_id)}"'
    return f" # {{{label}}} {value:.6f}"


def merge_metric_snapshots(snapshots: Iterable[dict]) -> dict:
    """Deterministically merge per-shard :meth:`MetricsRegistry.snapshot` dicts.

    Counters sum; histograms combine their exact aggregates (``count``,
    ``mean`` via the weighted total, ``min``, ``max``). Windowed
    percentiles cannot be merged from summaries and are deliberately
    dropped — they remain a per-shard view. The result depends only on
    the multiset of inputs (keys are sorted, sums are order-independent
    per sorted input order), so merging ``jobs=4`` shard snapshots equals
    merging the same cells run with ``jobs=1``.
    """
    counters: dict[str, int] = {}
    histograms: dict[str, dict] = {}
    for snapshot in snapshots:
        for name, value in snapshot.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, summary in snapshot.get("histograms", {}).items():
            merged = histograms.get(name)
            if merged is None:
                merged = histograms[name] = {
                    "count": 0,
                    "total": 0.0,
                    "min": None,
                    "max": None,
                }
            count = summary["count"]
            merged["count"] += count
            merged["total"] += summary["mean"] * count
            if count:
                if merged["min"] is None or summary["min"] < merged["min"]:
                    merged["min"] = summary["min"]
                if merged["max"] is None or summary["max"] > merged["max"]:
                    merged["max"] = summary["max"]
    return {
        "counters": dict(sorted(counters.items())),
        "histograms": {
            name: {
                "count": h["count"],
                "mean": h["total"] / h["count"] if h["count"] else 0.0,
                "min": h["min"] if h["min"] is not None else 0.0,
                "max": h["max"] if h["max"] is not None else 0.0,
            }
            for name, h in sorted(histograms.items())
        },
    }


class _NullInstrument:
    """Shared no-op counter/histogram."""

    __slots__ = ()

    name = "null"
    value = 0
    count = 0
    total = 0.0
    mean = 0.0
    min = None
    max = None
    bucket_bounds = None

    def inc(self, amount: int = 1) -> None:
        return None

    def observe(self, value: float, trace_id=None, correlation_id=None, span_id=None) -> None:
        return None

    def percentile(self, q: float) -> float | None:
        return None

    def exemplars(self) -> list:
        return []

    def summary(self) -> dict:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """The default, disabled registry: hands out a shared no-op."""

    enabled = False

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, window: int = 8192, buckets=None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def snapshot(self) -> dict:
        return {"counters": {}, "histograms": {}}

    def render(self) -> str:
        return ""

    def render_prometheus(self) -> str:
        return ""


NULL_METRICS = NullMetrics()
