"""The base (national) Trading Process.

"The base Trading Process is initiated when a human investor places an
investment or redemption order with their FundManagerService. The latter,
after verifying the order, invokes the FinancialAnalysisService to get a
recommendation... The FundManagerService makes a decision which stock to
buy/sell... Then, the FundManagerService sends the buying/selling request
to the StockMarketService."

The process carries **no** customization logic: currency conversion, PEST
analysis, credit rating and compliance removal are all injected/removed by
WS-Policy4MASC policies at runtime — the paper's headline separation of
concerns.
"""

from __future__ import annotations

from repro.orchestration import (
    Assign,
    Expression,
    Invoke,
    ProcessDefinition,
    Reply,
    Sequence,
)

__all__ = ["TRADING_ANCHORS", "build_trading_process"]

#: The activity names policies anchor to (kept stable as a public contract).
TRADING_ANCHORS = {
    "verify": "verify-order",
    "analysis": "get-analysis",
    "compliance": "market-compliance",
    "trade": "place-trade",
    "reply": "trade-result",
}


def build_trading_process(
    fund_manager_address: str,
    analysis_address: str,
    compliance_address: str,
    market_address: str,
    name: str = "trading-process",
) -> ProcessDefinition:
    """The base national-trading composition.

    Targets are concrete addresses or VEP addresses — the process does not
    care which (that is wsBus's virtualization at work).
    """
    root = Sequence(
        "trading-main",
        [
            Invoke(
                TRADING_ANCHORS["verify"],
                operation="placeOrder",
                to=fund_manager_address,
                inputs={
                    "investorId": "$investor_id",
                    "orderType": "$order_type",
                    "amount": "$amount",
                    "country": "$country",
                    "profile": "$profile",
                },
                extract={"order_id": "orderId", "order_status": "status"},
                timeout_seconds=15.0,
            ),
            Invoke(
                TRADING_ANCHORS["analysis"],
                operation="getRecommendation",
                to=analysis_address,
                inputs={
                    "orderType": "$order_type",
                    "amount": "$amount",
                    "country": "$country",
                },
                extract={"symbol": "symbol", "score": "score", "price": "price"},
                timeout_seconds=15.0,
            ),
            # Trade sizing: how many shares the requested amount buys. The
            # default quantity of 1 guards against a zero price.
            Assign(
                "size-trade",
                "quantity",
                expression="max(1, int(amount / price)) if price > 0 else 1",
            ),
            Invoke(
                TRADING_ANCHORS["compliance"],
                operation="verify",
                to=compliance_address,
                inputs={"orderId": "$order_id", "amount": "$amount"},
                extract={"compliant": "compliant"},
                timeout_seconds=15.0,
            ),
            Invoke(
                TRADING_ANCHORS["trade"],
                operation="placeTrade",
                to=market_address,
                inputs={
                    "orderId": "$order_id",
                    "symbol": "$symbol",
                    # Declarative (serializable) buy/sell decision: keeps the
                    # base process fully dehydratable for crash recovery.
                    "side": Expression("'buy' if order_type == 'invest' else 'sell'"),
                    "quantity": "$quantity",
                    "limitPrice": "$price",
                },
                extract={"trade_id": "tradeId", "trade_status": "status"},
                timeout_seconds=20.0,
            ),
            Reply(TRADING_ANCHORS["reply"], variable="trade_status"),
        ],
    )
    return ProcessDefinition(
        name,
        root,
        initial_variables={
            "investor_id": "investor-1",
            "order_type": "invest",
            "amount": 5000.0,
            "country": "AU",
            "currency": "AUD",
            "profile": "personal",
        },
    )
