"""WS-I Supply Chain Management (SCM) sample application.

"The SCM scenarios... simulate business activity of an online supplier of
electronic goods": a Web client calls a Retailer's ``getCatalog`` and
``submitOrder``; the Retailer fulfils orders from Warehouses A→B→C with
fall-through; warehouses restock from their Manufacturers when stock drops
below a threshold; every use case logs to the Logging Facility; a
Configuration service lists implementations from the UDDI registry.
"""

from repro.casestudies.scm.contracts import (
    CONFIGURATION_CONTRACT,
    LOGGING_CONTRACT,
    MANUFACTURER_CONTRACT,
    RETAILER_CONTRACT,
    WAREHOUSE_CONTRACT,
)
from repro.casestudies.scm.deployment import (
    SCMDeployment,
    TABLE1_FAULT_PROFILES,
    build_scm_deployment,
)
from repro.casestudies.scm.policies import (
    broadcast_policy_document,
    federation_policy_document,
    logging_skip_policy_document,
    resilience_policy_document,
    retailer_recovery_policy_document,
    saga_policy_document,
    slo_policy_document,
    tracing_policy_document,
    traffic_policy_document,
)
from repro.casestudies.scm.process import build_scm_process, build_scm_saga_process
from repro.casestudies.scm.services import (
    ConfigurationService,
    LoggingFacilityService,
    ManufacturerService,
    RetailerService,
    WarehouseService,
)

__all__ = [
    "CONFIGURATION_CONTRACT",
    "ConfigurationService",
    "LOGGING_CONTRACT",
    "LoggingFacilityService",
    "MANUFACTURER_CONTRACT",
    "ManufacturerService",
    "RETAILER_CONTRACT",
    "RetailerService",
    "SCMDeployment",
    "TABLE1_FAULT_PROFILES",
    "WAREHOUSE_CONTRACT",
    "WarehouseService",
    "broadcast_policy_document",
    "build_scm_deployment",
    "build_scm_process",
    "build_scm_saga_process",
    "federation_policy_document",
    "logging_skip_policy_document",
    "resilience_policy_document",
    "retailer_recovery_policy_document",
    "saga_policy_document",
    "slo_policy_document",
    "tracing_policy_document",
    "traffic_policy_document",
]
