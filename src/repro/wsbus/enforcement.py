"""Out-of-band messaging-layer enforcement.

The Adaptation Manager enacts retry/substitute/broadcast/skip *inline* in
the failing message's path. Optimizing and preventive actions are
different: they fire from events (QoS trends, SLA forecasts) with no
message waiting for an answer. :class:`BusEnforcementPoint` is the
``messaging``-layer enforcement point the decision maker dispatches those
actions to:

- :class:`~repro.policy.QuarantineAction` — temporarily remove the
  affected endpoint from every VEP that lists it, restoring it after the
  quarantine period;
- :class:`~repro.policy.PreferBestAction` — reorder VEP membership by the
  measured QoS so primary-ordered selection prefers the best endpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.decision_maker import EnforcementPoint
from repro.core.events import MASCEvent
from repro.policy import AdaptationPolicy, PreferBestAction, QuarantineAction
from repro.policy.actions import AdaptationAction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.wsbus.bus import WsBus

__all__ = ["BusEnforcementPoint", "QuarantineRecord"]


@dataclass
class QuarantineRecord:
    """One quarantine episode, for experiment reporting."""

    endpoint: str
    started_at: float
    duration: float
    vep_names: list[str]
    policy_name: str


class BusEnforcementPoint(EnforcementPoint):
    """Enacts out-of-band messaging-layer actions against a WsBus."""

    layer = "messaging"

    def __init__(self, bus: "WsBus") -> None:
        self.bus = bus
        self.quarantines: list[QuarantineRecord] = []
        self._active_quarantines: set[str] = set()

    def enact(
        self, action: AdaptationAction, policy: AdaptationPolicy, event: MASCEvent
    ) -> bool:
        if isinstance(action, QuarantineAction):
            return self._quarantine(action, policy, event)
        if isinstance(action, PreferBestAction):
            return self._prefer_best(action, event)
        # Inline recovery actions (retry/substitute/...) cannot be enacted
        # out of band: there is no failed message to redeliver.
        return False

    # -- quarantine ----------------------------------------------------------------

    def _quarantine(
        self, action: QuarantineAction, policy: AdaptationPolicy, event: MASCEvent
    ) -> bool:
        endpoint = event.endpoint or event.context.get("endpoint")
        if not endpoint or endpoint in self._active_quarantines:
            return False
        affected = [
            vep for vep in self.bus.veps.values() if endpoint in vep.members
        ]
        removable = [vep for vep in affected if len(vep.members) > 1]
        if not removable:
            return False  # never quarantine an endpoint out of existence
        for vep in removable:
            vep.remove_member(endpoint)
        self._active_quarantines.add(endpoint)
        record = QuarantineRecord(
            endpoint=endpoint,
            started_at=self.bus.env.now,
            duration=action.duration_seconds,
            vep_names=[vep.name for vep in removable],
            policy_name=policy.name,
        )
        self.quarantines.append(record)
        self.bus.env.process(
            self._release(endpoint, removable, action.duration_seconds),
            name=f"quarantine:{endpoint}",
        )
        return True

    def _release(self, endpoint: str, veps, duration: float):
        yield self.bus.env.timeout(duration)
        for vep in veps:
            vep.add_member(endpoint)
        self._active_quarantines.discard(endpoint)

    # -- preference re-ordering ---------------------------------------------------------

    def _prefer_best(self, action: PreferBestAction, event: MASCEvent) -> bool:
        changed = False
        for vep in self.bus.veps.values():
            if len(vep.members) < 2:
                continue
            best = self.bus.qos.best_endpoint(
                list(vep.members), metric=action.metric, window=action.window
            )
            if best is not None and vep.members[0] != best:
                vep.members.remove(best)
                vep.members.insert(0, best)
                changed = True
        return changed
