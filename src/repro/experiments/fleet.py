"""The federated-fleet storm: N bus shards vs one bus, same workload.

The ablation isolates what federation buys: both arms run the *same*
partitioned Retailer workload through a :class:`~repro.federation.BusFleet`
whose buses carry a bounded mediation capacity (the paper's wsBus is a
single mediation host — concurrency there is finite). The single-shard arm
funnels every partition VEP through one bus's slots and queues; the
N-shard arm spreads partitions across N buses, multiplying mediation
capacity, while gossip keeps ``best_response_time`` selection converging
on fleet-wide QoS observations and the leader election keeps exactly one
Adaptation Manager in charge of fleet-wide reactions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.casestudies.scm import (
    RETAILER_CONTRACT,
    build_scm_deployment,
    federation_policy_document,
    retailer_recovery_policy_document,
    slo_policy_document,
)
from repro.experiments.harness import catalog_plan
from repro.federation import BusFleet
from repro.metrics import describe, reliability_report
from repro.observability import MetricsRegistry
from repro.policy import PolicyRepository
from repro.services import ProcessingModel
from repro.workload import WorkloadRunner

__all__ = ["FleetStormResult", "run_fleet_storm"]


@dataclass
class FleetStormResult:
    """Outcome of one fleet-storm arm (``shards`` buses)."""

    shards: int
    total_requests: int
    delivered: int
    reliability: float
    #: Successful requests per simulated second over the whole run.
    throughput: float
    #: RTT statistics over *all* requests, failures included — a request
    #: that burned its timeout queueing for a mediation slot still cost
    #: that time.
    rtt_stats: dict[str, float]
    leader: str | None
    epoch: int
    leader_changes: int
    #: MASC/SLO events followers forwarded to the leader's manager.
    forwarded_events: int
    #: QoS observations merged by gossip anti-entropy across the fleet.
    gossip_records: int
    #: ``{vep name: owning bus}`` at the end of the run.
    placement: dict[str, str]
    fleet_stats: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    #: Simulated time the injected bus crash fired (None: no crash arm).
    crash_time: float | None = None
    #: SLO events emitted across every bus's engine during the run.
    slo_events: int = 0
    #: The live fleet (stripped to None when results cross processes).
    fleet: BusFleet | None = None

    @property
    def p99_rtt(self) -> float:
        return self.rtt_stats.get("p99", float("inf"))


def run_fleet_storm(
    seed: int,
    shards: int,
    partitions: int = 6,
    clients_per_partition: int = 4,
    requests: int = 30,
    client_timeout: float = 8.0,
    mediation_capacity: int = 6,
    processing_seconds: float = 0.08,
    tracer=None,
    slo: bool = False,
    crash_bus: str | None = None,
    crash_at: float = 0.0,
    outage_endpoint: str | None = None,
    outage_at: float = 0.0,
    outage_duration: float = 0.0,
) -> FleetStormResult:
    """One fleet-storm arm: ``partitions`` Retailer VEPs over ``shards`` buses.

    Every partition VEP fronts all four Retailers with
    ``best_response_time`` selection, so the run exercises placement
    (consistent-hash over the live buses), gossip (each bus only mediates
    its own partitions, yet selection needs fleet-wide observations), and
    leadership (one Adaptation Manager per fleet). ``mediation_capacity``
    bounds concurrent mediations *per bus* — the resource the fleet
    shards; Retailer processing is slowed to ``processing_seconds`` so
    the slots are held long enough for the single-bus arm to queue.

    The failure-scenario knobs build the trace-continuity storm:
    ``slo`` loads the Retailer SLO objective (storm-scaled windows) on
    every bus; ``crash_bus``/``crash_at`` arm a
    :class:`~repro.faultinjection.BusCrashInjector`; and
    ``outage_endpoint`` + ``outage_at``/``outage_duration`` open one
    deterministic unavailability window at a member service so failed
    deliveries burn the SLO budget and the violation → leader-forwarded
    adaptation chain fires while the fleet is failing over.
    """
    deployment = build_scm_deployment(seed=seed, log_events=False)
    for retailer in deployment.retailers.values():
        retailer.processing = ProcessingModel(
            base_seconds=processing_seconds,
            per_kb_seconds=0.0,
            jitter_fraction=0.1,
        )
    if tracer is not None:
        tracer.rebind_clock(deployment.env)
    repository = PolicyRepository()
    repository.load(
        retailer_recovery_policy_document(max_retries=1, retry_delay_seconds=0.25)
    )
    repository.load(
        federation_policy_document(
            heartbeat_interval_seconds=0.5,
            suspicion_multiplier=3.0,
            gossip_interval_seconds=1.0,
            gossip_fanout=1,
            lease_seconds=3.0,
        )
    )
    if slo:
        # Storm-scaled windows: a few seconds of failed deliveries must
        # be enough to burn the budget and emit the violation events the
        # continuity scenario traces to the leader.
        repository.load(
            slo_policy_document(
                window_seconds=60.0,
                fast_window_seconds=8.0,
                slow_window_seconds=16.0,
                fast_burn_threshold=4.0,
                slow_burn_threshold=1.5,
                evaluation_interval_seconds=1.0,
                min_requests=3,
            )
        )
    metrics = MetricsRegistry()
    fleet = BusFleet(
        deployment.env,
        deployment.network,
        shards=shards,
        repository=repository,
        registry=deployment.registry,
        random_source=deployment.random_source,
        member_timeout=5.0,
        mediation_capacity=mediation_capacity,
        tracer=tracer,
        metrics=metrics,
    )
    plans = []
    for index in range(partitions):
        vep = fleet.create_vep(
            f"retailers-p{index}",
            RETAILER_CONTRACT,
            members=deployment.retailer_addresses,
            selection_strategy="best_response_time",
        )
        plans.append(catalog_plan(vep.address, timeout=client_timeout, think=0.05))
    injector = None
    if crash_bus is not None:
        from repro.faultinjection import BusCrashInjector

        injector = BusCrashInjector(deployment.env, fleet, crash_bus, crash_at)
    if outage_endpoint is not None:
        target = deployment.network.fault_injection_target(outage_endpoint)
        if target is None:
            raise ValueError(f"no endpoint registered at {outage_endpoint!r}")

        def _outage_window():
            if outage_at > 0:
                yield deployment.env.timeout(outage_at)
            target.available = False
            yield deployment.env.timeout(outage_duration)
            target.available = True

        deployment.env.process(
            _outage_window(), name=("storm-outage", outage_endpoint)
        )
    runner = WorkloadRunner(deployment.env, deployment.network)
    result = runner.run_many(
        plans, clients_per_plan=clients_per_partition, requests_per_client=requests
    )
    report = reliability_report("fleet storm", result.records)
    total = len(result.records)
    delivered = len(result.successes)
    snapshot = metrics.snapshot()
    counters = snapshot.get("counters", {})
    return FleetStormResult(
        shards=shards,
        total_requests=total,
        delivered=delivered,
        reliability=delivered / total if total else 0.0,
        throughput=result.throughput(),
        rtt_stats=describe([record.duration for record in result.records]),
        leader=fleet.leader,
        epoch=fleet.election.epoch,
        leader_changes=counters.get("federation.leader.changes", 0),
        forwarded_events=counters.get("federation.events.forwarded", 0),
        gossip_records=counters.get("federation.gossip.records", 0),
        placement={name: spec.owner for name, spec in sorted(fleet.veps.items())},
        fleet_stats=fleet.stats_summary(),
        metrics=snapshot,
        crash_time=injector.crash_time if injector is not None else None,
        slo_events=sum(len(bus.slo.events) for bus in fleet.buses.values()),
        fleet=fleet,
    )
