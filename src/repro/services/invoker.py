"""Client-side Web services invoker.

The invoker builds request envelopes, races them against a timeout timer,
and normalizes every failure mode into the fault taxonomy:

- connection refused / unknown endpoint  → ``ServiceUnavailable``
- no response within the timeout         → ``Timeout``
- fault envelope returned by the service → the fault's own code

Every attempt produces an :class:`InvocationRecord`; observers (the wsBus
QoS Measurement Service, experiment harnesses) subscribe to build
reliability, availability and response-time statistics.
"""

from __future__ import annotations

import enum
from collections.abc import Callable, Generator
from dataclasses import dataclass

from repro.simulation import Environment
from repro.soap import AddressingHeaders, FaultCode, SoapEnvelope, SoapFault
from repro.transport import ConnectionRefused, Network, TransportTimeout
from repro.xmlutils import Element

__all__ = ["InvocationOutcome", "InvocationRecord", "Invoker"]


class InvocationOutcome(enum.Enum):
    SUCCESS = "success"
    FAULT = "fault"


@dataclass(frozen=True)
class InvocationRecord:
    """One attempted request/response exchange, as seen by the caller."""

    caller: str
    target: str
    operation: str
    started_at: float
    finished_at: float
    outcome: InvocationOutcome
    fault_code: FaultCode | None = None
    request_bytes: int = 0
    response_bytes: int = 0

    @property
    def duration(self) -> float:
        """Round-trip time in simulated seconds."""
        return self.finished_at - self.started_at

    @property
    def succeeded(self) -> bool:
        return self.outcome is InvocationOutcome.SUCCESS


class Invoker:
    """Sends requests on behalf of one caller (a client, service, or VEP)."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        caller: str = "client",
        default_timeout: float | None = 30.0,
    ) -> None:
        self.env = env
        self.network = network
        self.caller = caller
        self.default_timeout = default_timeout
        self._observers: list[Callable[[InvocationRecord], None]] = []
        self._message_taps: list[Callable[[str, SoapEnvelope, str, str], None]] = []

    def add_observer(self, observer: Callable[[InvocationRecord], None]) -> None:
        """Subscribe to every invocation record this invoker produces."""
        self._observers.append(observer)

    def add_message_tap(
        self, tap: Callable[[str, SoapEnvelope, str, str], None]
    ) -> None:
        """Subscribe to message contents: ``tap(direction, envelope,
        operation, target)`` with direction ``request``/``response``/
        ``fault``. This is the introspection point MASC monitoring uses."""
        self._message_taps.append(tap)

    def _tap(self, direction: str, envelope: SoapEnvelope, operation: str, target: str) -> None:
        for tap in self._message_taps:
            tap(direction, envelope, operation, target)

    # -- invocation ------------------------------------------------------------

    def invoke(
        self,
        to: str,
        operation: str,
        payload: Element,
        timeout: float | None = None,
        action: str | None = None,
        process_instance_id: str | None = None,
        padding: int = 0,
    ) -> Generator:
        """Build and send a request; returns the response envelope.

        Raises :class:`~repro.soap.SoapFaultError` on any failure.
        """
        envelope = SoapEnvelope.request(
            to,
            action or f"urn:op:{operation}",
            payload,
            padding=padding,
            process_instance_id=process_instance_id,
        )
        return self.send(envelope, operation=operation, timeout=timeout)

    def send(
        self,
        envelope: SoapEnvelope,
        operation: str | None = None,
        timeout: float | None = None,
    ) -> Generator:
        """Send a prebuilt envelope (used by wsBus when re-routing copies).

        ``timeout=None`` applies the invoker's default; ``math.inf``
        disables the timer entirely (callers that manage their own,
        extensible deadline — the orchestration engine — use this).
        """
        effective_timeout = self.default_timeout if timeout is None else timeout
        if effective_timeout is not None and effective_timeout == float("inf"):
            effective_timeout = None
        operation_name = operation or (envelope.addressing.action or "unknown")
        target = envelope.addressing.to or ""
        started = self.env.now
        self._tap("request", envelope, operation_name, target)
        try:
            # Drive the transport exchange inline (no wrapping process): the
            # exchange is request-scoped and nothing races it at this level,
            # so the extra process per invocation was pure overhead.
            response = yield from self.network.send(envelope, timeout=effective_timeout)
        except ConnectionRefused as refused:
            fault = SoapFault(
                FaultCode.SERVICE_UNAVAILABLE, str(refused), actor=target, source="transport"
            )
            self._record(target, operation_name, started, envelope, None, fault)
            raise fault.to_exception() from refused
        except TransportTimeout as timed_out:
            fault = SoapFault(FaultCode.TIMEOUT, str(timed_out), actor=target, source="invoker")
            self._record(target, operation_name, started, envelope, None, fault)
            raise fault.to_exception() from timed_out
        # Observers (QoS measurement) run before taps (monitoring) so a
        # monitoring policy evaluating QoS thresholds on this response
        # already sees the exchange it is judging.
        if response.is_fault:
            assert response.fault is not None
            self._record(target, operation_name, started, envelope, response, response.fault)
            self._tap("fault", response, operation_name, target)
            raise response.fault.to_exception()
        self._record(target, operation_name, started, envelope, response, None)
        self._tap("response", response, operation_name, target)
        return response

    def _record(
        self,
        target: str,
        operation: str,
        started: float,
        request: SoapEnvelope,
        response: SoapEnvelope | None,
        fault: SoapFault | None,
    ) -> None:
        # Direct construction (one record per attempt): skips the dataclass
        # __init__ funnel on a 9-field object built in the hottest loop.
        record = InvocationRecord.__new__(InvocationRecord)
        state = record.__dict__
        state["caller"] = self.caller
        state["target"] = target
        state["operation"] = operation
        state["started_at"] = started
        state["finished_at"] = self.env.now
        state["outcome"] = InvocationOutcome.FAULT if fault else InvocationOutcome.SUCCESS
        state["fault_code"] = fault.code if fault else None
        state["request_bytes"] = request.size_bytes
        state["response_bytes"] = response.size_bytes if response is not None else 0
        for observer in self._observers:
            observer(record)
