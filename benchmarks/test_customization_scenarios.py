"""Section 2.2 customization experiments: the MASC evaluation.

The paper's evaluation of the customization support is qualitative — four
scenarios that must succeed against the base national-trading process
without touching the process definition or any service implementation:

1. dynamic addition of a CurrencyConversion service for international
   trades;
2. dynamic addition of a PESTAnalysis service depending on the country;
3. dynamic addition of a CreditRating service gated on transaction amount
   and/or customer profile;
4. dynamic removal of the MarketCompliance invocation below a threshold.

This harness regenerates the scenario matrix and asserts every row, plus
the paper's hot-reload property.
"""

from __future__ import annotations

from repro.casestudies.stocktrading import (
    build_trading_deployment,
    compliance_removal_policy_document,
    credit_rating_policy_document,
    currency_conversion_policy_document,
    pest_analysis_policy_document,
)
from repro.metrics import Table
from repro.orchestration.instance import InstanceStatus
from repro.policy import serialize_policy_document


def run_scenarios():
    deployment = build_trading_deployment(seed=5)
    for document in (
        currency_conversion_policy_document(),
        pest_analysis_policy_document(),
        credit_rating_policy_document(),
        compliance_removal_policy_document(),
    ):
        deployment.masc.load_policies(serialize_policy_document(document))

    definition_before = deployment.engine.definitions["trading-process"].activity_names()

    scenarios = {
        "baseline national": deployment.run_order(amount=50_000.0, country="AU"),
        "international (US/USD)": deployment.run_order(
            amount=20_000.0, country="US", currency="USD"
        ),
        "high-risk country (BR)": deployment.run_order(
            amount=8000.0, country="BR", currency="USD"
        ),
        "large personal trade": deployment.run_order(amount=250_000.0, profile="personal"),
        "corporate trade": deployment.run_order(amount=2000.0, profile="corporate"),
        "small trade": deployment.run_order(amount=500.0),
    }
    definition_after = deployment.engine.definitions["trading-process"].activity_names()
    return deployment, scenarios, definition_before, definition_after


def test_customization_scenarios(benchmark):
    deployment, scenarios, before, after = benchmark.pedantic(
        run_scenarios, rounds=1, iterations=1
    )

    table = Table(
        ["Scenario", "Status", "CC", "PEST", "CreditRating", "Compliance"],
        title="Section 2.2 — customization scenario matrix",
    )
    for label, instance in scenarios.items():
        executed = instance.executed_activities
        table.add_row(
            [
                label,
                instance.status.value,
                "convert-currency" in executed,
                "pest-analysis" in executed,
                "credit-rating" in executed,
                "market-compliance" in executed,
            ]
        )
    print()
    print(table.render())

    # Every scenario instance completes.
    for label, instance in scenarios.items():
        assert instance.status is InstanceStatus.COMPLETED, label

    def executed(label):
        return scenarios[label].executed_activities

    # Scenario matrix assertions (the paper's four experiments).
    assert "convert-currency" not in executed("baseline national")
    assert "convert-currency" in executed("international (US/USD)")
    assert "pest-analysis" in executed("international (US/USD)")
    assert "pest-analysis" in executed("high-risk country (BR)")
    assert "credit-rating" in executed("large personal trade")
    assert "credit-rating" in executed("corporate trade")
    assert "credit-rating" not in executed("baseline national")
    assert "market-compliance" not in executed("small trade")
    assert "market-compliance" in executed("baseline national")

    # High-risk vs standard PEST routed to different concrete services.
    reports = deployment.masc.adaptation.reports
    assert any(r.policy_name == "add-pest-analysis-high-risk" for r in reports)
    assert any(r.policy_name == "add-pest-analysis-standard" for r in reports)

    # "Without any changes to either the process definition or the
    # constituent services implementations."
    assert before == after

    # Data exchange worked: conversion wrote its outputs into the instance.
    international = scenarios["international (US/USD)"]
    assert international.variables["local_amount"] > international.variables["amount"]


def test_hot_reload_enforced_on_next_adaptation(benchmark):
    """"When a WS-Policy4MASC document changes, these changes are
    automatically enforced the next time adaptation is needed with no need
    to restart any software component.""" ""

    def run():
        deployment = build_trading_deployment(seed=6)
        deployment.masc.load_policies(
            serialize_policy_document(compliance_removal_policy_document(10_000.0))
        )
        first = deployment.run_order(amount=500.0)
        deployment.masc.load_policies(
            serialize_policy_document(compliance_removal_policy_document(100.0))
        )
        second = deployment.run_order(amount=500.0)
        return first, second

    first, second = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\nHot reload: threshold 10000 -> compliance removed:",
        "market-compliance" not in first.executed_activities,
        "| threshold 100 -> compliance kept:",
        "market-compliance" in second.executed_activities,
    )
    assert "market-compliance" not in first.executed_activities
    assert "market-compliance" in second.executed_activities
