"""Wire-level trace context: a W3C-traceparent-style SOAP header.

PR 9's federated fleet broke the implicit assumption that one process
sees every hop of a request: spans were linked with in-process
``parent=`` object references, so a message that crosses a shard
boundary, fails over between buses, or is forwarded to the leader's
Adaptation Manager fragmented into disconnected traces. The remedy is
the same one the idempotency tier uses (:mod:`repro.traffic.idempotency`):
carry the context *in the message*.

The ``masc:TraceContext`` extension header holds a W3C-traceparent-style
value::

    00-<trace_id>-<span_id>-<flags>

where ``flags`` is ``01`` (sampled) or ``00`` (unsampled) and the ids are
this repository's deterministic counters (``tr-000001``/``sp-000004``),
not 128-bit hex — the *shape* of the header follows the Trace Context
recommendation, the ids follow the repo's reproducibility discipline. An
optional ``correlationId`` attribute carries the domain correlation key
across buses.

:class:`TraceContext` duck-types as the ``parent=`` argument of
:meth:`~repro.observability.tracing.Tracer.start_span` (it exposes
``trace_id``/``span_id``/``correlation_id``/``sampled``), so joining a
remote trace is exactly the same call as nesting under a local span.

The header is stamped **transparent** (see
:class:`~repro.soap.envelope.SoapHeader`): it travels in the serialized
XML but is excluded from :attr:`~repro.soap.envelope.SoapEnvelope.size_bytes`,
so the transport's size-dependent latency model sees the same bytes
whether tracing is on or off — a traced run is time-identical to an
untraced one (``tests/test_trace_zero_overhead.py``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.soap.addressing import MASC_NS
from repro.soap.envelope import SoapEnvelope
from repro.xmlutils import Element, QName

__all__ = [
    "TRACE_CONTEXT_HEADER",
    "TraceContext",
    "context_of_span",
    "format_traceparent",
    "parse_traceparent",
    "stamp_trace_context",
    "trace_context_of",
]

#: The SOAP extension header (MASC namespace, never mustUnderstand,
#: always transparent) that carries the trace context across wire hops.
TRACE_CONTEXT_HEADER = QName(MASC_NS, "TraceContext")

_VERSION = "00"

#: Tolerant parse of the traceparent value. The span id anchors the split
#: (the tracer's span ids are always ``sp-<digits>``), so trace ids may
#: themselves contain dashes. An unrecognized value yields None — a
#: malformed header never breaks mediation, the hop just starts a fresh
#: trace, exactly like a request that carried no context at all.
_TRACEPARENT_RE = re.compile(
    r"^(?P<version>[0-9a-f]{2})-(?P<trace_id>\S+?)-(?P<span_id>sp-\d+)-(?P<flags>[0-9a-f]{2})$"
)


@dataclass(frozen=True)
class TraceContext:
    """A wire-portable reference to a span in some (possibly remote) trace."""

    trace_id: str
    span_id: str
    sampled: bool = True
    correlation_id: str | None = None


def format_traceparent(context: TraceContext) -> str:
    """The traceparent value of ``context``."""
    flags = "01" if context.sampled else "00"
    return f"{_VERSION}-{context.trace_id}-{context.span_id}-{flags}"


def parse_traceparent(text: str | None) -> TraceContext | None:
    """Parse a traceparent value; None when malformed or absent."""
    if not text:
        return None
    match = _TRACEPARENT_RE.match(text.strip())
    if match is None or match.group("version") == "ff":
        return None
    return TraceContext(
        trace_id=match.group("trace_id"),
        span_id=match.group("span_id"),
        sampled=match.group("flags") != "00",
    )


def context_of_span(span) -> TraceContext:
    """The wire context referencing ``span`` (any live span object)."""
    return TraceContext(
        trace_id=span.trace_id,
        span_id=span.span_id,
        sampled=getattr(span, "sampled", True),
        correlation_id=span.correlation_id,
    )


def trace_context_of(envelope: SoapEnvelope) -> TraceContext | None:
    """The trace context stamped on ``envelope``, or None."""
    header = envelope.header(TRACE_CONTEXT_HEADER)
    if header is None:
        return None
    context = parse_traceparent(header.text)
    if context is None:
        return None
    correlation = header.attributes.get("correlationId")
    if correlation:
        context = TraceContext(
            context.trace_id, context.span_id, context.sampled, correlation
        )
    return context


def stamp_trace_context(envelope: SoapEnvelope, context: TraceContext) -> None:
    """Stamp ``envelope`` with ``context`` (replacing any existing header).

    Unlike the idempotency key — which must *survive* redelivery untouched
    — the trace context is re-stamped at every hop so the receiver parents
    under the sender's most recent span. Replacement never mutates the
    shared header block (header-shallow ``copy()`` shares blocks across
    attempts): the stale entry is dropped from this envelope's own headers
    list and a fresh block is appended.
    """
    element = Element(TRACE_CONTEXT_HEADER, text=format_traceparent(context))
    if context.correlation_id:
        element.attributes["correlationId"] = context.correlation_id
    headers = envelope.headers
    for index, header in enumerate(headers):
        if header.element.name == TRACE_CONTEXT_HEADER:
            del headers[index]
            break
    envelope.add_header(element, transparent=True)
